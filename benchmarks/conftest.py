"""Benchmark-suite configuration.

Each experiment benchmark runs the corresponding module from
``repro.bench.experiments`` once (``benchmark.pedantic`` with a single
round: the experiments measure their own internals where timing matters)
and asserts the paper's qualitative claims on the result.  Run with
``pytest benchmarks/ --benchmark-only`` and ``-s`` to see the tables.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_experiment(benchmark):
    """Run one experiment module under the benchmark fixture and print it."""

    def _run(module, scale: str = "quick", **kwargs):
        result = benchmark.pedantic(
            lambda: module.run(scale, **kwargs), iterations=1, rounds=1
        )
        print()
        result.print()
        return result

    return _run
