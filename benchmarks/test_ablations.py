"""ABL bench — ablations of the reproduction's design choices."""

from repro.bench.experiments import ablations


def test_ablations(run_experiment):
    result = run_experiment(ablations)
    # The Kaplan-Meier censoring treatment beats the naive counting
    # estimator (DESIGN.md's key estimation choice).
    assert result.notes["km_beats_beyond"]
    # Measuring the first sojourn from the window start (renewal
    # semantics) beats measuring from the true entry.
    assert result.notes["renewal_lookback_beats_true_entry"]
    # Accuracy is insensitive to the discretization step within the
    # 1x-10x monitoring-period range: max-coarsening never hides a
    # failure, supporting the paper's claim that the discrete-time
    # simplification's accuracy loss "can be compensated by tuning the
    # time unit" (Section 4.1).
    steps = result.table("ABL discretization step d")
    errs = steps.column("mean_error_pct")
    assert max(errs) < 2.0 * min(errs)
    # The paper's solver choice: the discrete-time recursion over the
    # empirical kernel beats the phase-type CTMC approximation.
    assert result.notes["discrete_error_pct"] <= result.notes["continuous_error_pct"]
