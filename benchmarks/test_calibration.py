"""CAL bench — probabilistic calibration of the TR predictions."""

from repro.bench.experiments import calibration_exp


def test_calibration(run_experiment):
    result = run_experiment(calibration_exp)
    # The SMP's probabilities are well calibrated...
    assert result.notes["smp_ece"] < 0.10
    # ...and beat the LAST baseline on both Brier score and reliability.
    assert result.notes["smp_brier"] < result.notes["last_brier"]
    assert result.notes["smp_better_calibrated"]
    # The reliability diagram hugs the diagonal in well-populated bins.
    diagram = result.table("CAL reliability diagram (SMP)")
    for predicted, observed, count in diagram.rows:
        if count >= 50:
            assert abs(predicted - observed) < 0.15
