"""CHAR bench — availability characterization of the testbed."""

from repro.bench.experiments import characterization


def test_characterization(run_experiment):
    result = run_experiment(characterization)
    # Failures exist and their durations fit a light-tailed family well
    # (the synthesizer draws from exponential/uniform mixtures).
    assert result.notes["n_unavailability_events"] > 100
    assert result.notes["duration_best_fit"] in ("exponential", "weibull", "lognormal")
    # A real diurnal pattern exists (the SMP's pooling premise)...
    assert result.notes["mean_diurnal_R2"] > 0.15
    # ...and 8:00 is a low-risk hour relative to the peak — the paper's
    # rationale for injecting noise there.
    assert result.notes["intensity_8h_vs_peak"] < 0.6
    # The failure calendar covers all 24 hours.
    calendar = result.table(
        "CHAR weekday failure intensity by hour (events/day, pooled)"
    )
    assert len(calendar.rows) == 24
