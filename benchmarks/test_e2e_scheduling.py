"""E2E bench — TR-aware vs oblivious scheduling (extension)."""

from repro.bench.experiments import e2e


def test_e2e_scheduling(run_experiment):
    result = run_experiment(e2e)
    table = result.tables[0]
    # Everything completes under every policy.
    for row in table.rows:
        done, total = str(row[2]).split("/")
        assert done == total
    # The paper's motivation: proactive (prediction-aware) management
    # improves guest job response time over oblivious placement.
    assert result.notes["predictive_fewer_failures_than_random"]
    assert (
        result.notes["predictive_response_h"]
        <= result.notes["random_response_h"] * 1.10
    )
