"""EMP-CPU / EMP-MEM benches — the Section-3.2 empirical studies."""

from repro.bench.experiments import empirical_cpu, empirical_mem


def test_empirical_cpu(run_experiment):
    result = run_experiment(empirical_cpu)
    # The two thresholds exist, are ordered, and land near the paper's
    # testbed values (Th1 = 20%, Th2 = 60%).
    th1, th2 = result.notes["th1"], result.notes["th2"]
    assert 0.10 <= th1 <= 0.35
    assert 0.45 <= th2 <= 0.80
    assert th1 < th2
    # Guest CPU utilization decreases with host group size and the
    # decline saturates beyond size 5.
    assert result.notes["guest_util_decreases"]
    assert result.notes["saturates_beyond_5"]
    # Priority alternatives: intermediate nices are redundant, and
    # always-nice-19 costs the guest throughput under light load.
    alt = result.table("EMP-CPU priority-control alternatives")
    light = [r for r in alt.rows if r[1] == 0.1]
    by_nice = {r[0]: r for r in light}
    assert by_nice[19][3] < by_nice[0][3]  # guest utilization
    assert abs(by_nice[10][2] - by_nice[19][2]) < max(2.0, by_nice[0][2])


def test_empirical_mem(run_experiment):
    result = run_experiment(empirical_mem)
    assert result.notes["thrashing_iff_overcommit"]
    assert result.notes["n_thrashing_configs"] > 0
    # Thrashing is priority-insensitive and always a noticeable slowdown.
    assert result.notes["priority_gap_under_thrashing"] < 0.10
    assert result.notes["mean_thrashing_reduction_pct"] > 5.0
    # With sufficient memory the slowdown is the (small) CPU-only one.
    assert result.notes["mean_fitting_reduction_pct"] < result.notes[
        "mean_thrashing_reduction_pct"
    ]
