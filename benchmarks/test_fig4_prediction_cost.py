"""FIG4 bench — prediction cost vs window length (paper Figure 4)."""

from repro.bench.experiments import fig4


def test_fig4_prediction_cost(run_experiment):
    result = run_experiment(fig4)
    table = result.tables[0]
    totals = table.column("total_ms")
    # Cost grows with the window length...
    assert totals[-1] > totals[0]
    # ...superlinearly in the number of recursive steps (paper: ~1.85;
    # NumPy-vectorized inner products flatten the exponent, but it must
    # stay above linear).
    assert result.notes["growth_exponent"] > 1.0
    # The paper's headline: under 0.006% of a job's own execution time.
    assert result.notes["max_job_overhead_pct"] < 0.006
    # Q/H estimation is the smaller share of the total at 10 h.
    assert result.notes["qh_fraction_at_10h"] < 0.5
