"""FIG5 bench — accuracy of the SMP prediction (paper Figure 5a/5b)."""

from repro.bench.experiments import fig5


def test_fig5_accuracy(run_experiment):
    result = run_experiment(fig5)
    weekdays = result.table("Fig5 weekdays")
    weekends = result.table("Fig5 weekends")
    for table in (weekdays, weekends):
        avgs = table.column("avg_error_pct")
        mins = table.column("min_error_pct")
        # Error grows with the window length (paper: TR -> 0 for large T).
        assert avgs[-1] > avgs[0]
        # Best-case windows are predicted almost exactly (paper's bars
        # touch ~0).
        assert min(mins) < 5.0
        # Short windows stay accurate (paper: ~5% average at 1 h).
        assert avgs[0] < 35.0
    assert result.notes["error_grows_with_length_weekdays"]
