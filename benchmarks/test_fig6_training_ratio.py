"""FIG6 bench — training:test ratio sensitivity (paper Figure 6)."""

from repro.bench.experiments import fig6


def test_fig6_training_ratio(run_experiment):
    result = run_experiment(fig6)
    table = result.tables[0]
    fracs = table.column("train_fraction")
    max_avgs = table.column("max_avg_error_pct")
    assert len(fracs) == 9  # ratios 1:9 .. 9:1
    # A best ratio exists and beats the worst by a real margin (the
    # paper's sweet-spot observation; its exact location is
    # dataset-specific, as the paper itself notes).
    assert min(max_avgs) < 0.8 * max(max_avgs)
    best = result.notes["best_train_fraction"]
    assert 0.1 <= best <= 0.9
