"""TAB1+FIG7 bench — SMP vs linear time-series models (Table 1, Fig. 7)."""

import numpy as np

from repro.bench.experiments import fig7


def test_fig7_baselines(run_experiment):
    result = run_experiment(fig7)
    table = result.tables[0]
    # All five Table-1 models are present.
    assert list(table.columns[2:]) == ["AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)", "LAST"]
    # Paper observation (1): the SMP performs better than all five
    # linear models on these windows.
    assert result.notes["smp_beats_all_models"]
    # Paper observation (2): linear models are adept at *short-term*
    # prediction — their disadvantage grows with the window length.
    smp = np.asarray(table.column("SMP"), dtype=float)
    for name in table.columns[2:]:
        col = np.asarray(table.column(name), dtype=float)
        ok = np.isfinite(col) & np.isfinite(smp)
        gaps = col[ok] - smp[ok]
        assert gaps[-1] >= gaps[0] - 1e-9, name
