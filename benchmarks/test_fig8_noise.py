"""FIG8 bench — robustness to injected noise (paper Figure 8)."""

import numpy as np

from repro.bench.experiments import fig8


def test_fig8_noise(run_experiment):
    result = run_experiment(fig8)
    table = result.tables[0]
    short = np.asarray(table.column("T=1h"), dtype=float)
    # Discrepancy grows with the amount of injected noise.
    assert short[-1] > short[0]
    # Paper observation: predictions on smaller windows are more
    # sensitive to noise than larger ones.
    assert result.notes["short_window_more_sensitive"]
    # A single injected event barely moves any prediction.
    first_row = [v for v in table.rows[0][1:]]
    assert max(first_row) < 20.0
