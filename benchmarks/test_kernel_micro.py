"""Micro-benchmarks of the hot kernels (true timing benchmarks)."""

import numpy as np
import pytest

from repro.core.classifier import StateClassifier
from repro.core.smp import SmpKernel, estimate_kernel, failure_probabilities
from repro.traces.synthesis import synthesize_trace


@pytest.fixture(scope="module")
def random_kernel():
    rng = np.random.default_rng(0)
    n = 3000
    k = np.zeros((8, n + 1))
    for rows in (slice(0, 4), slice(4, 8)):
        raw = rng.random((4, n))
        raw /= raw.sum()
        k[rows, 1:] = raw * 0.8
    return SmpKernel(k, 6.0)


@pytest.fixture(scope="module")
def day_sequences():
    rng = np.random.default_rng(1)
    seqs = []
    for _ in range(40):
        s = np.ones(1200, dtype=np.int8)
        i = 0
        while i < 1200:
            ln = int(rng.integers(5, 60))
            s[i : i + ln] = int(rng.choice([1, 1, 2, 2, 3]))
            i += ln
        seqs.append(s)
    return seqs


def test_solver_speed_horizon_3000(benchmark, random_kernel):
    """The Eq.-3 recursion at a 5 h window with d = 6 s."""
    result = benchmark(failure_probabilities, random_kernel, 1)
    assert 0.0 <= result.sum() <= 1.0


def test_kernel_estimation_speed(benchmark, day_sequences):
    """Q/H estimation from 40 pooled history windows."""
    kern = benchmark(estimate_kernel, day_sequences, 1200, 6.0)
    assert kern.horizon == 1200


def test_classifier_speed_one_day(benchmark):
    """Classifying one day of 6-second samples."""
    trace = synthesize_trace("micro", n_days=1, sample_period=6.0, seed=2)
    clf = StateClassifier()
    states = benchmark(clf.classify_trace, trace)
    assert states.shape[0] == trace.n_samples


def test_synthesis_speed_one_week(benchmark):
    """Synthesizing one week of 6-second samples."""
    trace = benchmark(
        synthesize_trace, "micro2", n_days=7, sample_period=6.0, seed=3
    )
    assert trace.n_days == 7
