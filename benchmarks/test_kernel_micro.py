"""Micro-benchmarks of the hot kernels (true timing benchmarks)."""

import numpy as np
import pytest

from repro.core.classifier import StateClassifier
from repro.core.smp import SmpKernel, estimate_kernel, failure_probabilities
from repro.fleet import FleetKernel, solve_fleet
from repro.traces.synthesis import synthesize_trace


@pytest.fixture(scope="module")
def random_kernel():
    rng = np.random.default_rng(0)
    n = 3000
    k = np.zeros((8, n + 1))
    for rows in (slice(0, 4), slice(4, 8)):
        raw = rng.random((4, n))
        raw /= raw.sum()
        k[rows, 1:] = raw * 0.8
    return SmpKernel(k, 6.0)


@pytest.fixture(scope="module")
def day_sequences():
    rng = np.random.default_rng(1)
    seqs = []
    for _ in range(40):
        s = np.ones(1200, dtype=np.int8)
        i = 0
        while i < 1200:
            ln = int(rng.integers(5, 60))
            s[i : i + ln] = int(rng.choice([1, 1, 2, 2, 3]))
            i += ln
        seqs.append(s)
    return seqs


def test_solver_speed_horizon_3000(benchmark, random_kernel):
    """The Eq.-3 recursion at a 5 h window with d = 6 s."""
    result = benchmark(failure_probabilities, random_kernel, 1)
    assert 0.0 <= result.sum() <= 1.0


def test_kernel_estimation_speed(benchmark, day_sequences):
    """Q/H estimation from 40 pooled history windows."""
    kern = benchmark(estimate_kernel, day_sequences, 1200, 6.0)
    assert kern.horizon == 1200


def test_classifier_speed_one_day(benchmark):
    """Classifying one day of 6-second samples."""
    trace = synthesize_trace("micro", n_days=1, sample_period=6.0, seed=2)
    clf = StateClassifier()
    states = benchmark(clf.classify_trace, trace)
    assert states.shape[0] == trace.n_samples


@pytest.fixture(scope="module")
def fleet_100():
    rng = np.random.default_rng(4)
    n = 600
    kernels = []
    for _ in range(100):
        k = np.zeros((8, n + 1))
        for rows in (slice(0, 4), slice(4, 8)):
            raw = rng.random((4, n))
            raw /= raw.sum()
            k[rows, 1:] = raw * 0.8
        kernels.append(SmpKernel(k, 6.0))
    ids = [f"m{i:03d}" for i in range(100)]
    inits = rng.integers(1, 3, size=100)
    return FleetKernel(ids, kernels), inits


def test_fleet_solve_speed_100(benchmark, fleet_100):
    """One stacked 100-machine solve at horizon 600."""
    fleet, inits = fleet_100
    solution = benchmark(solve_fleet, fleet, inits)
    assert solution.tr.shape == (100,)


def test_fleet_kernel_tensors_stay_contiguous(fleet_100):
    """The stacked tensors must be owned, C-contiguous float64.

    ``solve_fleet`` slices these every step of the recursion; a silent
    regression to a strided view (e.g. dropping ``ascontiguousarray``
    from the reversed rows) would force numpy to copy per matmul call.
    This guard fails loudly instead.
    """
    fleet, inits = fleet_100
    solve_fleet(fleet, inits)  # a solve must not perturb the tensors
    for name in ("k", "k12r", "k21r", "c1", "c2"):
        arr = getattr(fleet, name)
        assert arr.flags["C_CONTIGUOUS"], f"{name} lost C-contiguity"
        assert arr.dtype == np.float64, f"{name} is {arr.dtype}, not float64"
        assert arr.base is None, f"{name} is a view, not an owned copy"


def test_fleet_solve_beats_scalar_loop(fleet_100):
    """The batched pass must outrun the equivalent scalar loop."""
    import time

    fleet, inits = fleet_100
    kernels = [SmpKernel(np.array(fleet.k[i]), 6.0) for i in range(len(fleet))]
    solve_fleet(fleet, inits)  # warm both paths
    [failure_probabilities(k, int(s)) for k, s in zip(kernels, inits)]
    t0 = time.perf_counter()
    [failure_probabilities(k, int(s)) for k, s in zip(kernels, inits)]
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    solve_fleet(fleet, inits)
    batched_s = time.perf_counter() - t0
    assert batched_s < scalar_s, (
        f"batched solve ({batched_s:.4f}s) slower than "
        f"scalar loop ({scalar_s:.4f}s)"
    )


def test_synthesis_speed_one_week(benchmark):
    """Synthesizing one week of 6-second samples."""
    trace = benchmark(
        synthesize_trace, "micro2", n_days=7, sample_period=6.0, seed=3
    )
    assert trace.n_days == 7
