"""LOAD bench — native load-forecast quality of the linear models."""

from repro.bench.experiments import load_forecast


def test_load_forecast(run_experiment):
    result = run_experiment(load_forecast)
    table = result.tables[0]
    # All six models evaluated on shared origins.
    assert len(table.columns) == 7
    assert result.notes["n_origins"] > 0
    # Their home game: short-horizon load MAE is small in absolute terms.
    assert result.notes["short_horizon_mae"] < 0.15
    # And error still grows with look-ahead — the seed of the Fig.-7 gap.
    assert result.notes["error_grows_with_lookahead"]
