"""OVH bench — monitoring and prediction overhead (Section 7.1)."""

from repro.bench.experiments import overhead


def test_monitor_overhead(run_experiment):
    result = run_experiment(overhead)
    # Paper: monitoring consumed < 1% CPU at a 6 s period.
    assert result.notes["monitor_overhead_pct"] < 1.0
    # Paper: prediction adds < 0.006% to a 10 h job.
    assert result.notes["prediction_job_overhead_pct"] < 0.006
    assert result.notes["samples_taken"] > 0
