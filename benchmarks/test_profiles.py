"""PROF bench — prediction across workload-pattern testbeds (future work)."""

from repro.bench.experiments import profiles_exp


def test_profiles(run_experiment):
    result = run_experiment(profiles_exp)
    table = result.tables[0]
    profiles = table.column("profile")
    assert set(profiles) == {"student-lab", "office-desktop", "server-room"}
    # The paper's expectation: the prediction "will perform well" on the
    # other testbeds too — average errors stay in a usable range.
    assert result.notes["all_profiles_usable"]
    # Each testbed produced real failure activity to predict.
    for events_per_day in table.column("events_per_day"):
        assert events_per_day > 0.1
