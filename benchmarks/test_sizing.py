"""SIZE bench — job sizing from TR profiles."""

from repro.bench.experiments import sizing


def test_sizing(run_experiment):
    result = run_experiment(sizing)
    table = result.tables[0]
    assert len(table.rows) >= 10
    # Night hours admit longer jobs than midday on a student lab.
    assert result.notes["night_admits_longer_jobs"]
    # Relaxing the success target can only lengthen the admitted job.
    assert result.notes["thresholds_monotone"]
    # Every horizon is a sane non-negative number of hours.
    for row in table.rows:
        for v in row[1:]:
            assert 0.0 <= v <= 24.0
