"""TRACE bench — synthetic testbed calibration (Section 6.1)."""

from repro.bench.experiments import trace_stats


def test_trace_calibration(run_experiment):
    result = run_experiment(trace_stats)
    # Paper: 405-453 unavailability events per machine over 3 months.
    # The synthetic testbed must land in the same order of magnitude
    # (the exact count shifts a little with the sampling period).
    assert result.notes["in_order_of_magnitude"]
    # Event mix: CPU contention dominates, all three failure modes occur.
    table = result.tables[0]
    for row in table.rows:
        _mid, _events, s3, s4, s5, avail, _load = row
        assert s3 > s4 > 0 and s5 > 0
        assert 0.9 < avail < 1.0
    # Same-type days correlate (the SMP's pooling premise).
    assert result.notes["weekday_pattern_correlation"] > 0.15
