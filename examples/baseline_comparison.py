#!/usr/bin/env python
"""SMP vs linear time-series models on one machine (paper Fig. 7).

Why does a semi-Markov process beat AR/MA/ARMA/BM/LAST at predicting
availability?  Linear models "only consider different load levels and
fit them into a linear model by ignoring the dynamic structure of load
variations" (Section 6.2) — and multi-step-ahead forecasts decay to the
series mean, so they cannot anticipate the failure an 8:00-to-18:00
window will almost surely contain.  This example makes that concrete on
a single synthetic machine.

Run:  python examples/baseline_comparison.py        (~30 seconds)
"""

from repro.core import (
    ClockWindow,
    DayType,
    EstimatorConfig,
    StateClassifier,
    TemporalReliabilityPredictor,
    empirical_tr,
    relative_error,
)
from repro.timeseries import TimeSeriesTRPredictor, rps_model_suite
from repro.traces.synthesis import synthesize_trace


def main() -> None:
    trace = synthesize_trace("lab-03", n_days=90, sample_period=30.0, seed=3)
    train, test = trace.split_by_ratio(0.5)
    classifier = StateClassifier()
    step_multiple = 2  # d = 60 s

    smp = TemporalReliabilityPredictor(
        train, estimator_config=EstimatorConfig(step_multiple=step_multiple)
    )
    models = rps_model_suite()  # AR(8), BM(8), MA(8), ARMA(8,8), LAST
    names = ["SMP"] + [m.name for m in models]

    print("Relative error of predicted TR, windows starting 8:00 on weekdays:\n")
    print(f"{'T (h)':>6}  {'TR actual':>9}  " + "  ".join(f"{n:>9}" for n in names))
    for T in (1.0, 2.0, 3.0, 5.0, 10.0):
        window = ClockWindow.from_hours(8.0, T)
        actual = empirical_tr(
            test, classifier, window, DayType.WEEKDAY, step_multiple=step_multiple
        ).value
        errs = [relative_error(smp.predict(window, DayType.WEEKDAY), actual)]
        for model in models:
            ts_pred = TimeSeriesTRPredictor(
                type(model), classifier, step_multiple=step_multiple
            )
            predicted = ts_pred.predicted_tr(test, window, DayType.WEEKDAY)
            errs.append(relative_error(predicted.value, actual))
        cells = "  ".join(
            f"{e * 100:8.1f}%" if e == e and e != float("inf") else "      inf"
            for e in errs
        )
        print(f"{T:>6.0f}  {actual:>9.3f}  {cells}")

    print(
        "\nThe SMP's advantage grows with the window: it integrates the"
        " *rate* of failure\nevents observed in the same clock window on"
        " past days, while the linear models'\nforecasts collapse to the"
        " recent mean load within a few steps."
    )


if __name__ == "__main__":
    main()
