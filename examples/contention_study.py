#!/usr/bin/env python
"""Re-deriving Th1/Th2 from first principles (paper Section 3.2).

The five-state availability model rests on two empirically derived
host-load thresholds: below Th1 a default-priority guest is harmless;
between Th1 and Th2 the guest must be reniced; above Th2 it must be
terminated.  This example replays the paper's empirical methodology on
the simulated Linux scheduler: measure the reduction rate of host CPU
usage across host loads, group sizes and guest priorities, then apply
the 5%-noticeable-slowdown rule.

Run:  python examples/contention_study.py        (~30 seconds)
"""

from repro.contention import (
    HostGroup,
    MemorySystem,
    cpu_contention_study,
    derive_thresholds,
)


def main() -> None:
    loads = (0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    print("Measuring host-CPU-usage reduction (guest vs host groups)...\n")
    records = cpu_contention_study(
        loads=loads, group_sizes=(1, 2, 3), reps=3, duration=120.0
    )

    print("Reduction rate of host CPU usage, group size 1:")
    print(f"{'L_H':>5}  {'guest nice 0':>12}  {'guest nice 19':>13}")
    for load in loads:
        row = {
            r.guest_nice: r.reduction
            for r in records
            if r.group_size == 1 and abs(r.isolated_usage - load) < 1e-9
        }
        print(f"{load:5.2f}  {row[0] * 100:11.2f}%  {row[19] * 100:12.2f}%")

    derivation = derive_thresholds(records)
    print("\nApplying the 5%-slowdown rule (lowest crossing over group sizes):")
    print(f"  Th1 = {derivation.th1:.2f}   (paper's Linux testbed: 0.20)")
    print(f"  Th2 = {derivation.th2:.2f}   (paper's Linux testbed: 0.60)")
    print(f"  per-size nice-0 crossings:  {derivation.crossings_nice0}")
    print(f"  per-size nice-19 crossings: {derivation.crossings_nice19}")

    print("\nMemory side (Section 3.2.2): thrashing is pure overcommit —")
    mem = MemorySystem()  # the paper's 384 MB Solaris machine
    for guest_ws, host_ws in [(29.0, 53.0), (110.0, 213.0), (193.0, 213.0)]:
        thrash = mem.is_thrashing([guest_ws, host_ws])
        eff = mem.cpu_efficiency([guest_ws, host_ws])
        print(
            f"  guest {guest_ws:5.0f} MB + host {host_ws:5.0f} MB on 384 MB: "
            f"{'THRASHING' if thrash else 'fits':>9} (CPU efficiency {eff:.2f})"
        )

    thresholds = derivation.as_thresholds()
    print(
        f"\nThese thresholds feed the classifier: "
        f"load 0.15 -> {thresholds.cpu_state(0.15).name}, "
        f"0.40 -> {thresholds.cpu_state(0.40).name}, "
        f"0.85 -> {thresholds.cpu_state(0.85).name}."
    )


if __name__ == "__main__":
    main()
