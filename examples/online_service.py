#!/usr/bin/env python
"""Running the predictor as a long-lived service over growing histories.

In deployment, the State Manager's history is not a static dataset: a
new day of monitoring arrives every midnight and schedulers poll the
same few window shapes all day.  This example shows the pieces built
for that regime working together:

* :class:`repro.AvailabilityService` — one facade over many machines;
* the incremental per-day cache — re-querying after a day of growth
  classifies only the new day;
* TR-profile sizing — "how long a job fits right now" per machine.

Run:  python examples/online_service.py
"""

from repro import AvailabilityService, ClockWindow, DayType
from repro.core.estimator import EstimatorConfig
from repro.traces.synthesis import synthesize_testbed


def main() -> None:
    print("Bootstrapping the service with 21 days of history for 4 machines...\n")
    full = synthesize_testbed(4, n_days=35, sample_period=60.0, seed=51)
    service = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    for trace in full:
        service.register(trace.slice_days(trace.first_day, trace.first_day + 21))

    window = ClockWindow.from_hours(9.0, 4.0)
    print("initial ranking for 9:00 + 4h weekday windows:")
    for entry in service.rank(window, DayType.WEEKDAY):
        print(f"  {entry.machine_id}: TR = {entry.tr:.3f}")

    # A scheduler polls daily as the histories grow by one day each time.
    print("\nsimulating two more weeks of operation (daily re-queries):")
    predictor = service._predictor  # peek at the cache counters
    for day in range(22, 36, 2):
        for trace in full:
            grown = trace.slice_days(trace.first_day, trace.first_day + day)
            service.extend_history(grown)
        ranking = service.rank(window, DayType.WEEKDAY)
        best = ranking[0]
        print(
            f"  day {day:2d}: best = {best.machine_id} (TR {best.tr:.3f}); "
            f"cache: {predictor.days_classified} days classified, "
            f"{predictor.days_reused} reused"
        )

    print("\nsizing placements for right now (9:00, weekday):")
    for mid in service.machine_ids:
        for threshold in (0.9, 0.5):
            h = service.reliable_horizon(
                mid, ClockWindow.from_hours(9.0, 12.0), DayType.WEEKDAY,
                tr_threshold=threshold,
            )
            print(f"  {mid}: longest job with TR >= {threshold:.1f}: {h / 3600:.2f} h")

    chosen, survival = service.select(window, DayType.WEEKDAY, k=2)
    print(f"\ngang-scheduling 2 machines: {chosen}, joint survival {survival:.3f}")
    print(
        "\nNote the reuse counter: after the first queries, each re-query"
        " classifies only\nthe newly arrived days — the incremental cache"
        " does the rest."
    )


if __name__ == "__main__":
    main()
