#!/usr/bin/env python
"""Proactive scheduling: the paper's motivation, end to end.

Section 1 motivates availability prediction with proactive job
management: picking machines by predicted reliability and checkpointing
adaptively.  This example builds a complete simulated iShare deployment
(monitors, gateways, state managers, P2P discovery) over a synthetic
6-machine lab and runs the *same* batch workload under four setups:

  1. random placement, no checkpointing        (fully oblivious)
  2. least-loaded placement, no checkpointing  (load-aware, availability-oblivious)
  3. TR-ranked placement, no checkpointing     (the paper's predictor in the loop)
  4. TR-ranked placement + adaptive checkpointing (the paper's future work)

Run:  python examples/proactive_scheduling.py        (~1 minute)
"""

from repro.core.windows import SECONDS_PER_DAY
from repro.sim import (
    AdaptiveCheckpointing,
    FgcsTestbed,
    LeastLoadedPolicy,
    NoCheckpointing,
    PredictivePolicy,
    RandomPolicy,
    poisson_workload,
    run_workload,
)
from repro.traces.synthesis import synthesize_testbed


def main() -> None:
    configs = [
        ("random, no ckpt", lambda: RandomPolicy(seed=11), NoCheckpointing()),
        ("least-loaded, no ckpt", lambda: LeastLoadedPolicy(), NoCheckpointing()),
        ("predictive, no ckpt", lambda: PredictivePolicy(), NoCheckpointing()),
        (
            "predictive + adaptive ckpt",
            lambda: PredictivePolicy(),
            AdaptiveCheckpointing(tr_threshold=0.8, check_interval=600.0,
                                  cost_cpu_seconds=15.0),
        ),
    ]
    print("Simulating a 6-machine iShare lab, 24 batch jobs over 8 days...\n")
    header = (
        f"{'setup':>28}  {'done':>5}  {'failures':>8}  "
        f"{'mean response':>13}  {'wasted CPU':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, policy_factory, ckpt in configs:
        # A fresh (but identically seeded) testbed per run: every setup
        # sees exactly the same machines and the same workload.
        traces = synthesize_testbed(6, n_days=28, sample_period=30.0, seed=42)
        bed = FgcsTestbed(traces, monitor_period=30.0)
        workload = poisson_workload(
            24,
            start=bed.start_time + 3600.0,
            span=8 * SECONDS_PER_DAY,
            cpu_seconds_range=(1800.0, 14400.0),
            seed=13,
        )
        stats = run_workload(bed, policy_factory(), workload, checkpoint_policy=ckpt)
        print(
            f"{name:>28}  {stats.n_completed:>2}/{stats.n_jobs:<2}  "
            f"{stats.n_failures:>8}  {stats.mean_response_time / 3600:>11.2f} h  "
            f"{stats.total_wasted_cpu_seconds / 3600:>8.2f} h"
        )
    print(
        "\nThe TR-ranked policy routes long jobs away from machines whose"
        " history predicts\ndaytime contention or reboots; adaptive"
        " checkpointing then caps the cost of the\nfailures that still"
        " happen."
    )


if __name__ == "__main__":
    main()
