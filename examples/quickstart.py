#!/usr/bin/env python
"""Quickstart: predict a machine's availability for a guest job.

Synthesizes a 60-day monitoring trace of one student-lab machine (the
stand-in for the paper's Purdue testbed data), splits it into history
and evaluation halves, and asks the SMP predictor the paper's central
question: *what is the probability that this machine stays available
for guest execution throughout a given future window?* — then checks
the answer against what actually happened on the held-out days.

Run:  python examples/quickstart.py
"""

from repro import (
    ClockWindow,
    DayType,
    StateClassifier,
    TemporalReliabilityPredictor,
    empirical_tr,
    relative_error,
)
from repro.core.estimator import EstimatorConfig
from repro.traces.synthesis import synthesize_trace


def main() -> None:
    print("Synthesizing a 60-day lab-machine trace (6 s monitoring period)...")
    trace = synthesize_trace("lab-00", n_days=60, sample_period=6.0, seed=7)
    history, evaluation = trace.split_by_ratio(0.5)
    print(f"  history: days {history.first_day}..{history.last_day - 1}")
    print(f"  held out: days {evaluation.first_day}..{evaluation.last_day - 1}")

    # d = 60 s (10 monitoring periods) keeps predictions instantaneous.
    predictor = TemporalReliabilityPredictor(
        history, estimator_config=EstimatorConfig(step_multiple=10)
    )
    classifier = StateClassifier()

    print("\nTemporal reliability TR = P(no S3/S4/S5 during the window):\n")
    header = f"{'window':>16}  {'day type':>8}  {'TR pred':>8}  {'TR actual':>9}  {'rel err':>8}"
    print(header)
    print("-" * len(header))
    for start_hour, length, dtype in [
        (2, 2.0, DayType.WEEKDAY),   # small hours: safe
        (9, 2.0, DayType.WEEKDAY),   # morning rush
        (9, 8.0, DayType.WEEKDAY),   # a whole working day: risky
        (20, 4.0, DayType.WEEKDAY),  # evening
        (9, 8.0, DayType.WEEKEND),   # weekends are quieter
    ]:
        window = ClockWindow.from_hours(start_hour, length)
        tr = predictor.predict(window, dtype)
        actual = empirical_tr(evaluation, classifier, window, dtype, step_multiple=10)
        err = relative_error(tr, actual.value)
        print(
            f"{start_hour:>5}:00 +{length:>4.1f}h  {dtype.value:>8}  "
            f"{tr:8.3f}  {actual.value:9.3f}  {err * 100:7.1f}%"
        )

    print(
        "\nA scheduler would send a 2-hour guest job to this machine at"
        " night without hesitation,\nand would demand checkpointing (or"
        " another machine) for an 8-hour run starting at 9:00."
    )


if __name__ == "__main__":
    main()
