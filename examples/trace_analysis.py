#!/usr/bin/env python
"""Working with availability traces: synthesis, statistics, persistence.

Tours the trace substrate: generate a small testbed like the paper's
(Section 6.1), extract the per-machine unavailability statistics the
paper reports, verify the day-to-day pattern similarity the SMP relies
on, inject Section-7.3-style noise, and round-trip everything through
the on-disk formats.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.classifier import StateClassifier
from repro.core.windows import DayType
from repro.traces.io import load_traceset, save_traceset
from repro.traces.noise import NoiseSpec, inject_noise
from repro.traces.stats import (
    daily_pattern_correlation,
    hourly_mean_load,
    summarize_trace,
    unavailability_events,
)
from repro.traces.synthesis import synthesize_testbed


def main() -> None:
    print("Synthesizing a 4-machine, 30-day student-lab testbed...\n")
    testbed = synthesize_testbed(4, n_days=30, sample_period=30.0, seed=17)

    print(f"{'machine':>8}  {'events':>6}  {'S3':>4}  {'S4':>4}  {'S5':>4}  {'avail':>6}")
    for trace in testbed:
        s = summarize_trace(trace)
        print(
            f"{s.machine_id:>8}  {s.n_events:>6}  {s.n_s3:>4}  {s.n_s4:>4}  "
            f"{s.n_s5:>4}  {s.availability:>6.3f}"
        )
    print("(paper, 90 days: 405-453 events per machine, i.e. ~4.7/day)")

    first = testbed["lab-00"]
    weekdays = first.days(DayType.WEEKDAY)
    corr = np.nanmean(
        [daily_pattern_correlation(first, a, b) for a, b in zip(weekdays, weekdays[1:])]
    )
    hourly = np.nanmean([hourly_mean_load(first, d) for d in weekdays], axis=0)
    peak = int(np.nanargmax(hourly))
    print(f"\nlab-00 weekday pattern: peak hour {peak}:00 "
          f"(mean load {hourly[peak]:.2f}), night {hourly[3]:.2f};")
    print(f"adjacent-weekday hourly-profile correlation: {corr:.2f} "
          "(the SMP's pooling premise)")

    events = unavailability_events(first, StateClassifier())
    durations = [e.duration for e in events]
    print(
        f"\nlab-00 unavailability durations: median {np.median(durations):.0f} s, "
        f"p90 {np.percentile(durations, 90):.0f} s, max {max(durations):.0f} s"
    )

    noisy = inject_noise(first, NoiseSpec(n_events=5), rng=1)
    delta = len(unavailability_events(noisy, StateClassifier())) - len(events)
    print(f"after injecting 5 noise events around 8:00: +{delta} events")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_traceset(testbed, Path(tmp) / "testbed")
        reloaded = load_traceset(path)
        ok = all(
            np.array_equal(reloaded[m].load, testbed[m].load)
            for m in testbed.machine_ids
        )
        files = sorted(p.name for p in path.iterdir())
        print(f"\nsaved to {len(files)} files ({', '.join(files[:3])}, ...); "
              f"round-trip exact: {ok}")


if __name__ == "__main__":
    main()
