#!/usr/bin/env python
"""How sure is the predictor?  Intervals, calibration and risk math.

The paper reports point predictions of temporal reliability.  A
scheduler acting on those numbers also wants to know (a) the sampling
uncertainty of each prediction, (b) whether the probabilities are
*calibrated*, and (c) what they imply operationally — how many replicas
to launch, what checkpoint interval to use, which machine minimizes
expected completion time.  This example demonstrates all three layers
this library adds on top of the paper.

Run:  python examples/uncertainty_and_calibration.py   (~1 minute)
"""

import numpy as np

from repro.core import ClockWindow, DayType
from repro.core.calibration import brier_score, reliability_diagram
from repro.core.empirical import observed_window_outcomes
from repro.core.estimator import EstimatorConfig, WindowedKernelEstimator
from repro.core.multi import (
    expected_completion_time,
    group_survival,
    replication_needed,
    select_best_k,
)
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.classifier import StateClassifier
from repro.core.uncertainty import bootstrap_tr
from repro.sim.checkpoint import failure_rate_from_tr, young_interval
from repro.traces.synthesis import synthesize_testbed


def main() -> None:
    print("Synthesizing a 4-machine lab (60 days)...\n")
    traces = synthesize_testbed(4, n_days=60, sample_period=30.0, seed=23)
    config = EstimatorConfig(step_multiple=2)  # d = 60 s
    classifier = StateClassifier()
    window = ClockWindow.from_hours(9.0, 5.0)

    # ---- (a) bootstrap confidence intervals --------------------------- #
    print("TR for the 9:00-14:00 weekday window, with 90% bootstrap CIs:")
    machine_trs = {}
    for trace in traces:
        train, _test = trace.split_by_ratio(0.5)
        estimator = WindowedKernelEstimator(classifier, config)
        interval = bootstrap_tr(
            estimator, train, window, DayType.WEEKDAY, n_resamples=150, rng=3
        )
        machine_trs[trace.machine_id] = interval.point
        print(f"  {trace.machine_id}: {interval}  "
              f"({interval.n_history_days} history days)")

    # ---- (b) calibration ---------------------------------------------- #
    predictions, outcomes = [], []
    for trace in traces:
        train, test = trace.split_by_ratio(0.5)
        predictor = TemporalReliabilityPredictor(train, estimator_config=config)
        for T in (1.0, 3.0, 5.0, 10.0):
            for h in (0, 4, 8, 11, 14, 17, 20):
                cw = ClockWindow.from_hours(h, T)
                tr = predictor.predict(cw, DayType.WEEKDAY)
                for _d, _i, ok in observed_window_outcomes(
                    test, classifier, cw, DayType.WEEKDAY, step_multiple=2
                ):
                    predictions.append(tr)
                    outcomes.append(ok)
    dec = brier_score(predictions, outcomes)
    print(f"\nCalibration over {len(predictions)} (prediction, outcome) pairs:")
    print(f"  Brier {dec.brier:.3f} = reliability {dec.reliability:.4f}"
          f" - resolution {dec.resolution:.3f} + uncertainty {dec.uncertainty:.3f}")
    print("  reliability diagram (predicted -> observed):")
    for p_bar, y_bar, count in reliability_diagram(predictions, outcomes, n_bins=5):
        print(f"    {p_bar:5.2f} -> {y_bar:5.2f}   (n={count})")

    # ---- (c) acting on the probabilities ------------------------------ #
    best_two = select_best_k(machine_trs, 2)
    both = group_survival([machine_trs[m] for m in best_two])
    print(f"\nGang-scheduling on the best two machines {best_two}:")
    print(f"  P(both survive the window) = {both:.3f}")
    worst = min(machine_trs, key=machine_trs.get)
    tr_worst = machine_trs[worst]
    if 0.0 < tr_worst < 0.97:
        n = replication_needed(tr_worst, 0.99)
        print(f"  replicas of {worst} (TR {tr_worst:.2f}) for 99% success: {n}")
    rate = failure_rate_from_tr(max(min(tr_worst, 1 - 1e-9), 1e-9), window.duration)
    interval = young_interval(30.0, 1.0 / rate if rate > 0 else np.inf)
    ect = expected_completion_time(3.0 * 3600.0, rate)
    print(f"  on {worst}: failure rate {rate * 3600:.2f}/h, "
          f"Young checkpoint interval {interval / 60:.0f} min,")
    print(f"  expected completion of a 3h job with restarts: {ect / 3600:.2f} h")


if __name__ == "__main__":
    main()
