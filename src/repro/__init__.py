"""repro — Resource availability prediction for fine-grained cycle sharing.

A faithful, from-scratch reproduction of Ren, Lee, Eigenmann and Bagchi,
"Resource Availability Prediction in Fine-Grained Cycle Sharing Systems"
(HPDC 2006): a five-state resource availability model, a semi-Markov
process predictor of temporal reliability, the trace / contention /
time-series substrates the paper's evaluation rests on, and an iShare-
style FGCS system simulator.

Quickstart::

    from repro import (ClockWindow, DayType, TemporalReliabilityPredictor)
    from repro.traces.synthesis import synthesize_trace, SynthesisConfig

    trace = synthesize_trace("lab-01", n_days=28, seed=7)
    train, test = trace.split_by_ratio(0.5)
    predictor = TemporalReliabilityPredictor(train)
    tr = predictor.predict(ClockWindow.from_hours(8, 5), DayType.WEEKDAY)
"""

from repro.core import (
    AbsoluteWindow,
    ClassifierConfig,
    ClockWindow,
    DayType,
    EstimatorConfig,
    SmpKernel,
    State,
    StateClassifier,
    TemporalReliabilityPredictor,
    Thresholds,
    WindowedKernelEstimator,
    empirical_tr,
    relative_error,
    temporal_reliability,
)
from repro.service import AvailabilityService
from repro.traces import MachineTrace, TraceSet

__version__ = "1.0.0"

__all__ = [
    "AbsoluteWindow",
    "AvailabilityService",
    "ClassifierConfig",
    "ClockWindow",
    "DayType",
    "EstimatorConfig",
    "MachineTrace",
    "SmpKernel",
    "State",
    "StateClassifier",
    "TemporalReliabilityPredictor",
    "Thresholds",
    "TraceSet",
    "WindowedKernelEstimator",
    "empirical_tr",
    "relative_error",
    "temporal_reliability",
    "__version__",
]
