"""Drift-driven self-healing model tier (closes the audit alarm loop).

PR 5's audit raises ``model_degraded`` alarms; this package *acts* on
them.  The control loop, per machine:

1. **Alarm** — the audit's per-machine Page–Hinkley test flags a
   machine whose prediction errors shifted (:mod:`repro.audit.drift`).
2. **Retune** — :class:`RetunePlanner` walk-forward-backtests candidate
   hyperparameters (the paper's training-window ``N``, weekday/weekend
   day-type split, host-load thresholds ``Th1``/``Th2``) against the
   machine's recent history and ranks them by held-out Brier score.
3. **Trial** — :class:`ChampionChallenger` runs the winning candidate
   as *shadow* predictions journaled through the existing audit
   journal (op ``shadow``), scored in trial scoreboards, and promotes
   only when the challenger beats the champion's windowed Brier by a
   configured margin, sustained over a hysteresis period.
4. **Fallback** — while a machine is on trial and badly miscalibrated
   (windowed ECE above a floor), :class:`CalibratedFallback` serves the
   paper's empirical baseline instead of the SMP value, so users never
   see worse-than-baseline TRs during retuning.
5. **Promote** — :class:`AdaptController` installs the challenger via
   ``AvailabilityService.set_model_config`` (which invalidates the
   incremental and fleet kernel caches) and resets the machine's
   Page–Hinkley state so post-recovery data is not judged against
   pre-shift statistics.

The tier is surfaced end-to-end: protocol v8 ops ``adapt_status`` /
``adapt_retune`` / ``adapt_promote``, the ``repro-fgcs adapt`` CLI,
``adapt_*`` instruments, ``adapt.retune`` / ``adapt.promote`` spans,
and the ADAPT bench (regime shift, alarm→recovery lead time).
"""

from repro.adapt.controller import AdaptConfig, AdaptController, merge_adapt_status
from repro.adapt.fallback import CalibratedFallback
from repro.adapt.harness import ChampionChallenger, TrialState
from repro.adapt.planner import (
    CandidateConfig,
    CandidateScore,
    RetunePlan,
    RetunePlanner,
)

__all__ = [
    "AdaptConfig",
    "AdaptController",
    "CalibratedFallback",
    "CandidateConfig",
    "CandidateScore",
    "ChampionChallenger",
    "RetunePlan",
    "RetunePlanner",
    "TrialState",
    "merge_adapt_status",
]
