"""The adapt controller: alarms in, retunes/trials/promotions out.

:class:`AdaptController` is what the serving tier holds next to the
audit.  The dispatcher calls

* :meth:`observe_served` when it journals a served ``predict`` — the
  controller journals the challenger's shadow answer for the same
  target window;
* :meth:`on_ingest` when ingest resolves predictions — the controller
  feeds the trial scoreboards, auto-retunes freshly degraded machines,
  and renders promote/abandon verdicts;
* :meth:`serve_value` on the predict hot path — the calibrated
  fallback may substitute the empirical baseline for a machine that is
  on trial and badly miscalibrated.

Everything is per machine and thread-safe (the dispatcher calls in from
worker threads).  Promotions go through
``AvailabilityService.set_model_config``, which invalidates the
machine's incremental day cache and fleet kernel rows, and through
``DriftDetector.reset_machine``, so the new model starts with a clean
drift slate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.adapt.fallback import CalibratedFallback
from repro.adapt.harness import (
    VERDICT_ABANDON,
    VERDICT_PROMOTE,
    ChampionChallenger,
    TrialState,
)
from repro.adapt.planner import CandidateConfig, RetunePlanner
from repro.audit.audit import SHADOW_OP_PREFIX, is_shadow_op
from repro.core.online import IncrementalPredictor
from repro.core.states import State
from repro.core.windows import ClockWindow, DayType
from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.obs.tracing import start_span
from repro.traces.trace import MachineTrace

__all__ = ["AdaptConfig", "AdaptController", "merge_adapt_status"]


@dataclass(frozen=True)
class AdaptConfig:
    """Tuning of the self-healing loop (all times on the model clock)."""

    #: Retune automatically when a machine's drift test alarms (the
    #: ``adapt_retune`` op always works, auto or not).
    auto: bool = True
    #: Holdout length of the retune backtest, in days of recent history.
    holdout_days: int = 5
    #: Clock windows the backtest scores on each holdout day.
    eval_start_hours: tuple[float, ...] = (1.0, 7.0, 13.0, 19.0)
    eval_window_hours: float = 2.0
    #: Candidate grid (cross product; the champion is always added).
    candidate_history_days: tuple[int | None, ...] = (None, 7, 14)
    candidate_day_type_split: tuple[bool, ...] = (True, False)
    candidate_thresholds: tuple[tuple[float, float], ...] = (
        (0.20, 0.60),
        (0.10, 0.50),
    )
    #: Backtest improvement (champion brier - candidate brier) required
    #: before a shadow trial is even worth opening.
    retune_min_gain: float = 0.005
    #: Resolved pairs per arm before champion/challenger are compared.
    min_eval: int = 12
    #: Challenger must beat the champion's windowed Brier by this much.
    promote_margin: float = 0.02
    #: ... while its ECE is at most this much worse.
    ece_slack: float = 0.05
    #: Consecutive winning evaluations required (anti-flapping).
    hysteresis: int = 2
    #: Trials that cannot win within this many resolved pairs abandon.
    max_trial_resolutions: int = 512
    #: Resolved pairs after a promotion/abandon before the next auto
    #: retune of the same machine.
    cooldown_resolutions: int = 64
    #: Sliding window of the per-arm trial scoreboards.
    trial_window: int = 256
    #: Serve the empirical baseline while a trial machine's windowed
    #: ECE exceeds this floor (None disables the fallback).
    fallback_ece_floor: float | None = 0.25
    #: Recent days the fallback's empirical TR draws on.
    fallback_history_days: int | None = 14

    def __post_init__(self) -> None:
        if self.holdout_days < 1:
            raise ValueError(f"holdout_days must be >= 1, got {self.holdout_days}")
        if self.min_eval < 1:
            raise ValueError(f"min_eval must be >= 1, got {self.min_eval}")
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")

    def eval_clocks(self) -> list[ClockWindow]:
        return [
            ClockWindow.from_hours(h, self.eval_window_hours)
            for h in self.eval_start_hours
        ]

    def candidates(self, champion: CandidateConfig) -> list[CandidateConfig]:
        grid: dict[CandidateConfig, None] = {champion: None}
        for n in self.candidate_history_days:
            for split in self.candidate_day_type_split:
                for th1, th2 in self.candidate_thresholds:
                    grid[CandidateConfig(n, split, th1, th2)] = None
        return list(grid)


@dataclass
class _MachineAdapt:
    """Controller-side state of one machine."""

    state: str = "stable"  # "stable" | "shadowing"
    trial: TrialState | None = None
    cooldown: int = 0
    last_plan: dict[str, Any] | None = None
    retunes: int = 0
    promotions: int = 0
    abandoned: int = 0
    fallback_active: bool = False
    fallback_served: int = 0


class AdaptController:
    """Closes the audit's alarm loop for one serving process."""

    def __init__(
        self,
        service: Any,
        audit: Any,
        config: AdaptConfig | None = None,
    ) -> None:
        if audit is None:
            raise ValueError("the adapt tier requires the prediction audit")
        self.service = service
        self.audit = audit
        self.config = config or AdaptConfig()
        self.planner = RetunePlanner(
            audit.classifier, step_multiple=audit.step_multiple
        )
        self.harness = ChampionChallenger(
            min_eval=self.config.min_eval,
            promote_margin=self.config.promote_margin,
            ece_slack=self.config.ece_slack,
            hysteresis=self.config.hysteresis,
            max_trial_resolutions=self.config.max_trial_resolutions,
            window=self.config.trial_window,
        )
        self.fallback = (
            None
            if self.config.fallback_ece_floor is None
            else CalibratedFallback(
                audit.classifier,
                ece_floor=self.config.fallback_ece_floor,
                history_days=self.config.fallback_history_days,
                step_multiple=audit.step_multiple,
            )
        )
        self._lock = threading.RLock()
        self._machines: dict[str, _MachineAdapt] = {}
        self.retunes = 0
        self.promotions = 0
        self.abandoned = 0

    # ------------------------------------------------------------------ #
    # hooks called by the dispatcher
    # ------------------------------------------------------------------ #

    def observe_served(
        self,
        op: str,
        machine: str,
        window: ClockWindow,
        dtype: DayType,
        init_state: State | None = None,
    ) -> None:
        """Journal the challenger's shadow answer for a served predict."""
        if op != "predict":
            return
        with self._lock:
            st = self._machines.get(machine)
            if st is None or st.state != "shadowing" or st.trial is None:
                return
            predictor = st.trial.predictor
        history = self.service._histories.get(machine)
        if history is None:
            return
        tr = predictor.predict(history, window, dtype, init_state=init_state)
        record = self.audit.record_prediction(
            SHADOW_OP_PREFIX, machine, window, dtype, tr,
            history_end=history.end_time, init_state=init_state,
        )
        if record is not None:
            with self._lock:
                st = self._machines.get(machine)
                if st is not None and st.trial is not None:
                    st.trial.shadow_journaled += 1
            instrument("adapt_shadow_predictions_total").inc()

    def serve_value(
        self,
        machine: str,
        window: ClockWindow,
        dtype: DayType,
        tr: float,
    ) -> tuple[float, str]:
        """The TR to actually serve: the model's, or the fallback's.

        Returns ``(value, source)`` with source ``"model"`` or
        ``"fallback"``.
        """
        if self.fallback is None:
            return tr, "model"
        with self._lock:
            st = self._machines.get(machine)
            if st is None or st.state != "shadowing":
                if st is not None and st.fallback_active:
                    st.fallback_active = False
                    self._update_fallback_gauge()
                return tr, "model"
        snap = self.audit.scoreboard.snapshot(machine)
        if not self.fallback.should_fall_back(snap.get("ece")):
            with self._lock:
                st = self._machines.get(machine)
                if st is not None and st.fallback_active:
                    st.fallback_active = False
                    self._update_fallback_gauge()
            return tr, "model"
        history = self.service._histories.get(machine)
        if history is None:
            return tr, "model"
        baseline = self.fallback.value(history, window, dtype)
        if baseline is None:
            return tr, "model"
        with self._lock:
            st = self._machines.get(machine)
            if st is not None:
                if not st.fallback_active:
                    st.fallback_active = True
                    self._update_fallback_gauge()
                st.fallback_served += 1
        instrument("adapt_fallback_served_total").inc()
        return baseline, "fallback"

    def on_ingest(
        self, machine: str, history: MachineTrace, resolutions: list[Any]
    ) -> None:
        """Consume the resolutions one ingest produced for one machine."""
        with self._lock:
            st = self._machines.get(machine)
            scored = [r for r in resolutions if r.outcome != "excluded"]
            if st is not None and st.state == "shadowing" and st.trial is not None:
                for res in scored:
                    record = self.audit.journal.predictions.get(res.seq)
                    if record is None:
                        continue
                    self.harness.record(
                        st.trial,
                        shadow=is_shadow_op(record.op),
                        probability=res.probability,
                        outcome=res.outcome == "available",
                    )
                verdict = self.harness.evaluate(st.trial)
                if verdict == VERDICT_PROMOTE:
                    self._promote_locked(machine, st, forced=False)
                elif verdict == VERDICT_ABANDON:
                    self._end_trial_locked(machine, st, outcome="abandoned")
                return
            if st is not None and st.cooldown > 0:
                st.cooldown = max(0, st.cooldown - len(scored))
                return
        if (
            self.config.auto
            and scored
            and self.audit.drift.machine_degraded(machine)
        ):
            self.retune(machine, trigger="alarm")

    # ------------------------------------------------------------------ #
    # the loop's verbs (also reachable via the v8 ops)
    # ------------------------------------------------------------------ #

    def retune(self, machine: str, *, trigger: str = "manual") -> dict[str, Any]:
        """Backtest candidates for one machine; open a trial if one wins.

        Returns the plan summary (also stored for ``adapt_status``).
        """
        history = self.service._history(machine)
        base_config = self.service.model_config(machine)
        base_classifier = self.service.model_classifier(machine)
        champion = CandidateConfig.of_model(base_config, base_classifier)
        t0 = time.perf_counter()
        with start_span("adapt.retune", "adapt", machine=machine, trigger=trigger):
            plan = self.planner.search(
                machine,
                history,
                base_config=base_config,
                base_classifier=base_classifier,
                clocks=self.config.eval_clocks(),
                holdout_days=self.config.holdout_days,
                candidates=self.config.candidates(champion),
            )
        elapsed = time.perf_counter() - t0
        instrument("adapt_retunes_total").labels(trigger=trigger).inc()
        instrument("adapt_retune_seconds").observe(elapsed)
        opened = (
            plan.best is not None
            and plan.best.candidate != champion
            and plan.improvement >= self.config.retune_min_gain
        )
        summary = plan.describe()
        summary["trigger"] = trigger
        summary["trial_opened"] = bool(opened)
        with self._lock:
            st = self._machines.setdefault(machine, _MachineAdapt())
            st.retunes += 1
            self.retunes += 1
            st.last_plan = summary
            if opened and st.state == "stable":
                best = plan.best
                st.state = "shadowing"
                st.trial = self.harness.start(
                    machine,
                    best.candidate,
                    IncrementalPredictor(
                        best.candidate.classifier(base_classifier),
                        best.candidate.estimator_config(base_config),
                    ),
                    backtest_brier=best.brier,
                )
                self._update_shadow_gauge()
        get_event_log().emit(
            "adapt_retune",
            machine=machine,
            trigger=trigger,
            trial_opened=bool(opened),
            improvement=plan.improvement,
        )
        return summary

    def promote(self, machine: str, *, force: bool = False) -> dict[str, Any]:
        """Promote the machine's challenger (margin-gated unless forced)."""
        with self._lock:
            st = self._machines.get(machine)
            if st is None or st.trial is None or st.state != "shadowing":
                return {
                    "machine": machine,
                    "promoted": False,
                    "reason": "no trial in flight",
                }
            if not force:
                margin = self.harness.margin(st.trial)
                if margin is None:
                    return {
                        "machine": machine,
                        "promoted": False,
                        "reason": (
                            f"arms not comparable yet (need {self.harness.min_eval} "
                            "resolved pairs per arm)"
                        ),
                    }
                if margin < self.harness.promote_margin:
                    return {
                        "machine": machine,
                        "promoted": False,
                        "reason": (
                            f"margin {margin:.4f} below required "
                            f"{self.harness.promote_margin:.4f}"
                        ),
                    }
            return self._promote_locked(machine, st, forced=force)

    def _promote_locked(
        self, machine: str, st: _MachineAdapt, *, forced: bool
    ) -> dict[str, Any]:
        """Install the challenger as the serving model (lock held)."""
        trial = st.trial
        assert trial is not None
        candidate = trial.challenger
        with start_span("adapt.promote", "adapt", machine=machine, forced=forced):
            self.service.set_model_config(
                machine,
                estimator_config=candidate.estimator_config(self.service.config),
                classifier=candidate.classifier(self.service.classifier),
            )
            # The promoted model answers from different statistics; a
            # Page–Hinkley mean learned on the old model's errors would
            # misjudge it either way.
            self.audit.drift.reset_machine(machine)
        detail = trial.describe()
        self._end_trial_locked(machine, st, outcome="promoted")
        st.promotions += 1
        self.promotions += 1
        instrument("adapt_promotions_total").labels(
            outcome="forced" if forced else "margin"
        ).inc()
        get_event_log().emit(
            "adapt_promote",
            machine=machine,
            forced=forced,
            challenger=candidate.describe(),
        )
        return {
            "machine": machine,
            "promoted": True,
            "forced": forced,
            "challenger": candidate.describe(),
            "trial": detail,
        }

    def _end_trial_locked(
        self, machine: str, st: _MachineAdapt, *, outcome: str
    ) -> None:
        st.state = "stable"
        st.trial = None
        st.cooldown = self.config.cooldown_resolutions
        if outcome == "abandoned":
            st.abandoned += 1
            self.abandoned += 1
            instrument("adapt_promotions_total").labels(outcome="abandoned").inc()
            get_event_log().emit("adapt_trial_abandoned", machine=machine)
        if st.fallback_active:
            st.fallback_active = False
        self._update_shadow_gauge()
        self._update_fallback_gauge()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def status(self, machine: str | None = None) -> dict[str, Any]:
        """The ``adapt_status`` op result."""
        with self._lock:
            names = [machine] if machine is not None else sorted(self._machines)
            machines: dict[str, Any] = {}
            for name in names:
                st = self._machines.get(name)
                if st is None:
                    machines[name] = {"state": "stable", "override": False}
                    continue
                entry: dict[str, Any] = {
                    "state": st.state,
                    "override": name in self.service.overridden_machines,
                    "retunes": st.retunes,
                    "promotions": st.promotions,
                    "abandoned": st.abandoned,
                    "cooldown": st.cooldown,
                    "fallback_active": st.fallback_active,
                    "fallback_served": st.fallback_served,
                    "last_plan": st.last_plan,
                }
                if st.trial is not None:
                    entry["trial"] = st.trial.describe()
                machines[name] = entry
            return {
                "enabled": True,
                "auto": self.config.auto,
                "retunes": self.retunes,
                "promotions": self.promotions,
                "abandoned": self.abandoned,
                "shadowing": sum(
                    1 for s in self._machines.values() if s.state == "shadowing"
                ),
                "overrides": sorted(self.service.overridden_machines),
                "machines": machines,
            }

    def _update_shadow_gauge(self) -> None:
        instrument("adapt_machines_shadowing").set(
            float(sum(1 for s in self._machines.values() if s.state == "shadowing"))
        )

    def _update_fallback_gauge(self) -> None:
        instrument("adapt_fallback_active").set(
            float(sum(1 for s in self._machines.values() if s.fallback_active))
        )


def merge_adapt_status(results: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-node ``adapt_status`` answers (the router's scatter).

    Counters add; machine entries union (a machine lives on its R owner
    nodes — the entry with the most retunes is the authoritative one).
    """
    enabled = [r for r in results if r.get("enabled")]
    if not enabled:
        return {"enabled": False}
    merged: dict[str, Any] = {
        "enabled": True,
        "auto": any(r.get("auto") for r in enabled),
        "retunes": sum(int(r.get("retunes", 0)) for r in enabled),
        "promotions": sum(int(r.get("promotions", 0)) for r in enabled),
        "abandoned": sum(int(r.get("abandoned", 0)) for r in enabled),
        "shadowing": sum(int(r.get("shadowing", 0)) for r in enabled),
        "overrides": sorted(
            {m for r in enabled for m in r.get("overrides", [])}
        ),
    }
    machines: dict[str, Any] = {}
    for r in enabled:
        for name, entry in r.get("machines", {}).items():
            seen = machines.get(name)
            if seen is None or int(entry.get("retunes", 0)) > int(
                seen.get("retunes", 0)
            ):
                machines[name] = entry
    merged["machines"] = machines
    return merged
