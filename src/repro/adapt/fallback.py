"""Calibrated fallback: serve the empirical baseline while retuning.

A miscalibrated SMP is worse than no model: its TRs systematically
over- or under-state survival, and every consumer (scheduler placement,
gang selection) inherits the bias.  The paper's own evaluation baseline
— the empirical TR, the fraction of recent matching days that stayed
failure-free (Section 7.2) — is cheap and, being a raw frequency, is
calibrated by construction on its own support.

While a machine is on a shadow trial *and* its windowed ECE sits above
the configured floor, the fallback answers ``predict`` with the
empirical TR over the machine's recent history instead of the SMP
value.  The substitution is journaled like any served prediction (the
audit scores what users actually received) and flagged in the response
(``"source": "fallback"``), and it ends the moment the trial resolves
or calibration recovers.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.classifier import StateClassifier
from repro.core.empirical import empirical_tr
from repro.core.windows import ClockWindow, DayType
from repro.traces.trace import MachineTrace

__all__ = ["CalibratedFallback"]


class CalibratedFallback:
    """Serves the paper's empirical-TR baseline for miscalibrated machines."""

    def __init__(
        self,
        classifier: StateClassifier,
        *,
        ece_floor: float = 0.25,
        history_days: int | None = 14,
        step_multiple: int = 1,
        min_days: int = 3,
    ) -> None:
        self.classifier = classifier
        self.ece_floor = ece_floor
        self.history_days = history_days
        self.step_multiple = step_multiple
        self.min_days = min_days

    def should_fall_back(self, machine_ece: float | None) -> bool:
        """Whether a trial machine's calibration warrants the baseline."""
        return machine_ece is not None and machine_ece > self.ece_floor

    def value(
        self,
        history: MachineTrace,
        window: ClockWindow,
        dtype: DayType,
    ) -> float | None:
        """The baseline TR, or None when the history cannot support one.

        ``None`` means "keep the SMP value": an unsupported baseline
        (too few matching recent days) would be noisier than the model
        it is meant to shield users from.
        """
        recent = history
        if self.history_days is not None:
            days = history.days(None)
            if len(days) > self.history_days:
                recent = history.slice_days(days[-self.history_days], days[-1] + 1)
        emp = empirical_tr(
            recent,
            self.classifier,
            window,
            dtype,
            step_multiple=self.step_multiple,
        )
        if emp.n_days < self.min_days or math.isnan(emp.value):
            return None
        return emp.value

    def describe(self) -> dict[str, Any]:
        return {
            "ece_floor": self.ece_floor,
            "history_days": self.history_days,
            "min_days": self.min_days,
        }
