"""Champion/challenger shadow trials scored through the audit journal.

A retune plan is a *hypothesis* — the backtest says the candidate would
have done better on the last few days.  Before it may serve traffic,
the candidate must prove itself forward in time: for every served
``predict`` on the machine, the challenger's own answer is journaled as
a ``shadow`` prediction through the same audit journal (same target
window, same resolver, same labeling), and both arms accumulate into
trial scoreboards.  The challenger is promoted only when

* both arms have at least ``min_eval`` resolved pairs,
* the challenger's windowed Brier beats the champion's by at least
  ``promote_margin`` while its ECE is no worse than ``ece_slack``
  beyond the champion's, and
* that verdict is sustained over ``hysteresis`` consecutive
  evaluations — a single lucky window must not flip the model
  (anti-flapping, mirroring the health prober's hysteresis).

A trial that cannot win within ``max_trial_resolutions`` is abandoned,
and a cooldown keeps a machine from churning through trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.audit.scoreboard import Scoreboard
from repro.core.online import IncrementalPredictor

from repro.adapt.planner import CandidateConfig

__all__ = ["TrialState", "ChampionChallenger"]

#: Trial verdicts returned by :meth:`ChampionChallenger.evaluate`.
VERDICT_CONTINUE = "continue"
VERDICT_PROMOTE = "promote"
VERDICT_ABANDON = "abandon"


@dataclass
class TrialState:
    """One machine's in-flight shadow trial."""

    machine: str
    challenger: CandidateConfig
    predictor: IncrementalPredictor
    champion_board: Scoreboard
    challenger_board: Scoreboard
    backtest_brier: float
    #: Resolved pairs consumed by the trial so far (both arms).
    resolutions: int = 0
    #: Consecutive evaluations the challenger won (hysteresis counter).
    wins: int = 0
    shadow_journaled: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> dict[str, Any]:
        champ = self.champion_board.snapshot()
        chall = self.challenger_board.snapshot()
        return {
            "challenger": self.challenger.describe(),
            "backtest_brier": round(self.backtest_brier, 6),
            "resolutions": self.resolutions,
            "wins": self.wins,
            "shadow_journaled": self.shadow_journaled,
            "champion_brier": champ["brier"],
            "champion_ece": champ["ece"],
            "champion_n": champ["n"],
            "challenger_brier": chall["brier"],
            "challenger_ece": chall["ece"],
            "challenger_n": chall["n"],
        }


class ChampionChallenger:
    """Scores one machine's shadow trial and renders the verdict.

    Stateless apart from per-trial :class:`TrialState` objects the
    controller owns; every method takes the trial explicitly, so the
    harness itself needs no locking.
    """

    def __init__(
        self,
        *,
        min_eval: int = 12,
        promote_margin: float = 0.02,
        ece_slack: float = 0.05,
        hysteresis: int = 2,
        max_trial_resolutions: int = 512,
        window: int = 256,
        n_bins: int = 10,
    ) -> None:
        if min_eval < 1:
            raise ValueError(f"min_eval must be >= 1, got {min_eval}")
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        self.min_eval = min_eval
        self.promote_margin = promote_margin
        self.ece_slack = ece_slack
        self.hysteresis = hysteresis
        self.max_trial_resolutions = max_trial_resolutions
        self.window = window
        self.n_bins = n_bins

    def start(
        self,
        machine: str,
        challenger: CandidateConfig,
        predictor: IncrementalPredictor,
        *,
        backtest_brier: float,
    ) -> TrialState:
        """Open a fresh trial with empty scoreboards for both arms."""
        return TrialState(
            machine=machine,
            challenger=challenger,
            predictor=predictor,
            champion_board=Scoreboard(window=self.window, n_bins=self.n_bins),
            challenger_board=Scoreboard(window=self.window, n_bins=self.n_bins),
            backtest_brier=backtest_brier,
        )

    def record(
        self, trial: TrialState, *, shadow: bool, probability: float, outcome: bool
    ) -> None:
        """Fold one resolved pair into the trial's matching arm."""
        board = trial.challenger_board if shadow else trial.champion_board
        board.record(trial.machine, probability, outcome)
        trial.resolutions += 1

    def margin(self, trial: TrialState) -> float | None:
        """Champion Brier minus challenger Brier (None: not comparable)."""
        champ = trial.champion_board.snapshot()
        chall = trial.challenger_board.snapshot()
        if champ["n"] < self.min_eval or chall["n"] < self.min_eval:
            return None
        return champ["brier"] - chall["brier"]

    def evaluate(self, trial: TrialState) -> str:
        """One hysteresis step; ``continue`` / ``promote`` / ``abandon``."""
        margin = self.margin(trial)
        if margin is None:
            if trial.resolutions >= self.max_trial_resolutions:
                return VERDICT_ABANDON
            return VERDICT_CONTINUE
        champ = trial.champion_board.snapshot()
        chall = trial.challenger_board.snapshot()
        ece_ok = (
            champ["ece"] is None
            or chall["ece"] is None
            or chall["ece"] <= champ["ece"] + self.ece_slack
        )
        if margin >= self.promote_margin and ece_ok:
            trial.wins += 1
            if trial.wins >= self.hysteresis:
                return VERDICT_PROMOTE
            return VERDICT_CONTINUE
        trial.wins = 0
        if trial.resolutions >= self.max_trial_resolutions:
            return VERDICT_ABANDON
        return VERDICT_CONTINUE
