"""Retune search: backtest candidate hyperparameters on recent history.

The paper's predictor has three operator-visible knobs: the training
window ``N`` ("the most recent N weekdays (weekends)", Section 4.2),
the weekday/weekend day-type split itself, and the host-load thresholds
``Th1``/``Th2`` that define the five states (Section 3.2).  All three
are regime-dependent — a semester ending changes the weekly rhythm, a
repurposed machine changes the load distribution — so when the audit
flags a machine, the planner re-derives them from data instead of
guessing.

The backtest is **walk-forward**: for each of the last ``holdout_days``
days, every candidate predicts the day's clock windows from the history
*up to that day* and is scored against what actually happened (labeled
by the audit's own judge classifier, exactly as served predictions
are).  Walk-forward matters after a regime shift: the most recent days
are the new regime, so a candidate with a short training window ``N``
trains mostly on post-shift data for the later holdout days and wins on
exactly the machines that drifted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig, coarsen_states
from repro.core.online import IncrementalPredictor
from repro.core.segments import failure_free
from repro.core.states import State
from repro.core.windows import ClockWindow, day_type
from repro.traces.trace import MachineTrace

__all__ = ["CandidateConfig", "CandidateScore", "RetunePlan", "RetunePlanner"]


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the hyperparameter search space."""

    history_days: int | None = None
    day_type_split: bool = True
    th1: float = 0.20
    th2: float = 0.60

    def estimator_config(self, base: EstimatorConfig) -> EstimatorConfig:
        """The candidate's estimator config, inheriting the base's rest."""
        return replace(
            base,
            history_days=self.history_days,
            day_type_split=self.day_type_split,
        )

    def classifier(self, base: StateClassifier) -> StateClassifier:
        """The candidate's classifier, inheriting the base's tolerances."""
        thresholds = base.config.thresholds
        if thresholds.th1 == self.th1 and thresholds.th2 == self.th2:
            return base
        return StateClassifier(
            replace(
                base.config,
                thresholds=replace(thresholds, th1=self.th1, th2=self.th2),
            )
        )

    @classmethod
    def of_model(
        cls, config: EstimatorConfig, classifier: StateClassifier
    ) -> "CandidateConfig":
        """The candidate describing an existing (config, classifier) pair."""
        thresholds = classifier.config.thresholds
        return cls(
            history_days=config.history_days,
            day_type_split=config.day_type_split,
            th1=thresholds.th1,
            th2=thresholds.th2,
        )

    def describe(self) -> dict[str, Any]:
        return {
            "history_days": self.history_days,
            "day_type_split": self.day_type_split,
            "th1": self.th1,
            "th2": self.th2,
        }


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's held-out performance."""

    candidate: CandidateConfig
    brier: float
    n_eval: int
    n_skipped: int = 0

    def describe(self) -> dict[str, Any]:
        return {
            "candidate": self.candidate.describe(),
            "brier": None if math.isinf(self.brier) else round(self.brier, 6),
            "n_eval": self.n_eval,
            "n_skipped": self.n_skipped,
        }


@dataclass(frozen=True)
class RetunePlan:
    """The ranked outcome of one retune search."""

    machine: str
    holdout_days: int
    scores: tuple[CandidateScore, ...]  # best first
    champion: CandidateScore | None

    @property
    def best(self) -> CandidateScore | None:
        return self.scores[0] if self.scores else None

    @property
    def improvement(self) -> float:
        """Champion brier minus best brier (positive: the best is better)."""
        if self.best is None or self.champion is None:
            return 0.0
        if math.isinf(self.best.brier) or math.isinf(self.champion.brier):
            return 0.0
        return self.champion.brier - self.best.brier

    def describe(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "holdout_days": self.holdout_days,
            "champion": None if self.champion is None else self.champion.describe(),
            "best": None if self.best is None else self.best.describe(),
            "improvement": round(self.improvement, 6),
            "candidates": [s.describe() for s in self.scores],
        }


def default_candidates(
    champion: CandidateConfig,
    *,
    history_days: Sequence[int | None] = (None, 7, 14),
    day_type_split: Sequence[bool] = (True, False),
    thresholds: Sequence[tuple[float, float]] = ((0.20, 0.60), (0.10, 0.50)),
) -> list[CandidateConfig]:
    """The default search grid: a cross product anchored on the champion.

    The champion itself is always included, so the plan's ranking shows
    how the serving model fares on the same holdout.
    """
    grid: dict[CandidateConfig, None] = {champion: None}
    for n in history_days:
        for split in day_type_split:
            for th1, th2 in thresholds:
                grid[CandidateConfig(n, split, th1, th2)] = None
    return list(grid)


class RetunePlanner:
    """Backtests candidate models against a machine's recent history."""

    def __init__(
        self,
        judge: StateClassifier,
        *,
        step_multiple: int = 1,
        min_eval: int = 4,
    ) -> None:
        #: The classifier that labels realized outcomes — the audit's
        #: own, so the backtest scores candidates exactly as production
        #: would score their served predictions.
        self.judge = judge
        self.step_multiple = step_multiple
        self.min_eval = min_eval

    # ------------------------------------------------------------------ #

    def eval_points(
        self,
        history: MachineTrace,
        clocks: Sequence[ClockWindow],
        holdout_days: int,
    ) -> list[tuple[int, ClockWindow, bool]]:
        """Labeled ``(day, clock, failure_free)`` holdout points.

        Only windows fully inside the trace, starting in an operational
        state (the prediction is conditioned on one), are scorable.
        """
        days = history.days(None)
        if len(days) < 2:
            return []
        # Leave at least one training day before the first holdout day.
        eval_days = [d for d in days[-holdout_days:] if d > days[0]]
        points: list[tuple[int, ClockWindow, bool]] = []
        for day in eval_days:
            for clock in clocks:
                window = clock.on_day(day)
                if not history.covers(window):
                    continue
                states = self.judge.classify_window(history.window_view(window))
                states = coarsen_states(states, self.step_multiple)
                if State(int(states[0])).is_failure:
                    continue
                points.append((day, clock, failure_free(states)))
        return points

    def score(
        self,
        history: MachineTrace,
        candidate: CandidateConfig,
        points: Iterable[tuple[int, ClockWindow, bool]],
        *,
        base_config: EstimatorConfig,
        base_classifier: StateClassifier,
    ) -> CandidateScore:
        """Walk-forward Brier of one candidate over the holdout points."""
        predictor = IncrementalPredictor(
            candidate.classifier(base_classifier),
            candidate.estimator_config(base_config),
        )
        errors: list[float] = []
        skipped = 0
        for day, clock, outcome in points:
            train = history.slice_days(history.first_day, day)
            tr = predictor.predict(train, clock, day_type(day))
            if math.isnan(tr):
                skipped += 1
                continue
            errors.append((tr - (1.0 if outcome else 0.0)) ** 2)
        if len(errors) < self.min_eval:
            return CandidateScore(
                candidate, float("inf"), len(errors), n_skipped=skipped
            )
        return CandidateScore(
            candidate, sum(errors) / len(errors), len(errors), n_skipped=skipped
        )

    def search(
        self,
        machine: str,
        history: MachineTrace,
        *,
        base_config: EstimatorConfig,
        base_classifier: StateClassifier,
        clocks: Sequence[ClockWindow],
        holdout_days: int,
        candidates: Sequence[CandidateConfig] | None = None,
    ) -> RetunePlan:
        """Rank candidates by walk-forward Brier on the holdout days.

        Ties break toward the champion (no pointless trial), then toward
        the candidate's grid order.
        """
        champion = CandidateConfig.of_model(base_config, base_classifier)
        pool = list(candidates) if candidates is not None else default_candidates(champion)
        if champion not in pool:
            pool.insert(0, champion)
        points = self.eval_points(history, clocks, holdout_days)
        scores = [
            self.score(
                history, candidate, points,
                base_config=base_config, base_classifier=base_classifier,
            )
            for candidate in pool
        ]
        ranked = sorted(
            scores,
            key=lambda s: (s.brier, s.candidate != champion, pool.index(s.candidate)),
        )
        champion_score = next(s for s in scores if s.candidate == champion)
        return RetunePlan(
            machine=machine,
            holdout_days=holdout_days,
            scores=tuple(ranked),
            champion=champion_score,
        )
