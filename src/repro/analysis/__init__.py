"""Availability-data analysis: distribution fitting and temporal patterns.

The quantitative companion to the measurement literature the paper
builds on: duration-distribution fitting
(:mod:`~repro.analysis.distributions`) and load-pattern analysis
(:mod:`~repro.analysis.patterns`).
"""

from repro.analysis.distributions import (
    SUPPORTED,
    DistributionFit,
    best_fit,
    fit_all,
    fit_distribution,
)
from repro.analysis.patterns import (
    DiurnalProfile,
    day_type_separation,
    diurnal_profile,
    diurnal_strength,
    failure_intensity_by_hour,
    load_autocorrelation,
)

__all__ = [
    "SUPPORTED",
    "DistributionFit",
    "DiurnalProfile",
    "best_fit",
    "day_type_separation",
    "diurnal_profile",
    "diurnal_strength",
    "failure_intensity_by_hour",
    "fit_all",
    "fit_distribution",
    "load_autocorrelation",
]
