"""Distribution fitting for availability data.

The machine-availability measurement literature the paper builds on
([4, 21, 16] — enterprise/desktop availability studies) characterizes
uptime and downtime durations by fitting candidate distributions
(exponential, Weibull, lognormal, Pareto) and comparing goodness of
fit.  This module provides that analysis for our traces: maximum-
likelihood fits, Kolmogorov-Smirnov distances, and a best-fit report —
used by the CHAR experiment to characterize the synthetic testbed the
way those papers characterized real ones.

All fits are on strictly positive duration samples (seconds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize, stats

__all__ = ["DistributionFit", "fit_distribution", "fit_all", "best_fit", "SUPPORTED"]

SUPPORTED = ("exponential", "weibull", "lognormal", "pareto")


@dataclass(frozen=True)
class DistributionFit:
    """One fitted candidate distribution.

    ``params`` are the natural parameters of the family; ``ks`` is the
    Kolmogorov-Smirnov distance between the empirical CDF and the fit
    (smaller is better); ``log_likelihood`` the total log-likelihood.
    """

    name: str
    params: dict[str, float]
    ks: float
    log_likelihood: float
    n: int

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted CDF."""
        return _CDFS[self.name](np.asarray(x, dtype=float), self.params)

    def mean(self) -> float:
        """Mean of the fitted distribution (may be inf for heavy tails)."""
        p = self.params
        if self.name == "exponential":
            return 1.0 / p["rate"]
        if self.name == "weibull":
            return p["scale"] * math.gamma(1.0 + 1.0 / p["shape"])
        if self.name == "lognormal":
            return math.exp(p["mu"] + 0.5 * p["sigma"] ** 2)
        if self.name == "pareto":
            if p["alpha"] <= 1.0:
                return math.inf
            return p["alpha"] * p["xmin"] / (p["alpha"] - 1.0)
        raise AssertionError(self.name)


def _validate(samples: Sequence[float]) -> np.ndarray:
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size < 3:
        raise ValueError(f"need at least 3 samples in a 1-D array, got shape {x.shape}")
    if np.any(x <= 0.0) or not np.all(np.isfinite(x)):
        raise ValueError("duration samples must be positive and finite")
    return x


# ---------------------------------------------------------------------- #
# per-family MLE + CDF
# ---------------------------------------------------------------------- #


def _fit_exponential(x: np.ndarray) -> dict[str, float]:
    return {"rate": 1.0 / float(x.mean())}


def _fit_lognormal(x: np.ndarray) -> dict[str, float]:
    logs = np.log(x)
    return {"mu": float(logs.mean()), "sigma": float(max(logs.std(), 1e-9))}


def _fit_pareto(x: np.ndarray) -> dict[str, float]:
    xmin = float(x.min())
    alpha = x.size / float(np.sum(np.log(x / xmin)) + 1e-12)
    return {"xmin": xmin, "alpha": float(max(alpha, 1e-6))}


def _fit_weibull(x: np.ndarray) -> dict[str, float]:
    # MLE profile equation for the shape k; scale has a closed form.
    logs = np.log(x)

    def profile(k: float) -> float:
        xk = x**k
        return float(np.sum(xk * logs) / np.sum(xk) - 1.0 / k - logs.mean())

    lo, hi = 1e-3, 50.0
    try:
        k = optimize.brentq(profile, lo, hi, xtol=1e-9)
    except ValueError:
        # Degenerate samples (e.g. all equal): fall back to exponential-ish.
        k = 1.0
    scale = float((np.mean(x**k)) ** (1.0 / k))
    return {"shape": float(k), "scale": scale}


def _cdf_exponential(x: np.ndarray, p: dict[str, float]) -> np.ndarray:
    return 1.0 - np.exp(-p["rate"] * x)


def _cdf_weibull(x: np.ndarray, p: dict[str, float]) -> np.ndarray:
    return 1.0 - np.exp(-((np.maximum(x, 0.0) / p["scale"]) ** p["shape"]))


def _cdf_lognormal(x: np.ndarray, p: dict[str, float]) -> np.ndarray:
    return stats.norm.cdf((np.log(np.maximum(x, 1e-300)) - p["mu"]) / p["sigma"])


def _cdf_pareto(x: np.ndarray, p: dict[str, float]) -> np.ndarray:
    out = 1.0 - (p["xmin"] / np.maximum(x, p["xmin"])) ** p["alpha"]
    return np.where(x < p["xmin"], 0.0, out)


def _loglik_exponential(x: np.ndarray, p: dict[str, float]) -> float:
    return float(x.size * math.log(p["rate"]) - p["rate"] * x.sum())


def _loglik_weibull(x: np.ndarray, p: dict[str, float]) -> float:
    k, lam = p["shape"], p["scale"]
    return float(
        x.size * (math.log(k) - k * math.log(lam))
        + (k - 1.0) * np.sum(np.log(x))
        - np.sum((x / lam) ** k)
    )


def _loglik_lognormal(x: np.ndarray, p: dict[str, float]) -> float:
    mu, sigma = p["mu"], p["sigma"]
    logs = np.log(x)
    return float(
        -x.size * (math.log(sigma) + 0.5 * math.log(2 * math.pi))
        - np.sum(logs)
        - np.sum((logs - mu) ** 2) / (2 * sigma**2)
    )


def _loglik_pareto(x: np.ndarray, p: dict[str, float]) -> float:
    a, xmin = p["alpha"], p["xmin"]
    return float(
        x.size * (math.log(a) + a * math.log(xmin)) - (a + 1.0) * np.sum(np.log(x))
    )


_FITTERS: dict[str, Callable] = {
    "exponential": _fit_exponential,
    "weibull": _fit_weibull,
    "lognormal": _fit_lognormal,
    "pareto": _fit_pareto,
}
_CDFS: dict[str, Callable] = {
    "exponential": _cdf_exponential,
    "weibull": _cdf_weibull,
    "lognormal": _cdf_lognormal,
    "pareto": _cdf_pareto,
}
_LOGLIKS: dict[str, Callable] = {
    "exponential": _loglik_exponential,
    "weibull": _loglik_weibull,
    "lognormal": _loglik_lognormal,
    "pareto": _loglik_pareto,
}


def fit_distribution(samples: Sequence[float], name: str) -> DistributionFit:
    """MLE-fit one family and score it with the KS distance."""
    if name not in SUPPORTED:
        raise ValueError(f"unknown distribution {name!r}; supported: {SUPPORTED}")
    x = _validate(samples)
    params = _FITTERS[name](x)
    ks = float(stats.kstest(x, lambda v: _CDFS[name](v, params)).statistic)
    return DistributionFit(
        name=name,
        params=params,
        ks=ks,
        log_likelihood=_LOGLIKS[name](x, params),
        n=int(x.size),
    )


def fit_all(samples: Sequence[float]) -> list[DistributionFit]:
    """Fit every supported family, sorted by KS distance (best first)."""
    fits = [fit_distribution(samples, name) for name in SUPPORTED]
    return sorted(fits, key=lambda f: f.ks)


def best_fit(samples: Sequence[float]) -> DistributionFit:
    """The family with the smallest KS distance."""
    return fit_all(samples)[0]
