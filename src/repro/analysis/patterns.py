"""Temporal-pattern analysis of host-load traces.

Quantifies the structural properties the paper's method assumes:

* a **diurnal profile** per day type and its strength (how much of the
  load variance the time-of-day explains);
* **day-type separation** — weekdays differ from weekends;
* the **load autocorrelation function**, whose fast decay is why linear
  multi-step forecasts collapse (paper Section 7.2.1);
* per-hour **failure intensity**, the calendar of risk a proactive
  scheduler reads.

These are the quantitative versions of the paper's citations to host-
load pattern studies [19, 29] and are used by the CHAR experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.windows import DayType
from repro.traces.stats import hourly_mean_load, unavailability_events
from repro.traces.trace import MachineTrace

__all__ = [
    "DiurnalProfile",
    "diurnal_profile",
    "diurnal_strength",
    "day_type_separation",
    "load_autocorrelation",
    "failure_intensity_by_hour",
]


@dataclass(frozen=True)
class DiurnalProfile:
    """Mean and standard deviation of load per hour-of-day for one day type."""

    day_type: DayType
    mean: np.ndarray  # (24,)
    std: np.ndarray  # (24,)
    n_days: int

    @property
    def peak_hour(self) -> int:
        """Hour of day with the highest mean load."""
        return int(np.nanargmax(self.mean))

    @property
    def trough_hour(self) -> int:
        """Hour of day with the lowest mean load."""
        return int(np.nanargmin(self.mean))


def diurnal_profile(trace: MachineTrace, dtype: DayType) -> DiurnalProfile:
    """Per-hour load statistics across the trace's days of one type."""
    days = trace.days(dtype)
    if not days:
        raise ValueError(f"trace has no full {dtype} days")
    rows = np.vstack([hourly_mean_load(trace, d) for d in days])
    return DiurnalProfile(
        day_type=dtype,
        mean=np.nanmean(rows, axis=0),
        std=np.nanstd(rows, axis=0),
        n_days=len(days),
    )


def diurnal_strength(trace: MachineTrace, dtype: DayType) -> float:
    """Fraction of hourly load variance explained by the hour-of-day.

    The one-way ANOVA R^2 with hour-of-day as the factor: 1 = load is a
    pure function of the clock (perfectly predictable pattern), 0 = no
    diurnal structure at all.
    """
    days = trace.days(dtype)
    if not days:
        raise ValueError(f"trace has no full {dtype} days")
    rows = np.vstack([hourly_mean_load(trace, d) for d in days])
    flat = rows[np.isfinite(rows)]
    if flat.size == 0 or np.var(flat) < 1e-15:
        return 0.0
    grand = flat.mean()
    hour_means = np.nanmean(rows, axis=0)
    counts = np.sum(np.isfinite(rows), axis=0)
    between = float(np.nansum(counts * (hour_means - grand) ** 2))
    total = float(np.nansum((rows - grand) ** 2))
    return max(0.0, min(1.0, between / total)) if total > 0 else 0.0


def day_type_separation(trace: MachineTrace) -> float:
    """Normalized distance between weekday and weekend diurnal profiles.

    ``mean |wd - we| / mean load`` — 0 means the two day types are
    indistinguishable (pooling them would be fine); the larger the
    value, the more the paper's same-type-days-only pooling matters.
    """
    wd = diurnal_profile(trace, DayType.WEEKDAY).mean
    we = diurnal_profile(trace, DayType.WEEKEND).mean
    ok = np.isfinite(wd) & np.isfinite(we)
    if not np.any(ok):
        return float("nan")
    scale = max(float(np.nanmean(np.concatenate([wd[ok], we[ok]]))), 1e-9)
    return float(np.mean(np.abs(wd[ok] - we[ok])) / scale)


def load_autocorrelation(
    trace: MachineTrace, max_lag_seconds: float = 3600.0
) -> np.ndarray:
    """Autocorrelation of the load signal up to ``max_lag_seconds``.

    Down samples are excluded by masking them to the mean (they carry
    no load information).  Returns one value per sample lag, starting
    at lag 0 (= 1.0).
    """
    max_lags = max(1, int(max_lag_seconds / trace.sample_period))
    x = trace.load.astype(float).copy()
    mean_up = float(x[trace.up].mean()) if trace.up.any() else 0.0
    x[~trace.up] = mean_up
    x -= x.mean()
    var = float(np.dot(x, x))
    if var < 1e-15:
        return np.ones(max_lags + 1)
    out = np.empty(max_lags + 1)
    for k in range(max_lags + 1):
        out[k] = np.dot(x[: x.size - k], x[k:]) / var
    return out


def failure_intensity_by_hour(
    trace: MachineTrace,
    classifier: StateClassifier | None = None,
    dtype: DayType | None = None,
) -> np.ndarray:
    """Expected unavailability events per hour-of-day (24 values).

    Optionally restricted to one day type.  This is the "calendar of
    risk" behind the paper's choice to inject noise at 8:00 — the hour
    with near-zero intensity on its testbed.
    """
    events = unavailability_events(trace, classifier or StateClassifier())
    counts = np.zeros(24)
    for e in events:
        day = win.day_index(e.start)
        if dtype is not None and win.day_type(day) is not dtype:
            continue
        counts[int(win.time_of_day(e.start) // 3600)] += 1
    if dtype is None:
        n_days = max(trace.n_days, 1)
    else:
        n_days = max(len(trace.days(dtype)), 1)
    return counts / n_days
