"""Online prediction-quality auditing (closes the paper's Section 5 loop).

The serving tier ships TR predictions; this package checks them against
what actually happened.  :class:`PredictionJournal` durably records every
served ``predict``/``horizon`` response, the resolver inside
:class:`PredictionAudit` labels each prediction once ingested samples
cover its window, :class:`Scoreboard` keeps sliding-window Brier /
reliability-bin / ECE metrics, and :class:`DriftDetector` raises
``model_degraded`` alarms when the model goes stale.
"""

from repro.audit.audit import (
    SHADOW_OP_PREFIX,
    AuditConfig,
    PredictionAudit,
    is_shadow_op,
)
from repro.audit.drift import DriftConfig, DriftDetector, PageHinkley
from repro.audit.journal import (
    OUTCOME_AVAILABLE,
    OUTCOME_EXCLUDED,
    OUTCOME_FAILED,
    OUTCOMES,
    PredictionJournal,
    PredictionRecord,
    ResolutionRecord,
)
from repro.audit.scoreboard import (
    Scoreboard,
    bins_from_pairs,
    derive_metrics,
    empty_bins,
    merge_bins,
    merge_quality,
)

__all__ = [
    "AuditConfig",
    "PredictionAudit",
    "SHADOW_OP_PREFIX",
    "is_shadow_op",
    "DriftConfig",
    "DriftDetector",
    "PageHinkley",
    "PredictionJournal",
    "PredictionRecord",
    "ResolutionRecord",
    "OUTCOMES",
    "OUTCOME_AVAILABLE",
    "OUTCOME_FAILED",
    "OUTCOME_EXCLUDED",
    "Scoreboard",
    "bins_from_pairs",
    "derive_metrics",
    "empty_bins",
    "merge_bins",
    "merge_quality",
]
