"""The audit facade: journal, resolve, score, and alarm in one object.

:class:`PredictionAudit` is what the serving tier holds.  The dispatcher
calls :meth:`record_prediction` when it serves a ``predict`` or
``horizon`` response and :meth:`observe_ingest` when ``extend`` /
``register`` grow a machine's history; everything else — pinning the
prediction to a concrete future window, labeling it once that window
has elapsed, scoring, drift detection, durability — happens here.

**Target windows.**  A served prediction is a claim about the *next*
occurrence of the requested clock window: the first day of the matching
day type whose window starts at or after the machine's current history
end.  That absolute window is frozen into the journal record, so the
resolver needs no guesswork later.

**Resolution.**  Once ingested samples cover a pending window, the
five-state classifier labels the realized interval exactly as the
paper's empirical validation does (:mod:`repro.core.empirical`):
``available`` when the coarsened state sequence stays failure-free,
``failed`` when it does not, ``excluded`` when the window starts in a
failure state (the prediction is conditioned on an operational start)
or the replaced history no longer covers it.  Excluded windows are
journaled but never scored.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.audit.drift import DriftConfig, DriftDetector
from repro.audit.journal import (
    OUTCOME_AVAILABLE,
    OUTCOME_EXCLUDED,
    OUTCOME_FAILED,
    PredictionJournal,
    PredictionRecord,
    ResolutionRecord,
)
from repro.audit.scoreboard import Scoreboard
from repro.core.classifier import StateClassifier
from repro.core.estimator import coarsen_states
from repro.core.segments import failure_free
from repro.core.states import State
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType, day_index, day_type
from repro.obs.instruments import instrument
from repro.traces.trace import MachineTrace

__all__ = ["AuditConfig", "PredictionAudit", "SHADOW_OP_PREFIX", "is_shadow_op"]

#: Ops journaled by the adapt tier's challenger models.  Shadow
#: predictions ride the same journal and resolver as served ones (same
#: durability, same labeling), but they are *not* folded into the main
#: scoreboard or the drift detector — the champion's quality must not be
#: diluted by a challenger that is still on trial.  The
#: champion/challenger harness scores them in its own scoreboards.
SHADOW_OP_PREFIX = "shadow"


def is_shadow_op(op: str) -> bool:
    """Whether a journal op names a shadow (unserved) prediction."""
    return op.startswith(SHADOW_OP_PREFIX)


@dataclass(frozen=True)
class AuditConfig:
    """Everything one :class:`PredictionAudit` needs to know."""

    #: Identity stamped into journal records (the cluster merges by it).
    node_id: str = "local"
    #: Journal directory (None: memory-only, same API, no durability).
    directory: str | Path | None = None
    #: WAL durability policy for the journal segments.
    fsync: str = "always"
    #: Sliding-window size of the scoreboard (resolved pairs retained).
    window: int = 2048
    #: Probability bins for the reliability diagram / ECE / merging.
    n_bins: int = 10
    #: Oldest pending predictions are dropped beyond this per-machine
    #: bound (a machine that stops reporting must not grow state forever).
    max_pending_per_machine: int = 1024
    drift: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        if self.max_pending_per_machine < 1:
            raise ValueError(
                f"max_pending_per_machine must be >= 1, "
                f"got {self.max_pending_per_machine}"
            )


class PredictionAudit:
    """Online prediction-quality monitor for one serving process.

    Thread-safe: the dispatcher calls in from multiple worker threads.
    """

    def __init__(
        self,
        config: AuditConfig | None = None,
        *,
        classifier: StateClassifier | None = None,
        step_multiple: int = 1,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or AuditConfig()
        self.classifier = classifier or StateClassifier()
        self.step_multiple = step_multiple
        self._clock = clock
        self._lock = threading.RLock()
        self.journal = PredictionJournal(
            self.config.directory, fsync=self.config.fsync
        )
        self.scoreboard = Scoreboard(
            window=self.config.window, n_bins=self.config.n_bins
        )
        self.drift = DriftDetector(self.config.drift, node=self.config.node_id)
        #: machine -> {seq -> pending record}, insertion-ordered by seq.
        self._pending: dict[str, dict[int, PredictionRecord]] = {}
        self._journaled = {"predict": 0, "horizon": 0}
        self._resolved = {
            OUTCOME_AVAILABLE: 0, OUTCOME_FAILED: 0, OUTCOME_EXCLUDED: 0,
        }
        self.pending_dropped = 0
        self._replay()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    def _replay(self) -> None:
        """Rebuild scoreboard/drift/pending from a recovered journal."""
        by_seq = self.journal.predictions
        for record in sorted(by_seq.values(), key=lambda r: r.seq):
            self._journaled[record.op] = self._journaled.get(record.op, 0) + 1
        for res in self.journal.resolutions:
            self._resolved[res.outcome] = self._resolved.get(res.outcome, 0) + 1
            record = by_seq.get(res.seq)
            if record is not None and is_shadow_op(record.op):
                continue
            if res.outcome != OUTCOME_EXCLUDED:
                outcome = res.outcome == OUTCOME_AVAILABLE
                self.scoreboard.record(res.machine, res.probability, outcome)
                error = (res.probability - (1.0 if outcome else 0.0)) ** 2
                self.drift.update(
                    error,
                    self.scoreboard.snapshot(),
                    machine=res.machine,
                    model_time=None if record is None else record.window_end,
                    emit=False,
                )
        for record in sorted(self.journal.pending.values(), key=lambda r: r.seq):
            self._pending.setdefault(record.machine, {})[record.seq] = record
        self._update_gauges()

    # ------------------------------------------------------------------ #
    # the record path (called at response time)
    # ------------------------------------------------------------------ #

    def record_prediction(
        self,
        op: str,
        machine: str,
        window: ClockWindow,
        dtype: DayType,
        probability: float,
        *,
        history_end: float,
        init_state: State | None = None,
    ) -> PredictionRecord | None:
        """Journal one served response; returns None when unscorable.

        ``probability`` is the served TR (for ``horizon`` the caller
        passes the TR threshold and a window cut to the solved horizon).
        A NaN or out-of-range value — e.g. a prediction over no matching
        history days — cannot be scored and is not journaled.
        """
        p = float(probability)
        if math.isnan(p) or not 0.0 <= p <= 1.0:
            return None
        with self._lock:
            target = self._target_window(window, dtype, history_end)
            record = PredictionRecord(
                seq=self.journal.next_seq(),
                op=op,
                machine=machine,
                probability=p,
                window_start=target.start,
                window_duration=target.duration,
                day_type=dtype.value,
                issued_at=self._clock(),
                node=self.config.node_id,
                init_state=None if init_state is None else init_state.name,
            )
            self.journal.append_prediction(record)
            self._journaled[op] = self._journaled.get(op, 0) + 1
            queue = self._pending.setdefault(machine, {})
            queue[record.seq] = record
            while len(queue) > self.config.max_pending_per_machine:
                oldest = next(iter(queue))
                del queue[oldest]
                self.journal.pending.pop(oldest, None)
                self.pending_dropped += 1
            instrument("audit_predictions_journaled_total").labels(op=op).inc()
            self._update_gauges()
            return record

    @staticmethod
    def _target_window(
        window: ClockWindow, dtype: DayType, history_end: float
    ) -> AbsoluteWindow:
        """First occurrence of ``window`` on a ``dtype`` day at/after now."""
        day = max(0, day_index(history_end))
        for _ in range(8):  # a matching day type recurs within a week
            if day_type(day) is dtype:
                candidate = window.on_day(day)
                if candidate.start >= history_end:
                    return candidate
            day += 1
        raise RuntimeError(
            f"no {dtype.value} occurrence of {window} after t={history_end}"
        )

    # ------------------------------------------------------------------ #
    # the resolve path (called when samples arrive)
    # ------------------------------------------------------------------ #

    def observe_ingest(
        self, machine: str, history: MachineTrace
    ) -> list[ResolutionRecord]:
        """Resolve every pending prediction whose window has elapsed."""
        with self._lock:
            queue = self._pending.get(machine)
            if not queue:
                return []
            due = [
                record
                for record in queue.values()
                if record.window_end <= history.end_time
            ]
            out: list[ResolutionRecord] = []
            for record in due:
                outcome = self._label(record, history)
                resolution = ResolutionRecord(
                    seq=record.seq,
                    machine=machine,
                    outcome=outcome,
                    probability=record.probability,
                    resolved_at=self._clock(),
                )
                self.journal.append_resolution(resolution)
                del queue[record.seq]
                self._resolved[outcome] = self._resolved.get(outcome, 0) + 1
                instrument("audit_resolutions_total").labels(outcome=outcome).inc()
                if outcome != OUTCOME_EXCLUDED and not is_shadow_op(record.op):
                    scored = outcome == OUTCOME_AVAILABLE
                    self.scoreboard.record(machine, record.probability, scored)
                    error = (record.probability - (1.0 if scored else 0.0)) ** 2
                    self.drift.update(
                        error,
                        self.scoreboard.snapshot(),
                        machine=machine,
                        model_time=record.window_end,
                        sample_period=history.sample_period,
                    )
                out.append(resolution)
            if not queue:
                self._pending.pop(machine, None)
            if out:
                self._update_gauges()
            return out

    def _label(self, record: PredictionRecord, history: MachineTrace) -> str:
        window = AbsoluteWindow(
            start=record.window_start, duration=record.window_duration
        )
        if not history.covers(window):
            # register() replaced the history with one that starts later
            # than the promised window; there is nothing to score.
            return OUTCOME_EXCLUDED
        states = self.classifier.classify_window(history.window_view(window))
        states = coarsen_states(states, self.step_multiple)
        if State(int(states[0])).is_failure:
            return OUTCOME_EXCLUDED
        return OUTCOME_AVAILABLE if failure_free(states) else OUTCOME_FAILED

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    @property
    def n_pending(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._pending.values())

    def quality(self, machine: str | None = None) -> dict[str, Any]:
        """The ``quality`` op result: scoreboard snapshots + drift state."""
        with self._lock:
            if machine is None:
                names = sorted(set(self.scoreboard.machine_ids()) | set(self._pending))
            else:
                names = [machine]
            machines = {}
            for name in names:
                snap = self.scoreboard.snapshot(name)
                snap["pending"] = len(self._pending.get(name, ()))
                machines[name] = snap
            return {
                "enabled": True,
                "node": self.config.node_id,
                "durable": self.journal.durable,
                "journaled": dict(self._journaled),
                "pending": sum(len(q) for q in self._pending.values()),
                "pending_dropped": self.pending_dropped,
                "resolved": dict(self._resolved),
                "window": self.config.window,
                "n_bins": self.config.n_bins,
                "aggregate": self.scoreboard.snapshot(),
                "machines": machines,
                "drift": self.drift.status(),
            }

    def _update_gauges(self) -> None:
        instrument("audit_pending_predictions").set(
            float(sum(len(q) for q in self._pending.values()))
        )
        snap = self.scoreboard.snapshot()
        if snap["brier"] is not None:
            instrument("audit_windowed_brier").set(snap["brier"])
            instrument("audit_windowed_ece").set(snap["ece"])
        instrument("audit_model_degraded").set(1.0 if self.drift.degraded else 0.0)

    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        with self._lock:
            self.journal.sync()

    def close(self) -> None:
        """Flush the journal; part of the server's graceful drain."""
        with self._lock:
            self.journal.close()

    def __enter__(self) -> "PredictionAudit":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
