"""Model-drift detection on the stream of resolved prediction errors.

The availability model drifts when host behavior shifts — a lab machine
repurposed as a build server, a semester ending, a new user — and the
predictor keeps answering from a history that no longer describes the
machine.  The detector watches the per-resolution squared error stream
``(p - y)²`` three ways:

* **Page–Hinkley** — the classic sequential change-point test on the
  error mean: ``m_t = Σ (x_i - x̄_i - δ)`` with alarm when
  ``m_t - min m_t > λ``.  Catches a *shift* quickly, long before a wide
  sliding window drags the averaged score over any absolute threshold.
* **Windowed Brier threshold** — absolute floor on recent accuracy.
* **Windowed ECE threshold** — absolute floor on recent calibration.

Alarms are edge-triggered: each reason fires an event (via
:mod:`repro.obs.events`) and bumps ``audit_drift_alarms_total`` once per
crossing, and the detector latches ``degraded`` until the windowed
metrics have looked healthy for ``min_samples`` consecutive resolutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.events import get_event_log
from repro.obs.instruments import instrument

__all__ = ["DriftConfig", "PageHinkley", "DriftDetector"]


@dataclass(frozen=True)
class DriftConfig:
    """Alarm thresholds and the Page–Hinkley tuning of one detector."""

    #: Resolved pairs required before any alarm may fire (and before a
    #: latched alarm may clear).
    min_samples: int = 30
    #: Windowed-Brier ceiling (None disables the threshold alarm).
    brier_threshold: float | None = 0.25
    #: Windowed-ECE ceiling (None disables the threshold alarm).
    ece_threshold: float | None = 0.2
    #: Page–Hinkley drift allowance δ (tolerated mean increase per step).
    ph_delta: float = 0.005
    #: Page–Hinkley alarm threshold λ on the cumulative deviation.
    ph_lambda: float = 2.0

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.ph_lambda <= 0:
            raise ValueError(f"ph_lambda must be positive, got {self.ph_lambda}")


class PageHinkley:
    """Sequential change-point test for an increase of the stream mean."""

    def __init__(self, delta: float, lam: float) -> None:
        self.delta = delta
        self.lam = lam
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.cumulative = 0.0
        self.minimum = 0.0

    def update(self, x: float) -> bool:
        """Feed one observation; True when the test statistic crosses λ."""
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.cumulative += x - self.mean - self.delta
        self.minimum = min(self.minimum, self.cumulative)
        return self.cumulative - self.minimum > self.lam


class DriftDetector:
    """Raises ``model_degraded`` alarms from the resolved error stream."""

    def __init__(self, config: DriftConfig | None = None, *, node: str = "local") -> None:
        self.config = config or DriftConfig()
        self.node = node
        self.alarms = 0
        self.degraded = False
        self.last_alarm: dict[str, Any] | None = None
        self._ph = PageHinkley(self.config.ph_delta, self.config.ph_lambda)
        self._brier_breached = False
        self._ece_breached = False
        self._healthy_streak = 0

    def update(
        self, error: float, metrics: Mapping[str, Any], *, emit: bool = True
    ) -> list[str]:
        """Feed one resolution; returns the alarm reasons it fired.

        ``error`` is the squared error of the resolved pair; ``metrics``
        the current aggregate scoreboard snapshot.  With ``emit=False``
        (journal replay after a restart) the detector state is rebuilt
        but no events or counters are re-emitted.
        """
        cfg = self.config
        n = int(metrics.get("n") or 0)
        reasons: list[str] = []

        ph_crossed = self._ph.update(error)
        if ph_crossed and self._ph.n >= cfg.min_samples:
            reasons.append("page_hinkley")
            self._ph.reset()

        brier = metrics.get("brier")
        ece = metrics.get("ece")
        brier_breach = (
            cfg.brier_threshold is not None
            and n >= cfg.min_samples
            and brier is not None
            and brier > cfg.brier_threshold
        )
        ece_breach = (
            cfg.ece_threshold is not None
            and n >= cfg.min_samples
            and ece is not None
            and ece > cfg.ece_threshold
        )
        if brier_breach and not self._brier_breached:
            reasons.append("brier")
        if ece_breach and not self._ece_breached:
            reasons.append("ece")
        self._brier_breached = brier_breach
        self._ece_breached = ece_breach

        if reasons:
            self.degraded = True
            self._healthy_streak = 0
            for reason in reasons:
                self._alarm(reason, metrics, emit=emit)
        elif brier_breach or ece_breach:
            self._healthy_streak = 0
        else:
            self._healthy_streak += 1
            if self.degraded and self._healthy_streak >= cfg.min_samples:
                self.degraded = False
                if emit:
                    get_event_log().emit(
                        "model_recovered", node=self.node,
                        brier=brier, ece=ece, n=n,
                    )
        if emit:
            instrument("audit_model_degraded").set(1.0 if self.degraded else 0.0)
        return reasons

    def _alarm(self, reason: str, metrics: Mapping[str, Any], *, emit: bool) -> None:
        self.alarms += 1
        self.last_alarm = {
            "reason": reason,
            "brier": metrics.get("brier"),
            "ece": metrics.get("ece"),
            "n": int(metrics.get("n") or 0),
        }
        if not emit:
            return
        instrument("audit_drift_alarms_total").labels(reason=reason).inc()
        get_event_log().emit(
            "model_degraded",
            severity="warning",
            node=self.node,
            reason=reason,
            brier=metrics.get("brier"),
            ece=metrics.get("ece"),
            n=int(metrics.get("n") or 0),
        )

    def status(self) -> dict[str, Any]:
        return {
            "degraded": self.degraded,
            "alarms": self.alarms,
            "last_alarm": self.last_alarm,
        }
