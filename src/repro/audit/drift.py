"""Model-drift detection on the stream of resolved prediction errors.

The availability model drifts when host behavior shifts — a lab machine
repurposed as a build server, a semester ending, a new user — and the
predictor keeps answering from a history that no longer describes the
machine.  The detector watches the per-resolution squared error stream
``(p - y)²`` three ways:

* **Page–Hinkley** — the classic sequential change-point test on the
  error mean: ``m_t = Σ (x_i - x̄_i - δ)`` with alarm when
  ``m_t - min m_t > λ``.  Catches a *shift* quickly, long before a wide
  sliding window drags the averaged score over any absolute threshold.
* **Windowed Brier threshold** — absolute floor on recent accuracy.
* **Windowed ECE threshold** — absolute floor on recent calibration.

Alarms are edge-triggered: each reason fires an event (via
:mod:`repro.obs.events`) and bumps ``audit_drift_alarms_total`` once per
crossing, and the detector latches ``degraded`` until the windowed
metrics have looked healthy for ``min_samples`` consecutive resolutions.

Beside the aggregate stream the detector runs one Page–Hinkley test
*per machine*: a single host changing regime is diluted in the fleet
aggregate but obvious in its own error stream, and the adapt tier needs
to know *which* machine to retune.  Every alarm records its model-clock
context (``model_time``, sample ``slot``, ``day``) so operators — and
the retune planner — can line the alarm up against the trace instead of
against wall time.  :meth:`DriftDetector.reset_machine` clears one
machine's test after a model promotion, so post-recovery data is not
judged against pre-shift statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.windows import day_index
from repro.obs.events import get_event_log
from repro.obs.instruments import instrument

__all__ = ["DriftConfig", "PageHinkley", "DriftDetector"]


@dataclass(frozen=True)
class DriftConfig:
    """Alarm thresholds and the Page–Hinkley tuning of one detector."""

    #: Resolved pairs required before any alarm may fire (and before a
    #: latched alarm may clear).
    min_samples: int = 30
    #: Windowed-Brier ceiling (None disables the threshold alarm).
    brier_threshold: float | None = 0.25
    #: Windowed-ECE ceiling (None disables the threshold alarm).
    ece_threshold: float | None = 0.2
    #: Page–Hinkley drift allowance δ (tolerated mean increase per step).
    ph_delta: float = 0.005
    #: Page–Hinkley alarm threshold λ on the cumulative deviation.
    ph_lambda: float = 2.0

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.ph_lambda <= 0:
            raise ValueError(f"ph_lambda must be positive, got {self.ph_lambda}")


class PageHinkley:
    """Sequential change-point test for an increase of the stream mean."""

    def __init__(self, delta: float, lam: float) -> None:
        self.delta = delta
        self.lam = lam
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.cumulative = 0.0
        self.minimum = 0.0

    def update(self, x: float) -> bool:
        """Feed one observation; True when the test statistic crosses λ."""
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.cumulative += x - self.mean - self.delta
        self.minimum = min(self.minimum, self.cumulative)
        return self.cumulative - self.minimum > self.lam


@dataclass
class _MachineDrift:
    """One machine's Page–Hinkley test and alarm bookkeeping."""

    ph: PageHinkley
    alarms: int = 0
    degraded: bool = False
    last_alarm: dict[str, Any] | None = None
    healthy_streak: int = 0
    errors: int = field(default=0)


class DriftDetector:
    """Raises ``model_degraded`` alarms from the resolved error stream."""

    def __init__(self, config: DriftConfig | None = None, *, node: str = "local") -> None:
        self.config = config or DriftConfig()
        self.node = node
        self.alarms = 0
        self.degraded = False
        self.last_alarm: dict[str, Any] | None = None
        self._ph = PageHinkley(self.config.ph_delta, self.config.ph_lambda)
        self._brier_breached = False
        self._ece_breached = False
        self._healthy_streak = 0
        self._machines: dict[str, _MachineDrift] = {}

    def _machine_state(self, machine: str) -> _MachineDrift:
        state = self._machines.get(machine)
        if state is None:
            state = self._machines[machine] = _MachineDrift(
                ph=PageHinkley(self.config.ph_delta, self.config.ph_lambda)
            )
        return state

    @staticmethod
    def _clock_context(
        model_time: float | None, sample_period: float | None
    ) -> dict[str, Any]:
        """Model-clock coordinates of one resolution (all None-safe)."""
        if model_time is None:
            return {"model_time": None, "slot": None, "day": None}
        return {
            "model_time": float(model_time),
            "slot": (
                None if not sample_period
                else int(model_time // sample_period)
            ),
            "day": day_index(model_time),
        }

    def update(
        self,
        error: float,
        metrics: Mapping[str, Any],
        *,
        machine: str | None = None,
        model_time: float | None = None,
        sample_period: float | None = None,
        emit: bool = True,
    ) -> list[str]:
        """Feed one resolution; returns the alarm reasons it fired.

        ``error`` is the squared error of the resolved pair; ``metrics``
        the current aggregate scoreboard snapshot.  ``machine`` routes
        the error into that machine's own Page–Hinkley test as well;
        ``model_time`` (the resolved window's end on the model clock)
        and ``sample_period`` stamp the alarm's model-clock slot.  With
        ``emit=False`` (journal replay after a restart) the detector
        state is rebuilt but no events or counters are re-emitted.
        """
        cfg = self.config
        n = int(metrics.get("n") or 0)
        reasons: list[str] = []
        clock = self._clock_context(model_time, sample_period)

        ph_crossed = self._ph.update(error)
        if ph_crossed and self._ph.n >= cfg.min_samples:
            reasons.append("page_hinkley")
            self._ph.reset()

        if machine is not None:
            self._update_machine(machine, error, clock, emit=emit)

        brier = metrics.get("brier")
        ece = metrics.get("ece")
        brier_breach = (
            cfg.brier_threshold is not None
            and n >= cfg.min_samples
            and brier is not None
            and brier > cfg.brier_threshold
        )
        ece_breach = (
            cfg.ece_threshold is not None
            and n >= cfg.min_samples
            and ece is not None
            and ece > cfg.ece_threshold
        )
        if brier_breach and not self._brier_breached:
            reasons.append("brier")
        if ece_breach and not self._ece_breached:
            reasons.append("ece")
        self._brier_breached = brier_breach
        self._ece_breached = ece_breach

        if reasons:
            self.degraded = True
            self._healthy_streak = 0
            for reason in reasons:
                self._alarm(reason, metrics, clock, machine=machine, emit=emit)
        elif brier_breach or ece_breach:
            self._healthy_streak = 0
        else:
            self._healthy_streak += 1
            if self.degraded and self._healthy_streak >= cfg.min_samples:
                self.degraded = False
                if emit:
                    get_event_log().emit(
                        "model_recovered", node=self.node,
                        brier=brier, ece=ece, n=n,
                    )
        if emit:
            instrument("audit_model_degraded").set(1.0 if self.degraded else 0.0)
        return reasons

    def _update_machine(
        self, machine: str, error: float, clock: Mapping[str, Any], *, emit: bool
    ) -> None:
        """Run one machine's own Page–Hinkley test on the error."""
        cfg = self.config
        state = self._machine_state(machine)
        state.errors += 1
        crossed = state.ph.update(error)
        if crossed and state.ph.n >= cfg.min_samples:
            state.ph.reset()
            state.alarms += 1
            state.degraded = True
            state.healthy_streak = 0
            state.last_alarm = {
                "reason": "page_hinkley",
                "machine": machine,
                **clock,
            }
            if emit:
                instrument("audit_drift_alarms_total").labels(
                    reason="machine_page_hinkley"
                ).inc()
                get_event_log().emit(
                    "model_degraded",
                    severity="warning",
                    node=self.node,
                    reason="page_hinkley",
                    machine=machine,
                    **clock,
                )
        elif state.degraded:
            state.healthy_streak += 1
            if state.healthy_streak >= cfg.min_samples:
                state.degraded = False
                if emit:
                    get_event_log().emit(
                        "model_recovered", node=self.node, machine=machine, **clock
                    )

    def reset_machine(self, machine: str) -> None:
        """Forget one machine's drift state (called after a promotion).

        The promoted model answers from different statistics; keeping the
        pre-promotion Page–Hinkley mean would judge the new model against
        the old regime and re-alarm (or mask a real regression).
        """
        self._machines.pop(machine, None)

    def machine_degraded(self, machine: str) -> bool:
        """Whether one machine's own error stream is currently degraded."""
        state = self._machines.get(machine)
        return bool(state is not None and state.degraded)

    def _alarm(
        self,
        reason: str,
        metrics: Mapping[str, Any],
        clock: Mapping[str, Any],
        *,
        machine: str | None,
        emit: bool,
    ) -> None:
        self.alarms += 1
        self.last_alarm = {
            "reason": reason,
            "brier": metrics.get("brier"),
            "ece": metrics.get("ece"),
            "n": int(metrics.get("n") or 0),
            "machine": machine,
            **clock,
        }
        if not emit:
            return
        instrument("audit_drift_alarms_total").labels(reason=reason).inc()
        get_event_log().emit(
            "model_degraded",
            severity="warning",
            node=self.node,
            reason=reason,
            brier=metrics.get("brier"),
            ece=metrics.get("ece"),
            n=int(metrics.get("n") or 0),
            machine=machine,
            **clock,
        )

    def status(self) -> dict[str, Any]:
        return {
            "degraded": self.degraded,
            "alarms": self.alarms,
            "last_alarm": self.last_alarm,
            "machines": {
                mid: {
                    "degraded": state.degraded,
                    "alarms": state.alarms,
                    "last_alarm": state.last_alarm,
                    "errors": state.errors,
                }
                for mid, state in self._machines.items()
                if state.alarms or state.degraded
            },
        }
