"""Durable journal of served predictions and their resolutions.

Every ``predict`` / ``horizon`` response the dispatcher serves becomes a
:class:`PredictionRecord`; once its target window has fully elapsed in
the ingested samples, the resolver appends a matching
:class:`ResolutionRecord`.  Both are JSON payloads framed by the store's
:class:`~repro.store.wal.SegmentWriter`, so the audit trail gets the
exact durability contract of the trace store for free: CRC-framed
records, ``FsyncPolicy`` control over when appends hit stable storage,
and torn-tail truncation via :func:`~repro.store.wal.recover_segment`
when a crashed process restarts.

Without a directory the journal is memory-only — same API, no files —
which is what ``repro serve --audit`` (no ``--audit-dir``) uses.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator

from repro.store.wal import FsyncPolicy, SegmentWriter, recover_segment

__all__ = [
    "OUTCOME_AVAILABLE",
    "OUTCOME_FAILED",
    "OUTCOME_EXCLUDED",
    "OUTCOMES",
    "PredictionRecord",
    "ResolutionRecord",
    "PredictionJournal",
]

#: The window stayed failure-free: the machine delivered what was promised.
OUTCOME_AVAILABLE = "available"
#: The machine entered a failure state inside the window.
OUTCOME_FAILED = "failed"
#: Unscorable: the window started in a failure state (the prediction is
#: conditioned on an operational start, mirroring core/empirical.py) or
#: the history was replaced and no longer covers the window.
OUTCOME_EXCLUDED = "excluded"

OUTCOMES = (OUTCOME_AVAILABLE, OUTCOME_FAILED, OUTCOME_EXCLUDED)

_KIND_PREDICTION = "prediction"
_KIND_RESOLUTION = "resolution"

#: Roll to a fresh segment past this size so recovery replays bounded files.
_MAX_SEGMENT_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class PredictionRecord:
    """One served prediction, pinned to the concrete window it promised."""

    seq: int
    op: str  # "predict" | "horizon"
    machine: str
    #: The served probability: TR for ``predict``, the TR threshold the
    #: horizon was solved for (the server's survival claim) for ``horizon``.
    probability: float
    #: Absolute target window (the first future occurrence of the
    #: requested clock window after the machine's history end).
    window_start: float
    window_duration: float
    day_type: str
    issued_at: float
    node: str
    init_state: str | None = None

    @property
    def window_end(self) -> float:
        return self.window_start + self.window_duration

    def to_payload(self) -> bytes:
        obj = {"kind": _KIND_PREDICTION, **asdict(self)}
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class ResolutionRecord:
    """The realized outcome of one journaled prediction."""

    seq: int  # matches the prediction's seq
    machine: str
    outcome: str
    probability: float
    resolved_at: float

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; expected one of {OUTCOMES}"
            )

    def to_payload(self) -> bytes:
        obj = {"kind": _KIND_RESOLUTION, **asdict(self)}
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _decode(payload: bytes) -> PredictionRecord | ResolutionRecord | None:
    try:
        obj = json.loads(payload)
        kind = obj.pop("kind")
        if kind == _KIND_PREDICTION:
            return PredictionRecord(**obj)
        if kind == _KIND_RESOLUTION:
            return ResolutionRecord(**obj)
    except (ValueError, TypeError):
        pass
    return None  # unknown/garbled record: skip, don't poison recovery


class PredictionJournal:
    """Append-only prediction/resolution log with crash recovery.

    Opening a directory replays every segment (truncating torn tails)
    and rebuilds the in-memory state: all predictions by sequence
    number, all resolutions in append order, and the pending set
    (predictions without a resolution).  ``directory=None`` keeps the
    same state machine purely in memory.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        fsync: FsyncPolicy | str = "always",
        max_segment_bytes: int = _MAX_SEGMENT_BYTES,
    ) -> None:
        self.directory = None if directory is None else Path(directory)
        self._fsync = FsyncPolicy.parse(fsync)
        self._max_segment_bytes = max_segment_bytes
        self._writer: SegmentWriter | None = None
        self._segment_index = 0
        self.predictions: dict[int, PredictionRecord] = {}
        self.resolutions: list[ResolutionRecord] = []
        self.pending: dict[int, PredictionRecord] = {}
        self.recovered_records = 0
        self.recovered_truncated_bytes = 0
        self._next_seq = 1
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._recover()
            self._open_writer()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    def _segments(self) -> list[Path]:
        assert self.directory is not None
        return sorted(self.directory.glob("audit-*.wal"))

    def _recover(self) -> None:
        for path in self._segments():
            recovered = recover_segment(path)
            self.recovered_truncated_bytes += recovered.truncated_bytes
            for payload in recovered.payloads:
                record = _decode(payload)
                if record is None:
                    continue
                self._apply(record)
                self.recovered_records += 1

    def _apply(self, record: PredictionRecord | ResolutionRecord) -> None:
        if isinstance(record, PredictionRecord):
            self.predictions[record.seq] = record
            self.pending[record.seq] = record
        else:
            self.resolutions.append(record)
            self.pending.pop(record.seq, None)
        self._next_seq = max(self._next_seq, record.seq + 1)

    def _open_writer(self) -> None:
        assert self.directory is not None
        segments = self._segments()
        if segments:
            last = segments[-1]
            self._segment_index = int(last.stem.split("-")[1])
            if last.stat().st_size < self._max_segment_bytes:
                self._writer = SegmentWriter(last, self._fsync)
                return
            self._segment_index += 1
        self._writer = SegmentWriter(
            self.directory / f"audit-{self._segment_index:08d}.wal", self._fsync
        )

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #

    def next_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def append_prediction(self, record: PredictionRecord) -> None:
        self._apply(record)
        self._write(record.to_payload())

    def append_resolution(self, record: ResolutionRecord) -> None:
        self._apply(record)
        self._write(record.to_payload())

    def _write(self, payload: bytes) -> None:
        if self._writer is None:
            return
        if self._writer.size >= self._max_segment_bytes:
            self._writer.close()
            self._segment_index += 1
            assert self.directory is not None
            self._writer = SegmentWriter(
                self.directory / f"audit-{self._segment_index:08d}.wal", self._fsync
            )
        self._writer.append(payload)

    # ------------------------------------------------------------------ #

    @property
    def durable(self) -> bool:
        return self.directory is not None

    @property
    def n_predictions(self) -> int:
        return len(self.predictions)

    @property
    def n_resolutions(self) -> int:
        return len(self.resolutions)

    def records(self) -> Iterator[PredictionRecord | ResolutionRecord]:
        """Predictions (by seq) then resolutions (in append order)."""
        yield from (self.predictions[s] for s in sorted(self.predictions))
        yield from self.resolutions

    def sync(self) -> None:
        """Force appended records to stable storage."""
        if self._writer is not None:
            self._writer.sync()

    def close(self) -> None:
        """Sync and close the active segment (no torn tail afterwards)."""
        if self._writer is not None:
            self._writer.close(sync=True)
            self._writer = None

    def __enter__(self) -> "PredictionJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
