"""Sliding-window prediction scoring with cluster-mergeable bins.

The scoreboard turns the resolver's stream of ``(predicted TR, realized
outcome)`` pairs into the calibration metrics of
:mod:`repro.core.calibration` — Brier score (raw and Murphy-binned),
reliability / resolution / uncertainty, and ECE — over a bounded sliding
window, per machine and in aggregate.

The representation is chosen for the cluster: every metric is derived
from *per-bin sufficient statistics* ``(count, sum_pred, sum_out,
sum_sq_err)``.  Because outcomes are binary (``y² = y``), these four
sums determine the binned Brier score, its Murphy decomposition and the
ECE exactly — so the router can merge the bins of N nodes element-wise
and recompute the pooled metrics without ever shipping raw pairs.  The
property test in ``tests/audit`` asserts the invariant this file is
built on: merged bins equal bins computed from the pooled raw pairs.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "empty_bins",
    "bin_index",
    "bins_from_pairs",
    "merge_bins",
    "derive_metrics",
    "merge_machine_snapshots",
    "merge_quality",
    "Scoreboard",
]

#: Per-bin sufficient statistics, JSON-shaped:
#: ``[count, sum_pred, sum_out, sum_sq_err]``.
Bins = list[list[float]]


def empty_bins(n_bins: int) -> Bins:
    """``n_bins`` zeroed stat rows."""
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    return [[0.0, 0.0, 0.0, 0.0] for _ in range(n_bins)]


def bin_index(prediction: float, n_bins: int) -> int:
    """Equal-width bin of one prediction (same rule as core/calibration)."""
    return min(n_bins - 1, max(0, int(prediction * n_bins)))


def bins_from_pairs(
    predictions: Sequence[float], outcomes: Sequence[bool], n_bins: int
) -> Bins:
    """Accumulate raw pairs into per-bin sufficient statistics."""
    if len(predictions) != len(outcomes):
        raise ValueError(
            f"predictions and outcomes must be equal-length, got "
            f"{len(predictions)} and {len(outcomes)}"
        )
    bins = empty_bins(n_bins)
    for p, y_raw in zip(predictions, outcomes):
        p = float(p)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"predictions must be probabilities in [0, 1], got {p}")
        y = 1.0 if y_raw else 0.0
        row = bins[bin_index(p, n_bins)]
        row[0] += 1.0
        row[1] += p
        row[2] += y
        row[3] += (p - y) ** 2
    return bins


def merge_bins(many: Iterable[Bins]) -> Bins:
    """Element-wise sum of several bin tables (all of equal width)."""
    merged: Bins | None = None
    for bins in many:
        if merged is None:
            merged = [list(map(float, row)) for row in bins]
            continue
        if len(bins) != len(merged):
            raise ValueError(
                f"cannot merge bin tables of widths {len(merged)} and {len(bins)}"
            )
        for row, other in zip(merged, bins):
            for i in range(4):
                row[i] += float(other[i])
    if merged is None:
        raise ValueError("need at least one bin table to merge")
    return merged


def derive_metrics(bins: Bins) -> dict[str, Any]:
    """Calibration metrics from bin statistics alone.

    ``brier`` is the plain mean squared error (exact, unbinned);
    ``brier_binned`` / ``reliability`` / ``resolution`` / ``uncertainty``
    are the Murphy terms of :func:`repro.core.calibration.brier_score`;
    ``ece`` matches :func:`~repro.core.calibration.expected_calibration_error`.
    All metric fields are ``None`` when the window holds no pairs yet
    (``NaN`` does not survive strict JSON, and "no data" is not a score).
    """
    n = sum(row[0] for row in bins)
    out: dict[str, Any] = {"n": int(n), "bins": [list(row) for row in bins]}
    if n == 0:
        for key in (
            "brier", "brier_binned", "reliability", "resolution",
            "uncertainty", "ece", "base_rate", "mean_prediction",
        ):
            out[key] = None
        return out
    base = sum(row[2] for row in bins) / n
    reliability = 0.0
    resolution = 0.0
    brier_binned = 0.0
    ece = 0.0
    for count, sum_pred, sum_out, _sq in bins:
        if count == 0:
            continue
        p_bar = sum_pred / count
        y_bar = sum_out / count
        w = count / n
        reliability += w * (p_bar - y_bar) ** 2
        resolution += w * (y_bar - base) ** 2
        # sum over the bin of (p_bar - y)^2, using y^2 = y for binary y.
        brier_binned += count * p_bar * p_bar - 2.0 * p_bar * sum_out + sum_out
        ece += count * abs(p_bar - y_bar)
    out.update(
        brier=sum(row[3] for row in bins) / n,
        brier_binned=brier_binned / n,
        reliability=reliability,
        resolution=resolution,
        uncertainty=base * (1.0 - base),
        ece=ece / n,
        base_rate=base,
        mean_prediction=sum(row[1] for row in bins) / n,
    )
    return out


# ---------------------------------------------------------------------- #
# cluster-side merging of quality results
# ---------------------------------------------------------------------- #


def _merge_snapshot_list(snaps: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    merged = derive_metrics(merge_bins([s["bins"] for s in snaps]))
    pending = sum(int(s.get("pending", 0)) for s in snaps)
    merged["pending"] = pending
    return merged


def merge_machine_snapshots(
    per_node: Sequence[Mapping[str, Mapping[str, Any]]]
) -> dict[str, dict[str, Any]]:
    """Merge ``machine -> snapshot`` maps from several nodes.

    Unlike histories, audit state is *not* replicated: each node
    journaled only the predictions it served, so two owners of the same
    machine hold disjoint pair sets and their bins must be summed, never
    deduplicated.
    """
    by_machine: dict[str, list[Mapping[str, Any]]] = {}
    for machines in per_node:
        for machine, snap in machines.items():
            by_machine.setdefault(machine, []).append(snap)
    return {m: _merge_snapshot_list(snaps) for m, snaps in by_machine.items()}


def merge_quality(results: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge per-node ``quality`` results into one cluster-wide view."""
    enabled = [r for r in results if r.get("enabled")]
    if not enabled:
        return {"enabled": False, "nodes": []}
    widths = {len(r["aggregate"]["bins"]) for r in enabled}
    if len(widths) > 1:
        raise ValueError(f"nodes disagree on bin width: {sorted(widths)}")
    journaled: dict[str, int] = {}
    resolved: dict[str, int] = {}
    for r in enabled:
        for op, count in r.get("journaled", {}).items():
            journaled[op] = journaled.get(op, 0) + int(count)
        for outcome, count in r.get("resolved", {}).items():
            resolved[outcome] = resolved.get(outcome, 0) + int(count)
    aggregate = derive_metrics(merge_bins([r["aggregate"]["bins"] for r in enabled]))
    drift = {
        "degraded": any(r["drift"]["degraded"] for r in enabled),
        "alarms": sum(int(r["drift"]["alarms"]) for r in enabled),
        "nodes_degraded": sorted(
            r["node"] for r in enabled if r["drift"]["degraded"]
        ),
    }
    return {
        "enabled": True,
        "nodes": sorted(r["node"] for r in enabled),
        "journaled": journaled,
        "pending": sum(int(r.get("pending", 0)) for r in enabled),
        "resolved": resolved,
        "n_bins": next(iter(widths)),
        "aggregate": aggregate,
        "machines": merge_machine_snapshots([r.get("machines", {}) for r in enabled]),
        "drift": drift,
    }


# ---------------------------------------------------------------------- #


class Scoreboard:
    """Sliding windows of resolved pairs, per machine and in aggregate.

    ``window`` bounds how many resolved pairs each scope retains; the
    metrics are always computed over the retained pairs, so the score
    tracks *recent* model quality rather than averaging a regression
    away against months of history.
    """

    def __init__(self, *, window: int = 2048, n_bins: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.window = window
        self.n_bins = n_bins
        self._lock = threading.Lock()
        self._aggregate: deque[tuple[float, bool]] = deque(maxlen=window)
        self._per_machine: dict[str, deque[tuple[float, bool]]] = {}
        self.n_recorded = 0

    def record(self, machine: str, prediction: float, outcome: bool) -> None:
        """Add one resolved pair to the machine's and the global window."""
        p = float(prediction)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"prediction must be a probability in [0, 1], got {p}")
        pair = (p, bool(outcome))
        with self._lock:
            self._aggregate.append(pair)
            self._per_machine.setdefault(
                machine, deque(maxlen=self.window)
            ).append(pair)
            self.n_recorded += 1

    def machine_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._per_machine)

    def pairs(self, machine: str | None = None) -> tuple[list[float], list[bool]]:
        """The retained (predictions, outcomes) of one scope."""
        with self._lock:
            source = (
                self._aggregate
                if machine is None
                else self._per_machine.get(machine, ())
            )
            items = list(source)
        return [p for p, _y in items], [y for _p, y in items]

    def snapshot(self, machine: str | None = None) -> dict[str, Any]:
        """Metrics + bins of one scope (aggregate when ``machine`` is None)."""
        predictions, outcomes = self.pairs(machine)
        return derive_metrics(bins_from_pairs(predictions, outcomes, self.n_bins))
