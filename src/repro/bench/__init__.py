"""Benchmark/experiment harness regenerating every paper table and figure."""

from repro.bench.data import EvaluationData, evaluation_data
from repro.bench.experiments import REGISTRY
from repro.bench.harness import ExperimentResult, ResultTable

__all__ = ["REGISTRY", "EvaluationData", "ExperimentResult", "ResultTable", "evaluation_data"]
