"""Terminal rendering of the paper's figures (no plotting dependency).

The benchmark harness regenerates the *data* of each figure; this module
renders it as monospace line/bar charts so a terminal run of
``repro-fgcs run fig5`` shows the figure's shape, not just its table.

Only the features the figures need are implemented: multi-series line
charts with per-series markers, optional log-y, and horizontal bar
charts.  Axes are labelled with min/max ticks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) points."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")
        if not self.x:
            raise ValueError(f"series {self.name!r} is empty")


def _finite_pairs(series: Series) -> list[tuple[float, float]]:
    return [
        (float(a), float(b))
        for a, b in zip(series.x, series.y)
        if math.isfinite(a) and math.isfinite(b)
    ]


def line_chart(
    series: list[Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    log_y: bool = False,
) -> str:
    """Render one or more series as a monospace scatter/line chart."""
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    pts = {s.name: _finite_pairs(s) for s in series}
    all_pts = [p for ps in pts.values() for p in ps]
    if not all_pts:
        return f"{title}\n(no finite data)"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    if log_y:
        ys = [y for y in ys if y > 0]
        if not ys:
            return f"{title}\n(no positive data for log axis)"

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def ty(y: float) -> float:
        if log_y:
            return math.log10(max(y, 1e-12))
        return y

    ylo_t, yhi_t = ty(y_lo), ty(y_hi)
    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts[s.name]:
            if log_y and y <= 0:
                continue
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((ty(y) - ylo_t) / (yhi_t - ylo_t) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    pad = max(len(y_hi_label), len(y_lo_label), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_label
        elif i == height - 1:
            label = y_lo_label
        elif i == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    axis = f"{'':>{pad}} +" + "-" * width
    lines.append(axis)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}"
    lines.append(f"{'':>{pad}}  " + x_axis + (f"  {xlabel}" if xlabel else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(f"{'':>{pad}}  {legend}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("need at least one bar")
    finite = [v for v in values if math.isfinite(v)]
    vmax = max(finite) if finite else 1.0
    if vmax <= 0:
        vmax = 1.0
    pad = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if not math.isfinite(value):
            bar, text = "", "nan"
        else:
            n = int(round(max(value, 0.0) / vmax * width))
            bar = "#" * n
            text = f"{value:.4g}{unit}"
        lines.append(f"{str(label):>{pad}} |{bar} {text}")
    return "\n".join(lines)
