"""Shared evaluation data for the experiment suite.

The accuracy experiments (FIG5-FIG8) all evaluate the same kind of
testbed: a collection of student-lab machines with a train/test split.
This module synthesizes and caches it so the experiments stay mutually
consistent and the suite doesn't pay the synthesis cost repeatedly.

Two scales are provided:

* ``quick`` — 3 machines, 56 days at 30 s sampling, coarsened to a 60 s
  SMP step; minutes of total suite runtime.  Used by the benchmarks.
* ``full``  — 8 machines, 90 days at 6 s sampling (the paper's trace
  geometry), 60 s SMP step.  Used by the CLI's ``--full`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig
from repro.traces.trace import TraceSet
from repro.traces.synthesis import synthesize_testbed

__all__ = ["EvaluationData", "evaluation_data"]


@dataclass(frozen=True)
class Scale:
    n_machines: int
    n_days: int
    sample_period: float
    step_multiple: int


_SCALES = {
    "quick": Scale(n_machines=3, n_days=56, sample_period=30.0, step_multiple=2),
    "full": Scale(n_machines=8, n_days=90, sample_period=6.0, step_multiple=10),
}


@dataclass(frozen=True)
class EvaluationData:
    """A synthesized testbed with its train/test split and configs."""

    traces: TraceSet
    train: TraceSet
    test: TraceSet
    classifier: StateClassifier
    estimator_config: EstimatorConfig
    sample_period: float
    step_multiple: int

    @property
    def machine_ids(self) -> list[str]:
        return self.traces.machine_ids


@lru_cache(maxsize=4)
def evaluation_data(
    scale: str = "quick",
    *,
    seed: int = 0,
    train_fraction: float = 0.5,
) -> EvaluationData:
    """Build (and cache) the shared evaluation testbed at a given scale."""
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    s = _SCALES[scale]
    traces = synthesize_testbed(
        s.n_machines,
        n_days=s.n_days,
        sample_period=s.sample_period,
        seed=seed,
        machine_jitter=0.10,
    )
    train, test = traces.split_by_ratio(train_fraction)
    return EvaluationData(
        traces=traces,
        train=train,
        test=test,
        classifier=StateClassifier(),
        estimator_config=EstimatorConfig(step_multiple=s.step_multiple),
        sample_period=s.sample_period,
        step_multiple=s.step_multiple,
    )
