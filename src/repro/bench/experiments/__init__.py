"""One module per experiment of the per-experiment index in DESIGN.md."""

from repro.bench.experiments import (
    ablations,
    audit_exp,
    calibration_exp,
    characterization,
    cluster_exp,
    e2e,
    empirical_cpu,
    empirical_mem,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    ingest_exp,
    load_forecast,
    overhead,
    profiles_exp,
    sched_exp,
    serving,
    sizing,
    store_exp,
    trace_stats,
)

#: Registry used by the CLI: experiment id -> module with a run() function.
REGISTRY = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "emp-cpu": empirical_cpu,
    "emp-mem": empirical_mem,
    "ovh": overhead,
    "trace": trace_stats,
    "e2e": e2e,
    "ablations": ablations,
    "profiles": profiles_exp,
    "char": characterization,
    "cal": calibration_exp,
    "size": sizing,
    "load": load_forecast,
    "serving": serving,
    "store": store_exp,
    "ingest": ingest_exp,
    "cluster": cluster_exp,
    "audit": audit_exp,
    "sched": sched_exp,
}

__all__ = ["REGISTRY"] + sorted(REGISTRY)
