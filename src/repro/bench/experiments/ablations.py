"""ABL — ablations of the reproduction's own design choices (DESIGN.md).

Not a paper figure: these sweeps quantify the knobs our implementation
adds or had to choose, on the FIG5 weekday accuracy metric:

* **censoring** — how right-censored sojourns enter the kernel
  (Kaplan-Meier vs beyond-horizon counting vs dropping);
* **discretization** — the SMP step ``d`` as a multiple of the
  monitoring period (the paper's accuracy/efficiency trade-off,
  Section 4.1);
* **history depth** — the number N of recent same-type days pooled;
* **lookback** — measuring the first sojourn from the window start
  (renewal semantics, our default) vs from its true entry;
* **solver** — the paper's discrete-time recursion vs the
  phase-approximation continuous-time SMP it rejected (Section 4.1),
  measured on both accuracy and per-prediction cost.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.bench.data import evaluation_data
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.ctsmp import ContinuousSmp
from repro.core.empirical import empirical_tr
from repro.core.estimator import EstimatorConfig
from repro.core.metrics import relative_error, summarize_errors
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.smp import temporal_reliability
from repro.core.windows import ClockWindow, DayType

__all__ = ["run"]

EVAL_WINDOWS = tuple(
    (h, T) for h in (2, 8, 11, 14, 20) for T in (1.0, 3.0, 10.0)
)


def _mean_error(data, estimator_config: EstimatorConfig) -> float:
    errors = []
    for mid in data.machine_ids:
        predictor = TemporalReliabilityPredictor(
            data.train[mid], estimator_config=estimator_config
        )
        for h, T in EVAL_WINDOWS:
            cw = ClockWindow.from_hours(h, T)
            predicted = predictor.predict(cw, DayType.WEEKDAY)
            emp = empirical_tr(
                data.test[mid], data.classifier, cw, DayType.WEEKDAY,
                step_multiple=data.step_multiple,
            )
            errors.append(relative_error(predicted, emp.value))
    return summarize_errors(errors).mean


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the ablation sweeps."""
    data = evaluation_data(scale, seed=seed)
    base = data.estimator_config

    censoring = ResultTable(
        title="ABL censoring treatment", columns=["censoring", "mean_error_pct"]
    )
    for mode in ("km", "beyond", "drop"):
        censoring.add(mode, _mean_error(data, replace(base, censoring=mode)) * 100)

    steps = ResultTable(
        title="ABL discretization step d", columns=["step_seconds", "mean_error_pct"]
    )
    for mult in (1, 2, 5, 10):
        cfg = replace(base, step_multiple=mult * data.step_multiple)
        steps.add(data.sample_period * mult * data.step_multiple,
                  _mean_error(data, cfg) * 100)

    history = ResultTable(
        title="ABL history depth N (same-type days)", columns=["n_days", "mean_error_pct"]
    )
    for n in (3, 7, 14, None):
        cfg = replace(base, history_days=n)
        history.add("all" if n is None else n, _mean_error(data, cfg) * 100)

    lookback = ResultTable(
        title="ABL first-sojourn lookback", columns=["lookback", "mean_error_pct"]
    )
    for lb, label in ((0.0, "window start (renewal)"), (None, "true entry (1 window)")):
        cfg = replace(base, lookback=lb)
        lookback.add(label, _mean_error(data, cfg) * 100)

    solver = ResultTable(
        title="ABL discrete vs continuous-time (phase-type) solver",
        columns=["solver", "mean_error_pct", "mean_solve_ms"],
    )
    disc_errs, cont_errs = [], []
    disc_ms, cont_ms = [], []
    for mid in data.machine_ids:
        predictor = TemporalReliabilityPredictor(
            data.train[mid], estimator_config=base
        )
        for h, T in EVAL_WINDOWS:
            cw = ClockWindow.from_hours(h, T)
            emp = empirical_tr(
                data.test[mid], data.classifier, cw, DayType.WEEKDAY,
                step_multiple=data.step_multiple,
            )
            kern = predictor.kernel(cw, DayType.WEEKDAY)
            init = predictor.estimator.typical_initial_state(
                data.train[mid], cw, DayType.WEEKDAY
            )
            t0 = time.perf_counter()
            tr_d = temporal_reliability(kern, init)
            disc_ms.append((time.perf_counter() - t0) * 1000)
            t0 = time.perf_counter()
            tr_c = ContinuousSmp(kern).temporal_reliability(init_state=init)
            cont_ms.append((time.perf_counter() - t0) * 1000)
            disc_errs.append(relative_error(tr_d, emp.value))
            cont_errs.append(relative_error(tr_c, emp.value))
    solver.add("discrete (paper Eq. 3)", summarize_errors(disc_errs).mean * 100,
               sum(disc_ms) / len(disc_ms))
    solver.add("continuous (phase-type)", summarize_errors(cont_errs).mean * 100,
               sum(cont_ms) / len(cont_ms))

    result = ExperimentResult(
        experiment_id="ABL",
        description="ablations of the reproduction's design choices",
        tables=[censoring, steps, history, lookback, solver],
    )
    result.notes["discrete_error_pct"] = solver.rows[0][1]
    result.notes["continuous_error_pct"] = solver.rows[1][1]
    km, beyond, _drop = (censoring.rows[i][1] for i in range(3))
    result.notes["km_beats_beyond"] = bool(km <= beyond)
    lb0, lb1 = (lookback.rows[i][1] for i in range(2))
    result.notes["renewal_lookback_beats_true_entry"] = bool(lb0 <= lb1)
    return result
