"""ADAPT — self-healing under an injected regime shift, on vs off.

Replays the AUDIT experiment's regime shift (server-room behaviour
spliced into a student-lab history mid-run) through two identical
day-by-day serving loops that differ in exactly one thing: one runs the
:mod:`repro.adapt` controller, the other does not.  Both journal every
served prediction through the audit and resolve it against realized
samples, so both arms see the same alarms — only the adapt arm acts on
them: the per-machine Page-Hinkley alarm triggers a retune backtest,
the winning challenger shadows the champion through the same journal,
and the scoreboard margin promotes it.

The headline numbers close the loop the paper's Section 5 leaves open:

* **alarm -> recovery lead time** — days from the first per-machine
  drift alarm to the first promotion (finite only with adapt on);
* **post-recovery Brier/ECE** — both arms scored over the same final
  days, so the adapt arm's promoted models are compared against the
  stale champions they replaced;
* **adapt_recovery_speedup** — the off arm's post-recovery Brier over
  the on arm's (>1: self-healing helped), the perf-gate key.
"""

from __future__ import annotations

import time

from repro.adapt import AdaptConfig, AdaptController
from repro.audit import AuditConfig, DriftConfig, PredictionAudit
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.windows import ClockWindow, day_type
from repro.service import AvailabilityService
from repro.traces.profiles import server_room, student_lab
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def _replay(
    spliced: dict,
    *,
    warm_days: int,
    total_days: int,
    start_hours: tuple[float, ...],
    window_hours: float,
    with_adapt: bool,
) -> dict:
    """One arm: day-by-day predict/journal/ingest across the shift."""
    service = AvailabilityService()
    audit = PredictionAudit(
        AuditConfig(
            node_id="bench",
            window=128,
            drift=DriftConfig(
                min_samples=12,
                brier_threshold=0.25,
                ece_threshold=0.35,
                ph_delta=0.05,
                ph_lambda=1.5,
            ),
        ),
        classifier=service.classifier,
        step_multiple=service.config.step_multiple,
    )
    adapt = None
    if with_adapt:
        adapt = AdaptController(
            service,
            audit,
            AdaptConfig(
                holdout_days=5,
                eval_start_hours=start_hours,
                eval_window_hours=window_hours,
                # Search the training-window knobs only: the injected
                # shift changes the workload regime, not the thresholds,
                # and a wider grid overfits a 5-day holdout.
                candidate_history_days=(None, 5, 8),
                candidate_thresholds=((0.20, 0.60),),
                retune_min_gain=0.02,
                min_eval=12,
                promote_margin=0.01,
                hysteresis=2,
                cooldown_resolutions=36,
            ),
        )
    for machine, trace in spliced.items():
        service.register(trace.slice_days(0, warm_days))

    arm = {
        "alarm_day": None,
        "recovery_day": None,
        "retune_wall_ms": 0.0,
        "day_briers": {},      # day -> mean squared error of served preds
        "fallback_served": 0,
        "promotions": 0,
        "retunes": 0,
        "rows": [],
    }
    for day in range(warm_days, total_days):
        dtype = day_type(day)
        for machine in spliced:
            history = service._history(machine)
            for start in start_hours:
                clock = ClockWindow.from_hours(start, window_hours)
                tr = service.predict(machine, clock, dtype)
                if adapt is not None:
                    tr, _source = adapt.serve_value(machine, clock, dtype, tr)
                audit.record_prediction(
                    "predict", machine, clock, dtype, tr,
                    history_end=history.end_time,
                )
                if adapt is not None:
                    adapt.observe_served("predict", machine, clock, dtype)
        t0 = time.perf_counter()
        errors = []
        for machine, trace in spliced.items():
            grown = service.append_samples(trace.slice_days(day, day + 1))
            resolutions = audit.observe_ingest(machine, grown)
            if adapt is not None:
                adapt.on_ingest(machine, grown, resolutions)
            for res in resolutions:
                record = audit.journal.predictions.get(res.seq)
                if record is None or record.op != "predict":
                    continue
                if res.outcome == "excluded":
                    continue
                outcome = 1.0 if res.outcome == "available" else 0.0
                errors.append((res.probability - outcome) ** 2)
        if adapt is not None:
            # on_ingest may have run retunes; attribute their wall time.
            arm["retune_wall_ms"] += (time.perf_counter() - t0) * 1e3
        if errors:
            arm["day_briers"][day] = sum(errors) / len(errors)
        machines_alarmed = audit.drift.status().get("machines", {})
        if arm["alarm_day"] is None and machines_alarmed:
            arm["alarm_day"] = day
        if adapt is not None:
            status = adapt.status()
            arm["retunes"] = status["retunes"]
            arm["promotions"] = status["promotions"]
            if arm["recovery_day"] is None and status["promotions"] > 0:
                arm["recovery_day"] = day
            arm["fallback_served"] = sum(
                e.get("fallback_served", 0)
                for e in status["machines"].values()
            )
        snap = audit.scoreboard.snapshot()
        arm["rows"].append(
            (
                day,
                round(arm["day_briers"].get(day, float("nan")), 4),
                None if snap["brier"] is None else round(snap["brier"], 4),
                None if snap["ece"] is None else round(snap["ece"], 4),
                len(machines_alarmed),
                arm["promotions"],
            )
        )
        arm["final_brier"] = snap["brier"]
        arm["final_ece"] = snap["ece"]
    audit.close()
    return arm


def _tail_mean(day_briers: dict, first_day: int) -> float:
    values = [b for d, b in day_briers.items() if d >= first_day]
    return sum(values) / len(values) if values else float("nan")


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the ADAPT self-healing experiment (adapt-on vs adapt-off)."""
    if scale == "quick":
        n_machines, warm_days, shift_day, total_days = 3, 6, 10, 30
        period, start_hours = 300.0, (1.0, 4.0, 7.0, 10.0, 13.0, 16.0)
    else:
        n_machines, warm_days, shift_day, total_days = 6, 10, 18, 48
        period, start_hours = 120.0, tuple(float(h) for h in range(0, 22, 2))
    window_hours = 2.0

    pre = synthesize_testbed(
        n_machines, n_days=total_days, sample_period=period, seed=seed,
        profile=student_lab(),
    )
    post = synthesize_testbed(
        n_machines, n_days=total_days, sample_period=period, seed=seed + 1,
        profile=server_room(),
    )
    spliced = {
        a.machine_id: a.slice_days(0, shift_day).concat(
            b.slice_days(shift_day, total_days)
        )
        for a, b in zip(pre, post)
    }

    kwargs = dict(
        warm_days=warm_days,
        total_days=total_days,
        start_hours=start_hours,
        window_hours=window_hours,
    )
    off = _replay(spliced, with_adapt=False, **kwargs)
    on = _replay(spliced, with_adapt=True, **kwargs)

    result = ExperimentResult(
        experiment_id="ADAPT",
        description="drift-driven self-healing: retune + shadow promotion "
        "vs a frozen model across a regime shift",
    )
    table = ResultTable(
        title="ADAPT day-by-day, adapt-on arm vs adapt-off arm",
        columns=[
            "day", "phase", "on_day_brier", "off_day_brier",
            "on_win_brier", "off_win_brier", "alarmed", "promotions",
        ],
    )
    for (day, on_brier, on_win, _on_ece, alarmed, promos), off_row in zip(
        on["rows"], off["rows"]
    ):
        table.add(
            day,
            "pre" if day < shift_day else "post",
            on_brier,
            off_row[1],
            on_win,
            off_row[2],
            alarmed,
            promos,
        )
    result.tables.append(table)

    recovery_day = on["recovery_day"]
    # Score both arms over the same final stretch: from the adapt arm's
    # first promotion (or the last quarter of the run if none landed).
    tail_start = (
        recovery_day
        if recovery_day is not None
        else total_days - max(2, (total_days - shift_day) // 4)
    )
    on_tail = _tail_mean(on["day_briers"], tail_start)
    off_tail = _tail_mean(off["day_briers"], tail_start)

    result.notes["shift_day"] = shift_day
    result.notes["alarm_day"] = on["alarm_day"]
    result.notes["recovery_day"] = recovery_day
    if on["alarm_day"] is not None and recovery_day is not None:
        result.notes["alarm_to_recovery_days"] = recovery_day - on["alarm_day"]
    result.notes["retunes"] = on["retunes"]
    result.notes["promotions"] = on["promotions"]
    result.notes["fallback_served"] = on["fallback_served"]
    result.notes["post_recovery_brier_adapt_on"] = round(on_tail, 4)
    result.notes["post_recovery_brier_adapt_off"] = round(off_tail, 4)
    result.notes["final_ece_adapt_on"] = on["final_ece"]
    result.notes["final_ece_adapt_off"] = off["final_ece"]

    speedup = off_tail / on_tail if on_tail and on_tail == on_tail else float("nan")
    result.notes["adapt_recovery_speedup"] = (
        None if speedup != speedup else round(speedup, 3)
    )

    result.bench = {
        "alarm_day": on["alarm_day"],
        "recovery_day": recovery_day,
        "alarm_to_recovery_days": (
            None
            if on["alarm_day"] is None or recovery_day is None
            else recovery_day - on["alarm_day"]
        ),
        "post_recovery_brier_adapt_on": on_tail,
        "post_recovery_brier_adapt_off": off_tail,
        "final_ece_adapt_on": on["final_ece"],
        "final_ece_adapt_off": off["final_ece"],
        "adapt_recovery_speedup": speedup,
        "retune_wall_ms": on["retune_wall_ms"],
        "gate_keys": ["adapt_recovery_speedup:higher"],
    }
    return result
