"""AUDIT — online quality monitoring under an injected regime shift.

Replays a synthetic testbed day by day through the prediction-audit
subsystem: each morning the service predicts TR for a set of clock
windows on the day ahead, the audit journals those predictions, and
ingesting the day's samples resolves them against the five-state
classifier.  Mid-replay the *machine behaviour* is swapped to a
different profile (server-room -> student-lab) while the model keeps
predicting from the stale history — the regime shift of paper Section 5
that motivates online validation.

The table tracks, per replayed day, the day's Brier score, the sliding
windowed Brier/ECE the ``quality`` op reports, and the drift detector's
alarm count.  The headline notes measure detection latency: the
Page-Hinkley alarm should fire within a day or two of the shift,
*before* the windowed Brier crosses the degradation threshold — the
lead time during which a scheduler could already stop trusting the
model.
"""

from __future__ import annotations

from repro.audit import AuditConfig, DriftConfig, PredictionAudit
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.windows import ClockWindow, day_type
from repro.service import AvailabilityService
from repro.traces.profiles import server_room, student_lab
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the AUDIT drift-detection experiment."""
    if scale == "quick":
        n_machines, warm_days, shift_day, total_days = 3, 6, 13, 22
        period, start_hours = 300.0, (1.0, 4.0, 7.0, 10.0, 13.0, 16.0)
    else:
        n_machines, warm_days, shift_day, total_days = 6, 10, 24, 40
        period, start_hours = 120.0, tuple(float(h) for h in range(0, 22, 2))
    window_hours = 2.0

    pre = synthesize_testbed(
        n_machines, n_days=total_days, sample_period=period, seed=seed,
        profile=student_lab(),
    )
    post = synthesize_testbed(
        n_machines, n_days=total_days, sample_period=period, seed=seed + 1,
        profile=server_room(),
    )
    spliced = {
        a.machine_id: a.slice_days(0, shift_day).concat(
            b.slice_days(shift_day, total_days)
        )
        for a, b in zip(pre, post)
    }

    service = AvailabilityService()
    audit = PredictionAudit(
        AuditConfig(
            node_id="bench",
            window=128,
            drift=DriftConfig(
                min_samples=30,
                brier_threshold=0.25,
                ece_threshold=0.35,
                ph_delta=0.05,
                ph_lambda=2.0,
            ),
        ),
        classifier=service.classifier,
        step_multiple=service.config.step_multiple,
    )
    for machine, trace in spliced.items():
        service.register(trace.slice_days(0, warm_days))

    result = ExperimentResult(
        experiment_id="AUDIT",
        description="online prediction-quality audit under a regime shift",
    )
    table = ResultTable(
        title="AUDIT day-by-day scoreboard across the regime shift",
        columns=[
            "day", "phase", "resolved", "day_brier", "win_brier", "ece",
            "alarms", "degraded",
        ],
    )

    alarm_day = collapse_day = None
    alarms_before_shift = 0
    day_briers: dict[str, list[float]] = {"pre": [], "post": []}
    for day in range(warm_days, total_days):
        dtype = day_type(day)
        for machine in spliced:
            history = service._history(machine)
            for start in start_hours:
                clock = ClockWindow.from_hours(start, window_hours)
                tr = service.predict(machine, clock, dtype)
                audit.record_prediction(
                    "predict", machine, clock, dtype, tr,
                    history_end=history.end_time,
                )
        resolutions = []
        for machine, trace in spliced.items():
            grown = service.append_samples(trace.slice_days(day, day + 1))
            resolutions.extend(audit.observe_ingest(machine, grown))
        scored = [
            (r.probability - (1.0 if r.outcome == "available" else 0.0)) ** 2
            for r in resolutions
            if r.outcome != "excluded"
        ]
        day_brier = sum(scored) / len(scored) if scored else float("nan")
        phase = "pre" if day < shift_day else "post"
        if scored:
            day_briers[phase].append(day_brier)
        snap = audit.scoreboard.snapshot()
        status = audit.drift.status()
        if day < shift_day:
            alarms_before_shift = status["alarms"]
        elif alarm_day is None and status["alarms"] > alarms_before_shift:
            alarm_day = day
        win_brier = snap["brier"]
        if (collapse_day is None and day >= shift_day
                and win_brier is not None
                and win_brier > audit.config.drift.brier_threshold):
            collapse_day = day
        table.add(
            day, phase, len(scored),
            round(day_brier, 4) if scored else None,
            None if win_brier is None else round(win_brier, 4),
            None if snap["ece"] is None else round(snap["ece"], 4),
            status["alarms"],
            int(status["degraded"]),
        )
    result.tables.append(table)

    result.notes["shift_day"] = shift_day
    result.notes["alarm_day"] = alarm_day
    result.notes["collapse_day"] = collapse_day
    if alarm_day is not None and collapse_day is not None:
        result.notes["alarm_lead_days"] = collapse_day - alarm_day
    result.notes["alarms_before_shift"] = alarms_before_shift
    for phase, values in day_briers.items():
        if values:
            result.notes[f"{phase}_shift_day_brier"] = round(
                sum(values) / len(values), 4
            )
    result.notes["final_degraded"] = audit.drift.degraded
    audit.close()
    return result
