"""CAL — probabilistic calibration of the TR predictions (extension).

The paper evaluates relative error of the predicted TR.  A scheduler
that *acts* on the probability (choosing replication factors, setting
checkpoint intervals) additionally needs the prediction to be
*calibrated*: among windows predicted to survive with probability p,
a fraction ~p must actually survive.  This experiment measures the
Brier score (with Murphy decomposition), expected calibration error
and the reliability diagram of the SMP predictor over a grid of
windows, against the LAST baseline adapted the same way.
"""

from __future__ import annotations

from repro.bench.ascii_plot import Series, line_chart
from repro.bench.data import evaluation_data
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.calibration import (
    brier_score,
    collect_outcomes,
    expected_calibration_error,
    reliability_diagram,
)
from repro.core.empirical import observed_window_outcomes
from repro.core.windows import ClockWindow, DayType
from repro.timeseries.models import Last
from repro.timeseries.tr_adapter import TimeSeriesTRPredictor

__all__ = ["run"]


def _baseline_outcomes(data, lengths, start_hours):
    """(prediction, outcome) pairs for the LAST time-series baseline."""
    predictions, outcomes = [], []
    for mid in data.machine_ids:
        pred = TimeSeriesTRPredictor(
            lambda: Last(), data.classifier, step_multiple=data.step_multiple
        )
        for T in lengths:
            for h in start_hours:
                cw = ClockWindow.from_hours(h, T)
                # LAST "predicts" on the test trace itself (its protocol
                # uses the immediately preceding window, Section 6.2).
                ts = pred.predicted_tr(data.test[mid], cw, DayType.WEEKDAY)
                if ts.n_days == 0:
                    continue
                rows = observed_window_outcomes(
                    data.test[mid], data.classifier, cw, DayType.WEEKDAY,
                    step_multiple=data.step_multiple,
                )
                for _d, _i, ok in rows:
                    predictions.append(ts.value)
                    outcomes.append(ok)
    return predictions, outcomes


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the calibration experiment."""
    data = evaluation_data(scale, seed=seed)
    lengths = (1.0, 3.0, 5.0, 10.0)
    start_hours = (0, 4, 8, 11, 14, 17, 20) if scale == "quick" else tuple(range(0, 24, 2))

    smp_p, smp_y = collect_outcomes(data, lengths=lengths, start_hours=start_hours)
    last_p, last_y = _baseline_outcomes(data, lengths, start_hours)

    score_table = ResultTable(
        title="CAL calibration scores",
        columns=["predictor", "brier", "reliability", "resolution", "ece", "n"],
    )
    curves = []
    for name, (p, y) in (("SMP", (smp_p, smp_y)), ("LAST", (last_p, last_y))):
        dec = brier_score(p, y)
        ece = expected_calibration_error(p, y)
        score_table.add(name, dec.brier, dec.reliability, dec.resolution, ece, len(p))
        diagram = reliability_diagram(p, y)
        curves.append(Series(name, [d[0] for d in diagram], [d[1] for d in diagram]))

    diagram_table = ResultTable(
        title="CAL reliability diagram (SMP)",
        columns=["predicted", "observed", "count"],
    )
    for p_bar, y_bar, count in reliability_diagram(smp_p, smp_y):
        diagram_table.add(p_bar, y_bar, count)

    result = ExperimentResult(
        experiment_id="CAL",
        description="probabilistic calibration of TR predictions (extension)",
        tables=[score_table, diagram_table],
    )
    curves.append(Series("ideal", [0.0, 1.0], [0.0, 1.0]))
    result.charts.append(
        line_chart(
            curves,
            title="CAL: reliability diagram (predicted vs observed survival)",
            xlabel="predicted",
            ylabel="observed",
        )
    )
    rows = {r[0]: r for r in score_table.rows}
    result.notes["smp_brier"] = rows["SMP"][1]
    result.notes["last_brier"] = rows["LAST"][1]
    result.notes["smp_better_calibrated"] = bool(rows["SMP"][2] <= rows["LAST"][2])
    result.notes["smp_ece"] = rows["SMP"][4]
    return result
