"""CHAR — trace characterization (the measurement-literature companion).

Characterizes the synthetic testbed the way the availability-measurement
papers the paper cites ([4, 16, 21]) characterized real ones:
distribution fits of unavailability durations and times-between-failures,
diurnal pattern strength, day-type separation, load autocorrelation
decay, and the per-hour failure-intensity calendar.

These quantities *explain* the headline results: strong diurnal
structure and day-type separation are why windowed same-type history
pooling works (FIG5); the fast-decaying load autocorrelation is why
multi-step linear forecasts fail (FIG7); the failure-intensity valley
around 8:00 is why the paper injects noise there (FIG8).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import fit_all
from repro.analysis.patterns import (
    day_type_separation,
    diurnal_profile,
    diurnal_strength,
    failure_intensity_by_hour,
    load_autocorrelation,
)
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.classifier import StateClassifier
from repro.core.windows import DayType
from repro.traces.stats import unavailability_events
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the trace characterization."""
    if scale == "quick":
        n_machines, n_days, period = 2, 56, 30.0
    else:
        n_machines, n_days, period = 6, 90, 6.0
    traces = synthesize_testbed(
        n_machines, n_days=n_days, sample_period=period, seed=seed, machine_jitter=0.10
    )
    classifier = StateClassifier()

    # ----- duration distributions ------------------------------------- #
    durations: list[float] = []
    gaps: list[float] = []
    for trace in traces:
        events = unavailability_events(trace, classifier)
        durations.extend(e.duration for e in events)
        starts = sorted(e.start for e in events)
        gaps.extend(b - a for a, b in zip(starts, starts[1:]) if b > a)
    dist_table = ResultTable(
        title="CHAR distribution fits (pooled over machines)",
        columns=["quantity", "family", "ks", "mean_s"],
    )
    for label, samples in (("unavailability duration", durations),
                           ("time between failures", gaps)):
        for fit in fit_all(samples)[:3]:
            dist_table.add(label, fit.name, fit.ks, fit.mean())

    # ----- temporal patterns ------------------------------------------ #
    pattern_table = ResultTable(
        title="CHAR temporal patterns (per machine)",
        columns=[
            "machine", "diurnal_R2_wd", "daytype_separation",
            "peak_hour", "trough_hour", "acf_half_life_s",
        ],
    )
    for trace in traces:
        acf = load_autocorrelation(trace, max_lag_seconds=3600.0)
        below = np.flatnonzero(acf < 0.5)
        half_life = float(below[0] * trace.sample_period) if below.size else float("inf")
        prof = diurnal_profile(trace, DayType.WEEKDAY)
        pattern_table.add(
            trace.machine_id,
            diurnal_strength(trace, DayType.WEEKDAY),
            day_type_separation(trace),
            prof.peak_hour,
            prof.trough_hour,
            half_life,
        )

    # ----- failure calendar -------------------------------------------- #
    calendar = ResultTable(
        title="CHAR weekday failure intensity by hour (events/day, pooled)",
        columns=["hour", "events_per_day"],
    )
    intensity = np.mean(
        [failure_intensity_by_hour(t, classifier, DayType.WEEKDAY) for t in traces],
        axis=0,
    )
    for h in range(24):
        calendar.add(h, float(intensity[h]))

    result = ExperimentResult(
        experiment_id="CHAR",
        description="availability characterization of the synthetic testbed",
        tables=[dist_table, pattern_table, calendar],
    )
    result.notes["n_unavailability_events"] = len(durations)
    result.notes["duration_best_fit"] = fit_all(durations)[0].name
    result.notes["mean_diurnal_R2"] = float(
        np.mean(pattern_table.column("diurnal_R2_wd"))
    )
    result.notes["intensity_8h_vs_peak"] = float(
        intensity[8] / max(intensity.max(), 1e-9)
    )
    return result
