"""CLUSTER — multi-node serving: scaling, failover latency, availability.

Drives a real :class:`LocalCluster` (subprocess ``repro serve`` backends
behind a :class:`ClusterRouter`) the way a multi-host FGCS deployment
would be driven, and reports:

* **throughput vs node count** — closed-loop predict load against 1..N
  node clusters with R=2 replication, requests/second and mean latency;
* **failover latency after SIGKILL** — the observed latency of the
  first read that lands on a freshly killed primary and transparently
  fails over to its replica, plus the router's failover counter;
* **availability with one node down** — with R=2 and one backend held
  down, the fraction of reads that still succeed (1.0: every shard has
  a live replica) versus the fraction of writes that reach quorum
  (shards whose owner set includes the dead node are refused).
"""

from __future__ import annotations

import tempfile
import time

from repro.bench.harness import ExperimentResult, ResultTable
from repro.cluster import LocalCluster, RouterConfig, RouterThread
from repro.obs.metrics import scoped_registry
from repro.serve.client import ServeClient, ServeRequestError
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]

_ROUTER_CONFIG = RouterConfig(
    replicas=2,
    probe_interval_s=0.2,
    connect_timeout_s=1.0,
    down_after=2,
    up_after=1,
)


def _register_all(port: int, testbed) -> None:
    with ServeClient(port=port, retries=5) as client:
        for trace in testbed:
            client.register(trace)


def _closed_loop_predicts(
    port: int, machines: list[str], n_requests: int
) -> tuple[float, list[float]]:
    """(wall_s, per-request latencies in ms) for ``n_requests`` router predicts."""
    latencies: list[float] = []
    t0 = time.perf_counter()
    with ServeClient(port=port) as client:
        for i in range(n_requests):
            q0 = time.perf_counter()
            client.predict(machines[i % len(machines)], 6.0 + (i % 10), 2.0)
            latencies.append((time.perf_counter() - q0) * 1e3)
    wall = time.perf_counter() - t0
    return wall, latencies


def _pct(latencies: list[float], q: float) -> float:
    """Nearest-rank quantile of a latency sample, in the same unit."""
    if not latencies:
        return float("nan")
    ordered = sorted(latencies)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[int(rank)]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the CLUSTER multi-node serving experiment."""
    if scale == "quick":
        n_machines, n_days, period = 4, 4, 240.0
        node_counts = (1, 3)
        n_requests = 120
    else:
        n_machines, n_days, period = 8, 7, 120.0
        node_counts = (1, 2, 3, 4)
        n_requests = 600

    testbed = synthesize_testbed(
        n_machines, n_days=n_days, sample_period=period, seed=seed
    )
    machines = testbed.machine_ids

    result = ExperimentResult(
        experiment_id="CLUSTER",
        description="sharded/replicated serving: scaling, failover, availability",
    )

    # --- phase 1: throughput vs node count ------------------------------ #
    scaling_tbl = ResultTable(
        title="CLUSTER predict throughput vs node count (R=2)",
        columns=["nodes", "requests", "wall_s", "rps", "mean_ms", "p50_ms", "p99_ms"],
    )
    for n_nodes in node_counts:
        with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
            with LocalCluster(tmp, n_nodes, fsync="never", supervise=False) as cluster:
                router = RouterThread(cluster.addresses, _ROUTER_CONFIG)
                try:
                    _register_all(router.port, testbed)
                    # warm every estimator so the loop measures serving,
                    # not one-off kernel fits
                    _closed_loop_predicts(router.port, machines, len(machines))
                    wall, lats = _closed_loop_predicts(
                        router.port, machines, n_requests
                    )
                finally:
                    router.stop()
        scaling_tbl.add(
            n_nodes,
            n_requests,
            wall,
            n_requests / max(wall, 1e-9),
            sum(lats) / max(len(lats), 1),
            _pct(lats, 0.50),
            _pct(lats, 0.99),
        )
    result.tables.append(scaling_tbl)
    rps = scaling_tbl.column("rps")
    result.notes["scaling_rps_ratio"] = rps[-1] / max(rps[0], 1e-9)

    # --- phase 2: failover latency after SIGKILL ------------------------ #
    failover_tbl = ResultTable(
        title="CLUSTER failover after SIGKILL of a primary (R=2)",
        columns=["baseline_ms", "failover_ms", "router_failovers", "restarted"],
    )
    with scoped_registry() as reg, \
            tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
        with LocalCluster(tmp, 3, fsync="never", supervise=True) as cluster:
            router = RouterThread(cluster.addresses, _ROUTER_CONFIG)
            try:
                _register_all(router.port, testbed)
                target = machines[0]
                victim = cluster.node(router.router.ring.owners(target)[0])
                with ServeClient(port=router.port) as client:
                    client.predict(target, 9.0, 2.0)  # warm both replicas
                    t0 = time.perf_counter()
                    client.predict(target, 9.0, 2.0)
                    baseline_ms = (time.perf_counter() - t0) * 1e3
                    victim.kill()
                    t0 = time.perf_counter()
                    client.predict(target, 9.0, 2.0)  # pays the failover
                    failover_ms = (time.perf_counter() - t0) * 1e3
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline and victim.restarts == 0:
                    time.sleep(0.05)
                failovers = reg.get("cluster_failovers_total")
                failover_tbl.add(
                    baseline_ms,
                    failover_ms,
                    int(failovers.value) if failovers is not None else 0,
                    victim.restarts >= 1,
                )
            finally:
                router.stop()
    result.tables.append(failover_tbl)
    result.notes["failover_latency_ms"] = failover_tbl.column("failover_ms")[0]

    # --- phase 3: availability with one node held down ------------------ #
    avail_tbl = ResultTable(
        title="CLUSTER availability with one of three nodes down (R=2)",
        columns=["reads", "reads_ok", "read_availability", "writes", "writes_ok", "write_availability"],
    )
    with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
        with LocalCluster(tmp, 3, fsync="never", supervise=False) as cluster:
            router = RouterThread(cluster.addresses, _ROUTER_CONFIG)
            try:
                _register_all(router.port, testbed)
                cluster.nodes[0].kill()
                reads_ok = 0
                n_reads = 4 * len(machines)
                with ServeClient(port=router.port) as client:
                    for i in range(n_reads):
                        try:
                            client.predict(machines[i % len(machines)], 9.0, 2.0)
                            reads_ok += 1
                        except (ServeRequestError, ConnectionError):
                            pass
                    writes_ok = 0
                    for trace in testbed:
                        try:
                            client.register(trace)
                            writes_ok += 1
                        except ServeRequestError:
                            pass  # QuorumNotMet: dead node owns a replica
                avail_tbl.add(
                    n_reads, reads_ok, reads_ok / n_reads,
                    n_machines, writes_ok, writes_ok / n_machines,
                )
            finally:
                router.stop()
    result.tables.append(avail_tbl)
    result.notes["read_availability_one_down"] = avail_tbl.column("read_availability")[0]
    result.notes["write_availability_one_down"] = avail_tbl.column("write_availability")[0]

    # Perf-trajectory snapshot (BENCH_cluster.json via `--bench-out`).
    # Routed-predict p99 at the largest node count is the gated number;
    # failover latency rides along as context (one sample, too noisy to
    # hold across commits).
    result.bench = {
        "predict_p50_ms": scaling_tbl.rows[-1][5],
        "predict_p99_ms": scaling_tbl.rows[-1][6],
        "predict_rps": scaling_tbl.rows[-1][3],
        "failover_ms": failover_tbl.column("failover_ms")[0],
        "read_availability_one_down": avail_tbl.column("read_availability")[0],
        "gate_keys": ["predict_p99_ms"],
    }
    return result
