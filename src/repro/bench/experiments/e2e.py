"""E2E — prediction-aware scheduling in the iShare simulator (extension).

The paper motivates availability prediction with proactive job
management (Section 1, refs [20, 31]) and names scheduler integration
as future work; this experiment closes the loop: identical workloads
run on identical testbeds under the TR-ranked predictive policy and two
availability-oblivious baselines (least-loaded, random), with and
without checkpointing.

Expected shape: predictive placement suffers fewer guest failures and
achieves lower mean response time and less wasted work than the
oblivious policies; checkpointing reduces waste further.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.windows import SECONDS_PER_DAY
from repro.sim.checkpoint import NoCheckpointing, PeriodicCheckpointing
from repro.sim.cluster import FgcsTestbed, poisson_workload, run_workload
from repro.sim.scheduler import LeastLoadedPolicy, PredictivePolicy, RandomPolicy
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the E2E scheduling comparison."""
    if scale == "quick":
        n_machines, n_days, period, n_jobs, span_days = 4, 28, 30.0, 12, 5
    else:
        n_machines, n_days, period, n_jobs, span_days = 8, 60, 30.0, 40, 20

    table = ResultTable(
        title="E2E policy comparison (identical workloads)",
        columns=[
            "policy", "checkpointing", "completed", "failures",
            "mean_response_h", "wasted_cpu_h", "monitor_overhead_pct",
        ],
    )
    configs = [
        ("predictive", lambda: PredictivePolicy(), NoCheckpointing()),
        ("least-loaded", lambda: LeastLoadedPolicy(), NoCheckpointing()),
        ("random", lambda: RandomPolicy(seed=5), NoCheckpointing()),
        (
            "predictive",
            lambda: PredictivePolicy(),
            PeriodicCheckpointing(interval=900.0, cost_cpu_seconds=15.0),
        ),
    ]
    stats_by_row = []
    for name, policy_factory, ckpt in configs:
        traces = synthesize_testbed(
            n_machines, n_days=n_days, sample_period=period, seed=seed + 3
        )
        bed = FgcsTestbed(traces, monitor_period=period)
        workload = poisson_workload(
            n_jobs,
            start=bed.start_time + 3600.0,
            span=span_days * SECONDS_PER_DAY,
            cpu_seconds_range=(1800.0, 10800.0),
            seed=seed + 9,
        )
        stats = run_workload(bed, policy_factory(), workload, checkpoint_policy=ckpt)
        ck_label = "periodic" if isinstance(ckpt, PeriodicCheckpointing) else "none"
        table.add(
            name,
            ck_label,
            f"{stats.n_completed}/{stats.n_jobs}",
            stats.n_failures,
            stats.mean_response_time / 3600.0,
            stats.total_wasted_cpu_seconds / 3600.0,
            bed.monitoring_overhead() * 100,
        )
        stats_by_row.append((name, ck_label, stats))

    result = ExperimentResult(
        experiment_id="E2E",
        description="TR-aware vs oblivious job scheduling (extension)",
        tables=[table],
    )
    pred = next(s for n, c, s in stats_by_row if n == "predictive" and c == "none")
    rand = next(s for n, c, s in stats_by_row if n == "random")
    result.notes["predictive_fewer_failures_than_random"] = (
        pred.n_failures <= rand.n_failures
    )
    result.notes["predictive_response_h"] = pred.mean_response_time / 3600.0
    result.notes["random_response_h"] = rand.mean_response_time / 3600.0
    return result
