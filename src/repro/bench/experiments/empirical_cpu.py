"""EMP-CPU — the CPU-contention empirical study (paper Section 3.2.1).

Reproduces the experiments behind the availability model: host groups
of several sizes and isolated usages, a CPU-bound guest at nice 0 and
nice 19, the measured reduction rate of host CPU usage, the derived
thresholds Th1/Th2, the saturation of guest CPU utilization with host
group size, and the priority-control alternatives.

Paper reference values (Linux testbed): Th1 = 20%, Th2 = 60%; the
thresholds come from the size-1 group (larger groups cross later);
guest CPU utilization decreases with group size and saturates beyond 5;
intermediate nice values are redundant and always-nice-19 wastes guest
throughput under light load.
"""

from __future__ import annotations

import numpy as np

from repro.bench.ascii_plot import Series, line_chart
from repro.bench.harness import ExperimentResult, ResultTable
from repro.contention.experiment import (
    cpu_contention_study,
    priority_alternatives_study,
)
from repro.contention.processes import HostGroup, guest_spec
from repro.contention.scheduler import SchedulerSimulator
from repro.contention.thresholds import derive_thresholds

__all__ = ["run", "guest_utilization_by_group_size"]


def guest_utilization_by_group_size(
    sizes: tuple[int, ...] = (1, 2, 3, 5, 8),
    *,
    duration: float = 90.0,
    reps: int = 3,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Guest CPU utilization vs host group size (random groups).

    The paper's observation: the guest's chance to steal cycles
    decreases with group size and saturates beyond 5.
    """
    sim = SchedulerSimulator()
    out = []
    for size in sizes:
        vals = []
        for rep in range(reps):
            rng = np.random.default_rng([seed, size, rep])
            group = HostGroup.random(rng, size, usage_range=(0.10, 1.00))
            res = sim.run(list(group.processes) + [guest_spec(0)], duration, seed=rep)
            vals.append(res.cpu_usage["guest"])
        out.append((size, float(np.mean(vals))))
    return out


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the EMP-CPU study at the given scale."""
    if scale == "quick":
        loads = (0.1, 0.2, 0.3, 0.5, 0.6, 0.7, 0.9)
        sizes = (1, 2, 3)
        duration, reps = 90.0, 2
    else:
        loads = (0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0)
        sizes = (1, 2, 3, 5)
        duration, reps = 180.0, 4

    records = cpu_contention_study(
        loads=loads, group_sizes=sizes, duration=duration, reps=reps, seed=seed
    )
    curves = ResultTable(
        title="EMP-CPU reduction rate (%) of host CPU usage",
        columns=["group_size", "L_H", "nice0_pct", "nice19_pct"],
    )
    for size in sizes:
        for load in loads:
            row = {}
            for r in records:
                if r.group_size == size and abs(r.isolated_usage - load) < 1e-9:
                    row[r.guest_nice] = r.reduction * 100
            curves.add(size, load, row.get(0, float("nan")), row.get(19, float("nan")))

    derivation = derive_thresholds(records)
    thresholds = ResultTable(
        title="EMP-CPU derived thresholds",
        columns=["threshold", "value", "paper_value"],
    )
    thresholds.add("Th1", derivation.th1, 0.20)
    thresholds.add("Th2", derivation.th2, 0.60)

    saturation = ResultTable(
        title="EMP-CPU guest CPU utilization vs host group size",
        columns=["group_size", "guest_utilization"],
    )
    for size, util in guest_utilization_by_group_size(seed=seed, duration=duration, reps=reps):
        saturation.add(size, util)

    alternatives = ResultTable(
        title="EMP-CPU priority-control alternatives",
        columns=["nice", "L_H", "host_reduction_pct", "guest_utilization"],
    )
    for rec in priority_alternatives_study(
        loads=(0.1, 0.5), nices=(0, 5, 10, 15, 19), duration=duration, reps=reps, seed=seed
    ):
        alternatives.add(
            rec.guest_nice, rec.isolated_usage, rec.host_reduction * 100, rec.guest_usage
        )

    result = ExperimentResult(
        experiment_id="EMP-CPU",
        description="CPU contention empirical study (Section 3.2.1)",
        tables=[curves, thresholds, saturation, alternatives],
    )
    size1 = [r for r in records if r.group_size == 1]
    result.charts.append(
        line_chart(
            [
                Series(
                    f"nice {nice}",
                    [r.isolated_usage for r in size1 if r.guest_nice == nice],
                    [r.reduction * 100 for r in size1 if r.guest_nice == nice],
                )
                for nice in (0, 19)
            ],
            title="EMP-CPU: host slowdown (%) vs isolated host load (size-1 group)",
            xlabel="L_H",
            ylabel="red %",
        )
    )
    result.notes["th1"] = derivation.th1
    result.notes["th2"] = derivation.th2
    utils = saturation.column("guest_utilization")
    sizes_col = saturation.column("group_size")
    result.notes["guest_util_decreases"] = bool(utils[0] > utils[-1])
    # "When the size is beyond 5, the reduction saturates": the decline of
    # guest utilization past size 5 is smaller than the decline up to 5.
    i5 = sizes_col.index(5)
    result.notes["saturates_beyond_5"] = bool(
        (utils[i5] - utils[-1]) < (utils[0] - utils[i5])
    )
    return result
