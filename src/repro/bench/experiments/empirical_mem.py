"""EMP-MEM — the memory-contention empirical study (paper Section 3.2.2).

SPEC-CPU2000-sized guests (29-193 MB working sets) against Musbus-sized
host workloads (53-213 MB, 8-67% CPU) on a 384 MB machine, at guest
nice 0 and nice 19.

Paper reference observations: (1) thrashing happens exactly when the
combined working sets exceed physical memory and changing CPU priority
does little to prevent it; (2) with sufficient memory the slowdown
depends only on host CPU usage — memory and CPU contention separate.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, ResultTable
from repro.contention.experiment import memory_contention_study

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the EMP-MEM study at the given scale."""
    if scale == "quick":
        guests = (29.0, 110.0, 193.0)
        hosts = (53.0, 150.0, 213.0)
        cpus = (0.08, 0.35, 0.67)
        duration, reps = 45.0, 1
    else:
        guests = (29.0, 64.0, 110.0, 150.0, 193.0)
        hosts = (53.0, 100.0, 150.0, 213.0)
        cpus = (0.08, 0.2, 0.35, 0.5, 0.67)
        duration, reps = 90.0, 2

    records = memory_contention_study(
        guest_ws_mb=guests,
        host_ws_mb=hosts,
        host_cpu_usages=cpus,
        duration=duration,
        reps=reps,
        seed=seed,
    )
    table = ResultTable(
        title="EMP-MEM host slowdown under memory+CPU contention",
        columns=[
            "guest_ws_mb", "host_ws_mb", "host_cpu", "nice",
            "overcommit", "thrashing", "host_reduction_pct",
        ],
    )
    for r in records:
        table.add(
            r.guest_ws_mb, r.host_ws_mb, r.host_cpu_usage, r.guest_nice,
            r.overcommit_ratio, r.thrashing, r.host_reduction * 100,
        )
    result = ExperimentResult(
        experiment_id="EMP-MEM",
        description="memory contention empirical study (Section 3.2.2)",
        tables=[table],
    )
    thrash = [r for r in records if r.thrashing]
    fit = [r for r in records if not r.thrashing]
    result.notes["n_thrashing_configs"] = len(thrash)
    result.notes["thrashing_iff_overcommit"] = all(
        r.thrashing == (r.overcommit_ratio > 1.0) for r in records
    )
    if thrash:
        by_nice: dict[int, list[float]] = {0: [], 19: []}
        for r in thrash:
            by_nice[r.guest_nice].append(r.host_reduction)
        result.notes["priority_gap_under_thrashing"] = float(
            abs(np.mean(by_nice[0]) - np.mean(by_nice[19]))
        )
        result.notes["mean_thrashing_reduction_pct"] = float(
            np.mean([r.host_reduction for r in thrash]) * 100
        )
    if fit:
        result.notes["mean_fitting_reduction_pct"] = float(
            np.mean([r.host_reduction for r in fit]) * 100
        )
    return result
