"""FIG4 — computational cost of the prediction (paper Figure 4).

Measures, for windows of 1..10 hours at the monitoring-period
discretization, the wall-clock cost of (a) estimating Q/H (the kernel)
and (b) the whole prediction (kernel + the Eq.-3 recursion), plus the
relative overhead on a guest job whose execution time equals the
window.

Paper reference values: Q/H estimation is a small fraction of the
total; the total grows superlinearly (measured exponent ~1.85, ours is
implementation-dependent but must exceed 1); at T = 10 h the total is
O(seconds) — less than 0.006% of the job's own execution time.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.estimator import EstimatorConfig
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType
from repro.traces.synthesis import synthesize_trace

__all__ = ["run"]


def run(
    scale: str = "quick",
    *,
    lengths: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0),
    seed: int = 0,
) -> ExperimentResult:
    """Run the FIG4 experiment.

    Both scales use the paper's 6 s monitoring period as the
    discretization interval d (a 10 h window means a 6000-step
    recursion, like the paper's); ``quick`` just uses a 21-day trace
    instead of 90 days.
    """
    if scale == "quick":
        trace = synthesize_trace("fig4", n_days=21, sample_period=6.0, seed=seed)
    else:
        trace = synthesize_trace("fig4", n_days=90, sample_period=6.0, seed=seed)
    predictor = TemporalReliabilityPredictor(
        trace, estimator_config=EstimatorConfig(step_multiple=1)
    )
    table = ResultTable(
        title="Fig4 prediction cost",
        columns=[
            "window_hours", "horizon_steps", "qh_ms", "solve_ms", "total_ms",
            "job_overhead_pct",
        ],
    )
    for T in lengths:
        res = predictor.predict_detailed(ClockWindow.from_hours(8, T), DayType.WEEKDAY)
        total = res.total_seconds
        table.add(
            T,
            res.horizon,
            res.estimation_seconds * 1000,
            res.solve_seconds * 1000,
            total * 1000,
            100.0 * total / (T * 3600.0),
        )
    # The paper fits the growth of the recursion cost in the number of
    # recursive steps; the Eq.-3 solve is that recursion.
    hours = np.asarray(table.column("window_hours"), dtype=float)
    solves = np.asarray(table.column("solve_ms"), dtype=float)
    if hours.size >= 2:
        exponent = float(
            np.polyfit(np.log(hours), np.log(np.maximum(solves, 1e-6)), 1)[0]
        )
    else:
        exponent = float("nan")
    result = ExperimentResult(
        experiment_id="FIG4",
        description="prediction computation time vs window length (Fig. 4)",
        tables=[table],
    )
    result.notes["growth_exponent"] = exponent
    result.notes["max_job_overhead_pct"] = max(table.column("job_overhead_pct"))
    result.notes["qh_fraction_at_10h"] = (
        table.column("qh_ms")[-1] / max(table.column("total_ms")[-1], 1e-9)
    )
    return result
