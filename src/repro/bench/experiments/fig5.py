"""FIG5 — accuracy of the SMP prediction (paper Figure 5a/5b).

For time windows of length 1..10 hours starting at each hour of the
day, on weekdays and weekends: predict the temporal reliability from
the training half of each machine's trace and compare with the
empirical TR observed on the test half.  Reported per (day type,
window length): the average, minimum and maximum relative error over
all (machine, start hour) pairs — exactly the points and error bars of
the paper's Figure 5.

Paper reference values: average error grows with window length, up to
~13.5% at 10 h (accuracy >= 86.5%); worst case ~26.7% (accuracy >=
73.3%); weekends slightly worse on short windows due to the smaller
training set.
"""

from __future__ import annotations

from repro.bench.data import EvaluationData, evaluation_data
from repro.bench.ascii_plot import Series, line_chart
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.empirical import empirical_tr
from repro.core.metrics import relative_error, summarize_errors
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType

__all__ = ["run", "window_errors"]

DEFAULT_LENGTHS = (1.0, 2.0, 3.0, 5.0, 10.0)


def window_errors(
    data: EvaluationData,
    clock: ClockWindow,
    dtype: DayType,
) -> list[float]:
    """Relative errors of the SMP prediction, one per machine."""
    errors = []
    for mid in data.machine_ids:
        predictor = TemporalReliabilityPredictor(
            data.train[mid], estimator_config=data.estimator_config
        )
        predicted = predictor.predict(clock, dtype)
        emp = empirical_tr(
            data.test[mid],
            data.classifier,
            clock,
            dtype,
            step_multiple=data.step_multiple,
        )
        errors.append(relative_error(predicted, emp.value))
    return errors


def run(
    scale: str = "quick",
    *,
    lengths: tuple[float, ...] = DEFAULT_LENGTHS,
    start_hours: tuple[int, ...] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run the FIG5 experiment at the given scale."""
    data = evaluation_data(scale, seed=seed)
    if start_hours is None:
        start_hours = tuple(range(0, 24, 2)) if scale == "quick" else tuple(range(24))
    result = ExperimentResult(
        experiment_id="FIG5",
        description="relative error of predicted TR vs window length (Fig. 5a/5b)",
    )
    for dtype in (DayType.WEEKDAY, DayType.WEEKEND):
        table = ResultTable(
            title=f"Fig5 {dtype.value}s",
            columns=["window_hours", "avg_error_pct", "min_error_pct", "max_error_pct", "n"],
        )
        for T in lengths:
            errors = []
            for h in start_hours:
                errors.extend(window_errors(data, ClockWindow.from_hours(h, T), dtype))
            s = summarize_errors(errors)
            table.add(T, s.mean * 100, s.minimum * 100, s.maximum * 100, s.n)
        result.tables.append(table)
    result.charts.append(
        line_chart(
            [
                Series(t.title.split()[-1], t.column("window_hours"), t.column("avg_error_pct"))
                for t in result.tables
            ],
            title="Fig5: average relative error (%) vs window length (h)",
            xlabel="T (h)",
            ylabel="err %",
        )
    )
    wd = result.tables[0]
    result.notes["avg_accuracy_floor_pct"] = min(
        100 - max(t.column("avg_error_pct")) for t in result.tables
    )
    result.notes["error_grows_with_length_weekdays"] = (
        wd.column("avg_error_pct")[-1] > wd.column("avg_error_pct")[0]
    )
    return result
