"""FIG6 — sensitivity to the training/test size ratio (paper Figure 6).

All weekday trace data is split at ratios 1:9 .. 9:1; for each split the
prediction runs over the same grid of weekday windows (start hours x
window lengths — the paper's 240 windows) and two summary metrics are
reported: the *max-average* error (average per window length, then the
maximum of those averages) and the overall maximum error.

Paper reference: both metrics are minimized around the 6:4 ratio — a
sweet spot exists because more history helps until the extra days are
old enough to bias the recent pattern, and a too-small test set makes
the empirical TR itself noisy.
"""

from __future__ import annotations

from collections import defaultdict

from repro.bench.data import evaluation_data
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.empirical import empirical_tr
from repro.core.metrics import relative_error, summarize_errors
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType

__all__ = ["run"]

RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run(
    scale: str = "quick",
    *,
    lengths: tuple[float, ...] = (1.0, 3.0, 5.0, 10.0),
    start_hours: tuple[int, ...] | None = None,
    ratios: tuple[float, ...] = RATIOS,
    seed: int = 0,
) -> ExperimentResult:
    """Run the FIG6 experiment at the given scale."""
    data = evaluation_data(scale, seed=seed)
    if start_hours is None:
        start_hours = tuple(range(0, 24, 3)) if scale == "quick" else tuple(range(24))
    table = ResultTable(
        title="Fig6 training:test ratio sensitivity (weekdays)",
        columns=["train_fraction", "ratio", "max_avg_error_pct", "max_error_pct"],
    )
    for frac in ratios:
        per_length: dict[float, list[float]] = defaultdict(list)
        for mid in data.machine_ids:
            train, test = data.traces[mid].split_by_ratio(frac)
            predictor = TemporalReliabilityPredictor(
                train, estimator_config=data.estimator_config
            )
            for T in lengths:
                for h in start_hours:
                    cw = ClockWindow.from_hours(h, T)
                    predicted = predictor.predict(cw, DayType.WEEKDAY)
                    emp = empirical_tr(
                        test, data.classifier, cw, DayType.WEEKDAY,
                        step_multiple=data.step_multiple,
                    )
                    per_length[T].append(relative_error(predicted, emp.value))
        summaries = [summarize_errors(v) for v in per_length.values()]
        max_avg = max(s.mean for s in summaries)
        max_err = max(s.maximum for s in summaries)
        label = f"{int(round(frac * 10))}:{int(round((1 - frac) * 10))}"
        table.add(frac, label, max_avg * 100, max_err * 100)
    result = ExperimentResult(
        experiment_id="FIG6",
        description="prediction error vs training:test split ratio (Fig. 6)",
        tables=[table],
    )
    fracs = table.column("train_fraction")
    max_avgs = table.column("max_avg_error_pct")
    best = fracs[max_avgs.index(min(max_avgs))]
    result.notes["best_train_fraction"] = best
    result.notes["sweet_spot_interior"] = bool(min(fracs) < best < max(fracs))
    return result
