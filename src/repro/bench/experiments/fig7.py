"""TAB1+FIG7 — SMP vs linear time-series models (paper Table 1, Figure 7).

For time windows starting at 8:00 on weekdays, lengths 1..10 h: predict
the temporal reliability with the SMP and with each linear model of the
paper's Table 1 — AR(8), BM(8), MA(8), ARMA(8,8), LAST — following the
Section-6.2 protocol (each model forecasts the target window from the
samples of the immediately preceding window; forecasted loads are
classified into states; predicted TR is compared with the measured TR).
The reported metric is the paper's: the *maximum* relative error over
machines, per (model, window length).

Paper reference: the SMP beats all five linear models at every length;
the advantage grows with the window (linear models are adept only at
short-term prediction); linear-model errors reach 100-250% at 10 h.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bench.data import evaluation_data
from repro.bench.ascii_plot import Series, line_chart
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.empirical import empirical_tr
from repro.core.metrics import relative_error
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType
from repro.timeseries.models import Arma, AutoRegressive, BestMean, Last, MovingAverage
from repro.timeseries.tr_adapter import TimeSeriesTRPredictor

__all__ = ["run", "MODEL_FACTORIES"]

MODEL_FACTORIES: dict[str, Callable] = {
    "AR(8)": lambda: AutoRegressive(8),
    "BM(8)": lambda: BestMean(8),
    "MA(8)": lambda: MovingAverage(8),
    "ARMA(8,8)": lambda: Arma(8, 8),
    "LAST": lambda: Last(),
}


def _max_finite(values: list[float]) -> float:
    finite = [v for v in values if np.isfinite(v)]
    return max(finite) if finite else float("nan")


def run(
    scale: str = "quick",
    *,
    lengths: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 10.0),
    start_hour: float = 8.0,
    seed: int = 0,
) -> ExperimentResult:
    """Run the TAB1+FIG7 comparison at the given scale."""
    data = evaluation_data(scale, seed=seed)
    columns = ["window_hours", "SMP"] + list(MODEL_FACTORIES)
    table = ResultTable(
        title=f"Fig7 max relative error (%) over machines, {start_hour:.0f}:00 weekday windows",
        columns=columns,
    )
    smp_predictors = {
        mid: TemporalReliabilityPredictor(
            data.train[mid], estimator_config=data.estimator_config
        )
        for mid in data.machine_ids
    }
    ts_predictors = {
        name: TimeSeriesTRPredictor(
            factory, data.classifier, step_multiple=data.step_multiple
        )
        for name, factory in MODEL_FACTORIES.items()
    }
    for T in lengths:
        cw = ClockWindow.from_hours(start_hour, T)
        errors: dict[str, list[float]] = {name: [] for name in columns[1:]}
        for mid in data.machine_ids:
            emp = empirical_tr(
                data.test[mid], data.classifier, cw, DayType.WEEKDAY,
                step_multiple=data.step_multiple,
            ).value
            errors["SMP"].append(
                relative_error(smp_predictors[mid].predict(cw, DayType.WEEKDAY), emp)
            )
            for name, pred in ts_predictors.items():
                ts = pred.predicted_tr(data.test[mid], cw, DayType.WEEKDAY)
                errors[name].append(relative_error(ts.value, emp))
        table.add(T, *[_max_finite(errors[name]) * 100 for name in columns[1:]])
    result = ExperimentResult(
        experiment_id="TAB1+FIG7",
        description="SMP vs linear time-series models (Table 1 / Fig. 7)",
        tables=[table],
    )
    result.charts.append(
        line_chart(
            [
                Series(name, table.column("window_hours"), table.column(name))
                for name in columns[1:]
            ],
            title="Fig7: max relative error (%) by model vs window length (h)",
            xlabel="T (h)",
            ylabel="err %",
        )
    )
    smp_col = np.asarray(table.column("SMP"), dtype=float)
    wins = []
    for name in MODEL_FACTORIES:
        col = np.asarray(table.column(name), dtype=float)
        ok = np.isfinite(col) & np.isfinite(smp_col)
        wins.append(bool(np.all(smp_col[ok] <= col[ok] + 1e-9)))
    result.notes["smp_beats_all_models"] = all(wins)
    result.notes["models_beaten"] = sum(wins)
    return result
