"""FIG8 — robustness to noise in the training data (paper Figure 8).

Following Section 7.3: inject 1..10 occurrences of unavailability
"around 8:00 am" (holding time uniform in 60..1800 s) into a weekday
training log, re-run the prediction for windows starting at 8:00 with
lengths 1..10 h, and report the *prediction discrepancy* — the relative
difference against the clean-history prediction.

Paper reference: small windows are sensitive (4 injections already move
the T = 1 h prediction by > 50%) while windows of 2 h and more stay
within ~6% even under 10 injections, because longer windows pool more
history.
"""

from __future__ import annotations

import numpy as np

from repro.bench.data import evaluation_data
from repro.bench.ascii_plot import Series, line_chart
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.metrics import prediction_discrepancy
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType
from repro.traces.noise import NoiseSpec, inject_noise

__all__ = ["run"]

DEFAULT_NOISE_AMOUNTS = (1, 2, 4, 6, 8, 10)
DEFAULT_LENGTHS = (1.0, 2.0, 3.0, 5.0, 10.0)


def run(
    scale: str = "quick",
    *,
    noise_amounts: tuple[int, ...] = DEFAULT_NOISE_AMOUNTS,
    lengths: tuple[float, ...] = DEFAULT_LENGTHS,
    machine_index: int = 0,
    seed: int = 0,
) -> ExperimentResult:
    """Run the FIG8 noise-robustness experiment."""
    data = evaluation_data(scale, seed=seed)
    mid = data.machine_ids[machine_index]
    train = data.train[mid]
    clean_pred = TemporalReliabilityPredictor(
        train, estimator_config=data.estimator_config
    )
    clean = {
        T: clean_pred.predict(ClockWindow.from_hours(8, T), DayType.WEEKDAY)
        for T in lengths
    }
    table = ResultTable(
        title="Fig8 prediction discrepancy (%) vs injected noise",
        columns=["n_noise"] + [f"T={T:g}h" for T in lengths],
    )
    for n in noise_amounts:
        noisy_trace = inject_noise(train, NoiseSpec(n_events=n), rng=seed + n)
        noisy_pred = TemporalReliabilityPredictor(
            noisy_trace, estimator_config=data.estimator_config
        )
        row = [n]
        for T in lengths:
            noisy = noisy_pred.predict(ClockWindow.from_hours(8, T), DayType.WEEKDAY)
            row.append(prediction_discrepancy(noisy, clean[T]) * 100)
        table.add(*row)
    result = ExperimentResult(
        experiment_id="FIG8",
        description="robustness of the prediction to irregular unavailability (Fig. 8)",
        tables=[table],
    )
    result.charts.append(
        line_chart(
            [
                Series(f"T={T:g}h", table.column("n_noise"), table.column(f"T={T:g}h"))
                for T in lengths
            ],
            title="Fig8: prediction discrepancy (%) vs injected noise events",
            xlabel="noise",
            ylabel="disc %",
        )
    )
    # Headline notes matching the paper's two claims.
    short_col = np.asarray(table.column(f"T={lengths[0]:g}h"), dtype=float)
    long_cols = [
        np.asarray(table.column(f"T={T:g}h"), dtype=float) for T in lengths if T >= 2.0
    ]
    result.notes["max_discrepancy_shortest_window_pct"] = float(np.nanmax(short_col))
    result.notes["max_discrepancy_long_windows_pct"] = float(
        np.nanmax([np.nanmax(c) for c in long_cols])
    )
    result.notes["short_window_more_sensitive"] = bool(
        np.nanmax(short_col) > np.nanmax([np.nanmax(c) for c in long_cols])
    )
    return result
