"""FLEET — batched fleet-scale SMP solves vs the scalar predict loop.

Two layers, same question ("TR for every machine, now"):

* **kernel level** — M random per-machine kernels solved by the scalar
  Eq.-3 recursion (:func:`~repro.core.smp.failure_probabilities` in a
  Python loop) vs one stacked :class:`~repro.fleet.FleetKernel` pass
  (:func:`~repro.fleet.solve_fleet`).  Both arms do identical flops;
  the batched arm replaces M small BLAS calls per step with two batched
  matmuls, so the win here is call-overhead amortization (a few ×).
* **service level** — a 100-machine registry answering rank/select.
  The scalar loop (``predict_all(batch=False)``) re-pools observations
  and re-builds each machine's kernel on *every* query; the fleet path
  (``fleet_scan``) fingerprints built kernel rows by history length and
  caches whole scans, so a steady-state scan costs one batched solve at
  worst and a cache hit at best.  This is where the order-of-magnitude
  lives, and it is the path ``rank``/``select``/the placement engine
  actually take.

Equality is asserted, not assumed: every batched TR must match its
scalar twin within 1e-9, and the merged rank ordering must be
byte-identical.  ``BENCH_fleet.json`` gates the warm scan latency
(lower) and the 100-machine speedup (``:higher``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.smp import SmpKernel, failure_probabilities
from repro.core.states import State
from repro.core.windows import AbsoluteWindow
from repro.fleet import FleetKernel, solve_fleet
from repro.service import AvailabilityService
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def _random_kernel(rng: np.random.Generator, horizon: int) -> SmpKernel:
    """A valid random kernel: row-group mass <= 1, column 0 empty."""
    k = np.zeros((8, horizon + 1))
    for rows in (slice(0, 4), slice(4, 8)):
        raw = rng.random((4, horizon))
        raw /= raw.sum()
        k[rows, 1:] = raw * (0.5 + 0.5 * rng.random())
    return SmpKernel(k, 6.0)


def _median_ms(fn, reps: int) -> float:
    """Median wall-clock milliseconds of ``reps`` calls."""
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return float(sorted(samples)[len(samples) // 2])


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the FLEET batched-vs-scalar prediction experiment."""
    if scale == "quick":
        fleet_sizes = (10, 100, 1000)
        horizon, reps = 600, 3
        n_machines, n_days, period = 100, 8, 300.0
        service_reps = 3
    else:
        fleet_sizes = (10, 100, 1000)
        horizon, reps = 1200, 5
        n_machines, n_days, period = 200, 10, 120.0
        service_reps = 5

    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment_id="FLEET",
        description="batched fleet-scale SMP solves vs the scalar predict loop",
    )

    # ------------------------------------------------------------------ #
    # kernel level: M scalar Eq.-3 solves vs one stacked pass
    # ------------------------------------------------------------------ #
    kernel_table = ResultTable(
        title=f"FLEET kernel-level solve, horizon {horizon}",
        columns=["machines", "scalar_ms", "batched_ms", "speedup", "max_abs_diff"],
    )
    max_diff_all = 0.0
    for m_count in fleet_sizes:
        kernels = [_random_kernel(rng, horizon) for _ in range(m_count)]
        inits = [State(int(rng.integers(1, 6))) for _ in range(m_count)]
        ids = [f"m{i:04d}" for i in range(m_count)]
        fleet = FleetKernel(ids, kernels)
        init_arr = np.array([int(s) for s in inits])

        def scalar_arm():
            return [failure_probabilities(k, s) for k, s in zip(kernels, inits)]

        def batched_arm():
            return solve_fleet(fleet, init_arr)

        scalar_fail = np.array(scalar_arm())
        solution = batched_arm()
        max_diff = float(np.max(np.abs(solution.fail - scalar_fail)))
        max_diff_all = max(max_diff_all, max_diff)
        assert max_diff <= 1e-9, f"batched != scalar at M={m_count}: {max_diff}"

        scalar_ms = _median_ms(scalar_arm, reps)
        batched_ms = _median_ms(batched_arm, reps)
        kernel_table.add(
            m_count, round(scalar_ms, 2), round(batched_ms, 2),
            round(scalar_ms / max(batched_ms, 1e-9), 2),
            f"{max_diff:.1e}",
        )
        result.notes[f"kernel_speedup_{m_count}"] = round(
            scalar_ms / max(batched_ms, 1e-9), 2
        )
    result.tables.append(kernel_table)
    result.notes["kernel_max_abs_diff"] = f"{max_diff_all:.1e}"

    # ------------------------------------------------------------------ #
    # service level: 100-machine rank/select, scalar loop vs fleet_scan
    # ------------------------------------------------------------------ #
    traces = synthesize_testbed(
        n_machines, n_days=n_days, sample_period=period, seed=seed
    )
    service = AvailabilityService()
    for trace in traces:
        service.register(trace)
    window = AbsoluteWindow(2.0 * 86400.0 + 9.0 * 3600.0, 4.0 * 3600.0)

    # Warm the per-day observation caches both arms share, then verify
    # the batched answers (and the rank ordering built from them) are
    # exactly the scalar path's.
    scalar_trs = service.predict_all(window, batch=False)
    scan = service.fleet_scan(window)
    batch_trs = scan.trs()
    tr_diff = max(abs(scalar_trs[m] - batch_trs[m]) for m in scalar_trs)
    assert tr_diff <= 1e-9, f"fleet_scan != scalar predict loop: {tr_diff}"
    scalar_rank = [
        m for m, _ in sorted(scalar_trs.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    assert scalar_rank == [m for m, _ in scan.ranking()], "rank ordering diverged"

    scalar_ms = _median_ms(
        lambda: service.predict_all(window, batch=False), service_reps
    )

    def cold_scan():
        # Invalidate fleet caches only: the scalar arm's observation
        # caches stay warm, so "cold" isolates kernel build + solve.
        service._fleet.invalidate()
        service.fleet_scan(window)

    cold_ms = _median_ms(cold_scan, service_reps)
    service.fleet_scan(window)  # repopulate
    warm_ms = _median_ms(lambda: service.fleet_scan(window), service_reps)

    speedup_cold = scalar_ms / max(cold_ms, 1e-9)
    speedup_warm = scalar_ms / max(warm_ms, 1e-9)

    service_table = ResultTable(
        title=f"FLEET service-level scan, {n_machines} machines",
        columns=["arm", "ms_per_query", "speedup_vs_scalar"],
    )
    service_table.add("scalar predict loop", round(scalar_ms, 2), 1.0)
    service_table.add("fleet_scan (cold)", round(cold_ms, 2), round(speedup_cold, 1))
    service_table.add("fleet_scan (warm)", round(warm_ms, 3), round(speedup_warm, 1))
    result.tables.append(service_table)

    result.notes["service_machines"] = n_machines
    result.notes["service_speedup_cold"] = round(speedup_cold, 1)
    result.notes["service_speedup_warm"] = round(speedup_warm, 1)
    result.notes["service_tr_max_abs_diff"] = f"{tr_diff:.1e}"
    result.notes["rank_identical"] = True
    # The acceptance bar: a steady-state 100-machine rank/select answered
    # >= 10x faster by the batched path than by the scalar loop.
    assert speedup_warm >= 10.0, (
        f"fleet_scan warm speedup {speedup_warm:.1f}x < 10x acceptance bar"
    )

    result.bench = {
        "scalar_loop_ms": scalar_ms,
        "fleet_scan_cold_ms": cold_ms,
        "fleet_scan_warm_ms": warm_ms,
        "fleet_speedup_warm": speedup_warm,
        "fleet_speedup_cold": speedup_cold,
        "kernel_speedup_100": result.notes["kernel_speedup_100"],
        "gate_keys": ["fleet_scan_warm_ms", "fleet_speedup_warm:higher"],
    }
    return result
