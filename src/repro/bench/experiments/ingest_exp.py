"""INGEST — real-telemetry ingestion: adapter, agent and end-to-end costs.

Benchmarks the two front doors of :mod:`repro.ingest`:

* **adapter throughput** — converting foreign trace files (timestamped
  CSV at a coarse cadence, spot-VM preemption logs) onto the model grid,
  in source rows/second and grid samples/second;
* **agent loop cost** — the per-sample price of the live monitor loop
  (quantize, journal, buffer) on a simulated clock, the number behind
  the paper Sec. 5.2 claim that monitoring must stay invisible to the
  host owner;
* **end-to-end freshness** — a simulated multi-day agent streaming
  through a real TCP server: flush latency, plus the cost of reading the
  ingested tail back (the read-your-writes check).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.harness import ExperimentResult, ResultTable
from repro.ingest.adapters import get_adapter
from repro.ingest.agent import AgentConfig, MonitorAgent, SimulatedClock
from repro.ingest.samplers import SyntheticSampler
from repro.obs.metrics import scoped_registry
from repro.serve.client import ServeClient
from repro.serve.dispatch import DispatchConfig
from repro.service import AvailabilityService

__all__ = ["run"]

_EPOCH = 1_700_000_000.0  # fixed agent start: identical grids run-to-run


def _write_csv(path: Path, rows: int, cadence_s: float) -> None:
    """A deterministic single-machine foreign CSV at a coarse cadence."""
    with path.open("w") as fh:
        fh.write("timestamp,load,free_mem_mb,up\n")
        for i in range(rows):
            load = 0.1 + 0.4 * ((i * 7919) % 100) / 100.0
            fh.write(f"{cadence_s * i:.0f},{load:.3f},{512 + i % 256},1\n")


def _write_preempt(path: Path, lifetimes: int) -> None:
    """A deterministic spot-VM lifetime log: up 50 min, down 10, repeat."""
    with path.open("w") as fh:
        fh.write("instance,start,end,cause\n")
        for i in range(lifetimes):
            start = i * 3600.0
            fh.write(f"spot-0,{start:.0f},{start + 3000:.0f},preempted\n")


class _NullClient:
    """Accept-everything sink isolating the agent loop from the wire."""

    def extend(self, chunk) -> dict:
        return {"n_samples": chunk.n_samples}


class _ServerThread:
    """A ServeServer on its own event loop thread (bench plumbing)."""

    def __init__(self, service: AvailabilityService, config: DispatchConfig) -> None:
        import asyncio
        import threading

        from repro.serve.server import ServeServer

        self._loop = asyncio.new_event_loop()
        self.server = ServeServer(service, port=0, config=config)
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="ingest-bench-loop", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self._loop).result(10)

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        import asyncio

        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the INGEST telemetry-pipeline experiment."""
    if scale == "quick":
        csv_rows, preempt_lifetimes = 20_000, 200
        agent_samples, sim_days, chunk = 20_000, 1.0, 100
    else:
        csv_rows, preempt_lifetimes = 200_000, 2_000
        agent_samples, sim_days, chunk = 100_000, 7.0, 500

    result = ExperimentResult(
        experiment_id="INGEST",
        description="telemetry ingestion: adapters, agent loop, e2e freshness",
    )

    # --- phase 1: adapter throughput ----------------------------------- #
    adapter_tbl = ResultTable(
        title="INGEST adapter throughput (foreign file -> model grid)",
        columns=["adapter", "rows", "samples_out", "wall_s", "rows_per_s",
                 "samples_per_s"],
    )
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:
        csv_path = Path(tmp) / "fleet.csv"
        _write_csv(csv_path, csv_rows, cadence_s=30.0)
        t0 = time.perf_counter()
        traces, stats = get_adapter("csv")(csv_path, sample_period=6.0)
        csv_wall = time.perf_counter() - t0
        adapter_tbl.add(
            "csv", stats.rows_read, stats.samples_out, csv_wall,
            stats.rows_read / max(csv_wall, 1e-9),
            stats.samples_out / max(csv_wall, 1e-9),
        )
        csv_samples_per_s = stats.samples_out / max(csv_wall, 1e-9)

        pre_path = Path(tmp) / "spot.csv"
        _write_preempt(pre_path, preempt_lifetimes)
        t0 = time.perf_counter()
        traces, stats = get_adapter("preempt")(pre_path, sample_period=6.0)
        pre_wall = time.perf_counter() - t0
        adapter_tbl.add(
            "preempt", stats.rows_read, stats.samples_out, pre_wall,
            stats.rows_read / max(pre_wall, 1e-9),
            stats.samples_out / max(pre_wall, 1e-9),
        )
    result.tables.append(adapter_tbl)
    del traces

    # --- phase 2: agent loop cost (simulated clock, null wire) --------- #
    agent_tbl = ResultTable(
        title="INGEST agent loop cost (sample -> journal -> buffer)",
        columns=["spill", "samples", "wall_s", "samples_per_s",
                 "sample_p99_us"],
    )
    loop_rate = sample_p99_us = float("nan")
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:
        for spill in (None, Path(tmp) / "spill"):
            with scoped_registry() as reg:
                clock = SimulatedClock(_EPOCH)
                agent = MonitorAgent(
                    SyntheticSampler(seed=seed),
                    _NullClient(),
                    AgentConfig(
                        machine_id="bench", sample_period=6.0,
                        chunk_samples=chunk, spill_dir=spill,
                    ),
                    clock=clock.now, sleep=clock.sleep,
                )
                t0 = time.perf_counter()
                produced = agent.run(max_samples=agent_samples)
                wall = time.perf_counter() - t0
                hist = reg.get("ingest_sample_seconds")
                p99_us = hist.quantile(0.99) * 1e6 if hist is not None else 0.0
            agent_tbl.add(
                "none" if spill is None else "journal",
                produced, wall, produced / max(wall, 1e-9), p99_us,
            )
            if spill is None:
                loop_rate = produced / max(wall, 1e-9)
                sample_p99_us = p99_us
    result.tables.append(agent_tbl)
    result.notes["journal_slowdown_x"] = (
        agent_tbl.rows[0][3] / max(agent_tbl.rows[1][3], 1e-9)
    )

    # --- phase 3: end-to-end through a real TCP server ----------------- #
    e2e_tbl = ResultTable(
        title="INGEST end-to-end: simulated agent through a live server",
        columns=["sim_days", "samples", "wall_s", "flush_p99_ms",
                 "tail_read_ms"],
    )
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:
        with scoped_registry() as reg:
            srv = _ServerThread(
                AvailabilityService(), DispatchConfig(max_workers=2)
            )
            try:
                with ServeClient(port=srv.port) as client:
                    clock = SimulatedClock(_EPOCH)
                    agent = MonitorAgent(
                        SyntheticSampler(seed=seed),
                        client,
                        AgentConfig(
                            machine_id="bench", sample_period=6.0,
                            chunk_samples=chunk,
                            spill_dir=Path(tmp) / "spill",
                        ),
                        clock=clock.now, sleep=clock.sleep,
                    )
                    t0 = time.perf_counter()
                    produced = agent.run(duration_s=sim_days * 86400.0)
                    e2e_wall = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    tail = client.tail("bench", n=10)
                    tail_ms = (time.perf_counter() - t0) * 1e3
                    assert tail["n_samples"] == produced
            finally:
                srv.stop()
            hist = reg.get("ingest_flush_latency_seconds")
            flush_p99_ms = hist.quantile(0.99) * 1e3 if hist is not None else 0.0
        e2e_tbl.add(sim_days, produced, e2e_wall, flush_p99_ms, tail_ms)
    result.tables.append(e2e_tbl)
    result.notes["e2e_samples"] = produced
    result.notes["e2e_samples_per_s"] = produced / max(e2e_wall, 1e-9)

    # Perf-trajectory snapshot (BENCH_ingest.json via `--bench-out`).
    # The flush p99 is the gated latency; adapter conversion is gated as
    # a throughput (":higher" — only a drop fails the gate).
    result.bench = {
        "csv_import_samples_per_s": csv_samples_per_s,
        "agent_loop_samples_per_s": loop_rate,
        "agent_sample_p99_us": sample_p99_us,
        "e2e_flush_p99_ms": flush_p99_ms,
        "e2e_tail_read_ms": tail_ms,
        "gate_keys": ["e2e_flush_p99_ms", "csv_import_samples_per_s:higher"],
    }
    return result
