"""LOAD — native load-forecast quality of the linear models (extension).

The RPS models come from host-load prediction [9], where they are
scored on load forecast error.  This experiment evaluates them on their
home game — per-horizon mean absolute error of multi-step load
forecasts over rolling origins on the synthetic traces — to complete
the Fig.-7 story: the linear models *are* reasonable load forecasters
at short horizons, and still lose the availability game because TR
hinges on threshold crossings their mean-reverting forecasts flatten
out.
"""

from __future__ import annotations

import numpy as np

from repro.bench.ascii_plot import Series, line_chart
from repro.bench.data import evaluation_data
from repro.bench.harness import ExperimentResult, ResultTable
from repro.timeseries.evaluation import compare_models
from repro.timeseries.models import (
    Arma,
    AutoRegressive,
    BestMean,
    GlobalMean,
    Last,
    MovingAverage,
)

__all__ = ["run"]

FACTORIES = [
    lambda: AutoRegressive(8),
    lambda: BestMean(8),
    lambda: MovingAverage(8),
    lambda: Arma(8, 8),
    lambda: Last(),
    lambda: GlobalMean(),
]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the load-forecast evaluation."""
    data = evaluation_data(scale, seed=seed)
    horizon = 60  # steps of the evaluation grid
    fit_length = 120
    checkpoints = (0, 4, 14, 29, 59)  # 1-step .. 60-step look-aheads

    # Pool the per-machine rolling errors (coarsened to the SMP step so
    # the horizon is in scheduler-relevant units).
    mult = data.step_multiple
    per_model: dict[str, list[np.ndarray]] = {}
    n_origins = 0
    for mid in data.machine_ids:
        trace = data.train[mid]
        n_full = (trace.n_samples // mult) * mult
        series = (
            np.where(trace.up[:n_full], trace.load[:n_full], 0.0)
            .reshape(-1, mult)
            .mean(axis=1)
        )
        results = compare_models(
            FACTORIES, series, fit_length=fit_length, horizon=horizon,
            stride=horizon * 4,
        )
        n_origins += results[0].n_origins
        for res in results:
            per_model.setdefault(res.model_name, []).append(res.mae)

    step_seconds = data.sample_period * mult
    table = ResultTable(
        title="LOAD mean absolute forecast error by look-ahead",
        columns=["lookahead_min"] + list(per_model),
    )
    curves = []
    for name, maes in per_model.items():
        pooled = np.mean(np.vstack(maes), axis=0)
        curves.append(
            Series(name, [(k + 1) * step_seconds / 60 for k in checkpoints],
                   [float(pooled[k]) for k in checkpoints])
        )
    for i, k in enumerate(checkpoints):
        row = [(k + 1) * step_seconds / 60.0]
        for name in per_model:
            row.append(float(np.mean(np.vstack(per_model[name]), axis=0)[k]))
        table.add(*row)

    result = ExperimentResult(
        experiment_id="LOAD",
        description="native load-forecast quality of the linear models",
        tables=[table],
    )
    result.charts.append(
        line_chart(
            curves,
            title="LOAD: forecast MAE vs look-ahead (minutes)",
            xlabel="min",
            ylabel="MAE",
        )
    )
    result.notes["n_origins"] = n_origins
    # Short-horizon errors are small in absolute terms (the models' home
    # game) and grow with look-ahead for every model.
    first_row, last_row = table.rows[0], table.rows[-1]
    result.notes["short_horizon_mae"] = float(np.mean(first_row[1:]))
    result.notes["error_grows_with_lookahead"] = bool(
        np.mean(last_row[1:]) >= np.mean(first_row[1:])
    )
    return result
