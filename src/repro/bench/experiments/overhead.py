"""OVH — monitoring and prediction overhead (paper Section 7.1).

Two claims are measured:

* resource monitoring at a 6 s period consumes well under 1% CPU on the
  monitored machine;
* the whole prediction adds a negligible fraction (paper: < 0.006%) to
  the completion time of a typical (up to 10 h) guest job.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.estimator import EstimatorConfig
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType, SECONDS_PER_DAY
from repro.obs.instruments import instrument
from repro.sim.engine import SimulationEngine
from repro.sim.machine import HostMachine
from repro.sim.monitor import ResourceMonitor
from repro.traces.synthesis import synthesize_trace

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the OVH experiment."""
    if scale == "quick":
        trace = synthesize_trace("ovh", n_days=14, sample_period=30.0, seed=seed)
        monitor_period = 30.0
        sim_days = 2.0
    else:
        trace = synthesize_trace("ovh", n_days=90, sample_period=6.0, seed=seed)
        monitor_period = 6.0
        sim_days = 7.0

    # --- monitoring overhead ------------------------------------------ #
    # The CPU cost is read back from the metrics registry (delta across
    # the run), so this experiment verifies the same counter a production
    # scrape of the Sec. 5.2 "< 1% CPU" claim would alert on.
    cost_counter = instrument("monitor_cpu_cost_seconds_total")
    cost_before = cost_counter.value
    engine = SimulationEngine(start_time=trace.start_time)
    monitor = ResourceMonitor(HostMachine(trace), engine, period=monitor_period)
    monitor.start()
    engine.run_until(trace.start_time + sim_days * SECONDS_PER_DAY)
    elapsed = engine.now - trace.start_time
    mon_cpu_seconds = cost_counter.value - cost_before
    mon_overhead = mon_cpu_seconds / elapsed if elapsed > 0.0 else 0.0

    # --- prediction overhead on a 10 h job ----------------------------- #
    predictor = TemporalReliabilityPredictor(
        trace, estimator_config=EstimatorConfig(step_multiple=1)
    )
    res = predictor.predict_detailed(ClockWindow.from_hours(8, 10), DayType.WEEKDAY)
    job_overhead = res.total_seconds / (10 * 3600.0)

    table = ResultTable(
        title="OVH monitoring & prediction overhead",
        columns=["metric", "value_pct", "paper_bound_pct"],
    )
    table.add("monitor CPU overhead", mon_overhead * 100, 1.0)
    table.add("prediction vs 10h job", job_overhead * 100, 0.006)
    result = ExperimentResult(
        experiment_id="OVH",
        description="monitoring and prediction overhead (Section 7.1)",
        tables=[table],
    )
    result.notes["monitor_overhead_pct"] = mon_overhead * 100
    result.notes["prediction_job_overhead_pct"] = job_overhead * 100
    result.notes["samples_taken"] = monitor.samples_taken
    result.notes["monitor_cpu_cost_seconds"] = mon_cpu_seconds
    return result
