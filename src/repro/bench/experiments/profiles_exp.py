"""PROF — prediction across workload-pattern testbeds (paper future work).

"In future work, we plan to test our prediction mechanisms on testbeds
with different workload patterns, such as a testbed containing
enterprise desktop resources.  We expect that our prediction will
perform well on the proposed testbeds" (Section 8).

This experiment runs the FIG5 accuracy protocol on three synthetic
testbeds — the student lab the paper evaluated on, an enterprise
desktop fleet, and an always-on server room — and compares average and
worst-case prediction error.  The paper's expectation is that accuracy
carries over; the interesting structure is *why*: desktops have sharper
(more predictable) diurnal edges, server rooms have almost no pattern
but also almost no failures.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.classifier import StateClassifier
from repro.core.empirical import empirical_tr
from repro.core.estimator import EstimatorConfig
from repro.core.metrics import relative_error, summarize_errors
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType
from repro.traces.profiles import PROFILES
from repro.traces.stats import summarize_trace
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the cross-profile accuracy comparison."""
    if scale == "quick":
        n_machines, n_days, period, mult = 2, 56, 30.0, 2
        start_hours = (2, 8, 11, 14, 20)
    else:
        n_machines, n_days, period, mult = 4, 90, 6.0, 10
        start_hours = tuple(range(0, 24, 2))
    lengths = (1.0, 3.0, 5.0, 10.0)
    classifier = StateClassifier()
    cfg = EstimatorConfig(step_multiple=mult)

    table = ResultTable(
        title="PROF prediction accuracy by testbed profile (weekdays)",
        columns=[
            "profile", "events_per_day", "avg_error_pct", "max_error_pct", "n_windows",
        ],
    )
    for name, factory in PROFILES.items():
        traces = synthesize_testbed(
            n_machines,
            n_days=n_days,
            sample_period=period,
            seed=seed,
            profile=factory(),
            machine_jitter=0.10,
            id_prefix=name,
        )
        events_per_day = sum(
            summarize_trace(t, classifier).events_per_day for t in traces
        ) / len(traces)
        errors = []
        for trace in traces:
            train, test = trace.split_by_ratio(0.5)
            predictor = TemporalReliabilityPredictor(train, estimator_config=cfg)
            for T in lengths:
                for h in start_hours:
                    cw = ClockWindow.from_hours(h, T)
                    predicted = predictor.predict(cw, DayType.WEEKDAY)
                    emp = empirical_tr(
                        test, classifier, cw, DayType.WEEKDAY, step_multiple=mult
                    )
                    errors.append(relative_error(predicted, emp.value))
        s = summarize_errors(errors)
        table.add(name, events_per_day, s.mean * 100, s.maximum * 100, s.n)

    result = ExperimentResult(
        experiment_id="PROF",
        description="prediction accuracy across workload-pattern testbeds "
        "(the paper's future-work expectation)",
        tables=[table],
    )
    by_profile = {row[0]: row[2] for row in table.rows}
    result.notes["lab_avg_error_pct"] = by_profile["student-lab"]
    result.notes["all_profiles_usable"] = all(v < 60.0 for v in by_profile.values())
    return result
