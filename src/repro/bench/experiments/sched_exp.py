"""SCHED — availability-aware placement vs TR-blind least-loaded.

Replays a heterogeneous testbed through two
:class:`~repro.sched.JobManager` arms fed the *same* jobs and the
*same* machine churn.  The cohorts are deliberately unequal: the
student-lab machines sit mostly idle (failures cluster in the daytime
login hours), while the server-room machines run hot — sustained host
load above Th2 is exactly the S3 contention failure of the five-state
model, so for a *guest job* the "server" cohort is the flaky one.  TR,
trained on the same histories, knows this.  The two arms:

* **predictive** — the production engine: candidates scored by TR over
  the job's remaining-execution window, blended with packing balance;
* **blind** — the control: identical manager, recovery model and
  checkpointing, but the engine ranks by least-loaded headroom alone.

Churn is not random: each machine's held-out trace is pushed through
the five-state classifier, and the machine "dies" (SIGKILL semantics —
nothing to migrate) exactly when its trace enters a failure state
(S3-S5) and recovers when it leaves.  Failures are therefore correlated
with the history TR was trained on — the situation the paper argues
makes availability prediction worth acting on.

The sim clock is injected, so hours of guest work replay in seconds of
wall time; placement latencies, however, are *real* wall-clock
measurements of ``submit`` (TR queries for every candidate included).

Headline: useful guest CPU-seconds banked per simulated second and
total wasted (lost-on-kill) CPU-seconds, per arm.  The acceptance bar
is predictive strictly better on both.  ``BENCH_sched.json`` gates
placement p99 (lower is better) and useful-work throughput (higher is
better, via the ``:higher`` gate-key suffix).
"""

from __future__ import annotations

import json
import time

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.classifier import StateClassifier
from repro.core.states import State
from repro.sched import (
    STATE_COMPLETED,
    JobManager,
    SchedConfig,
)
from repro.service import AvailabilityService
from repro.traces.profiles import server_room, student_lab
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def _pct(values: list[float], q: float) -> float:
    """Nearest-rank quantile of a sample, in the same unit."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[int(rank)]


def _failure_timeline(trace, classifier: StateClassifier):
    """(sample_period, bool-per-sample "machine is dead") for one trace."""
    states = classifier.classify_trace(trace)
    return trace.sample_period, [State(int(s)).is_failure for s in states]


def _dead_at(timeline, t: float) -> bool:
    period, dead = timeline
    idx = min(len(dead) - 1, max(0, int(t / period)))
    return dead[idx]


def _run_arm(
    *,
    predictive: bool,
    batch_predict: bool = True,
    service: AvailabilityService,
    timelines: dict[str, tuple],
    job_hours: tuple[float, ...],
    target_inflight: int,
    max_jobs: int,
    sim_start: float,
    sim_end: float,
    tick_s: float,
    job_cpu: float,
) -> dict[str, float]:
    """Drive one scheduler arm through the shared churn script.

    The workload is an open stream: whenever a job finishes (or the sim
    begins) new jobs are submitted to hold ``target_inflight`` in
    flight.  That keeps the placement decision *alive* for the whole
    replay — a flaky machine whose job just died looks attractively
    empty to the least-loaded baseline, and the baseline keeps paying
    for it, while the predictive arm keeps declining.
    """
    sim_now = [sim_start]
    manager = JobManager(
        service,
        config=SchedConfig(
            predictive=predictive,
            checkpoint_interval_s=3600.0,
            batch_predict=batch_predict,
        ),
        clock=lambda: sim_now[0],
        node="bench",
    )
    submit_ms: list[float] = []
    down = {m for m, tl in timelines.items() if _dead_at(tl, sim_start)}
    if down:
        manager.replace(sorted(down), reason="node_down")
    created = 0
    job_ids: list[str] = []
    replacements = 0
    t = sim_start
    while t < sim_end:
        stats = manager.stats()["states"]
        inflight = sum(
            n for state, n in stats.items()
            if state in ("pending", "placed", "running")
        )
        while inflight < target_inflight and created < max_jobs:
            job_id = f"job-{created:03d}"
            total = job_hours[created % len(job_hours)] * 3600.0
            t0 = time.perf_counter()
            manager.submit(job_id, total_cpu_seconds=total, cpu=job_cpu)
            submit_ms.append((time.perf_counter() - t0) * 1e3)
            job_ids.append(job_id)
            created += 1
            inflight += 1
        t += tick_s
        sim_now[0] = t
        dead_now = {m for m, tl in timelines.items() if _dead_at(tl, t)}
        died = sorted(dead_now - down)
        recovered = sorted(down - dead_now)
        if recovered:
            manager.replace(recovered, restore=True)
        if died:
            replacements += manager.replace(died, reason="node_down")["replaced"]
        down = dead_now
        manager.refresh(t)
    final = [manager.status(job_id) for job_id in job_ids]
    completed = [r for r in final if r["state"] == STATE_COMPLETED]
    useful = sum(
        r["total_cpu_seconds"] if r["state"] == STATE_COMPLETED
        else r["progress_seconds"]
        for r in final
    )
    wasted = sum(r["wasted_cpu_seconds"] for r in final)
    flaky_attempts = sum(
        1
        for r in final
        for a in r["attempts"]
        if a["machine"].startswith("srv-")
    )
    manager.close()
    # Deterministic transcript of every record (the sim clock stamps all
    # timestamps), so two arms fed the same script can be compared for
    # byte-identical placement decisions.
    decisions = json.dumps(final, sort_keys=True)
    return {
        "decisions": decisions,
        "created": created,
        "completed": len(completed),
        "useful_cpu_s": useful,
        "wasted_cpu_s": wasted,
        "useful_work_rate": useful / (sim_end - sim_start),
        "replacements": replacements,
        "flaky_attempts": flaky_attempts,
        "place_p50_ms": _pct(submit_ms, 0.50),
        "place_p99_ms": _pct(submit_ms, 0.99),
    }


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the SCHED predictive-vs-blind placement experiment."""
    # Held-out days must be weekdays (day 0 is a Monday): a weekend
    # replay sees empty labs, TR ~ 1 everywhere, and nothing to choose.
    # A full week of replay: the TR edge per placement is modest (~10%
    # better survival odds), so the strict predictive-beats-blind margin
    # needs enough churn events to average over — 3 held-out days is
    # seed-lottery territory, 7 wins on every seed tried.
    if scale == "quick":
        n_steady, n_flaky, warm_days, total_days = 3, 3, 7, 14
        period, tick_s = 300.0, 900.0
        # 6 steady-cohort slots: the load must leave the scheduler a
        # real choice — at 8+ in flight, capacity forces both arms onto
        # the flaky hosts and the policies converge
        target_inflight, max_jobs = 6, 700
        job_hours = (2.0, 3.0, 4.0)
    else:
        n_steady, n_flaky, warm_days, total_days = 4, 4, 7, 16
        period, tick_s = 120.0, 600.0
        target_inflight, max_jobs = 8, 1200
        job_hours = (2.0, 4.0, 6.0, 8.0)

    steady = synthesize_testbed(
        n_steady, n_days=total_days, sample_period=period, seed=seed,
        profile=student_lab(), id_prefix="lab",
    )
    flaky = synthesize_testbed(
        n_flaky, n_days=total_days, sample_period=period, seed=seed + 1,
        profile=server_room(), id_prefix="srv",
    )
    traces = list(steady) + list(flaky)

    service = AvailabilityService()
    for trace in traces:
        service.register(trace.slice_days(0, warm_days))

    # Churn script: failure timelines from the *held-out* days of the
    # same traces the model was trained on, shared by both arms.
    classifier = service.classifier
    timelines = {
        t.machine_id: _failure_timeline(t, classifier) for t in traces
    }
    sim_start = warm_days * 86400.0
    sim_end = total_days * 86400.0

    job_cpu = 0.5  # two guest jobs fit per machine

    result = ExperimentResult(
        experiment_id="SCHED",
        description="availability-aware placement vs TR-blind least-loaded",
    )
    table = ResultTable(
        title="SCHED useful work and waste under trace-driven churn",
        columns=[
            "arm", "jobs", "completed", "useful_cpu_s", "wasted_cpu_s",
            "useful_rate", "replacements", "flaky_attempts",
            "place_p50_ms", "place_p99_ms",
        ],
    )
    arms: dict[str, dict[str, float]] = {}
    for name, predictive in (("predictive", True), ("blind", False)):
        arms[name] = _run_arm(
            predictive=predictive,
            service=service,
            timelines=timelines,
            job_hours=job_hours,
            target_inflight=target_inflight,
            max_jobs=max_jobs,
            sim_start=sim_start,
            sim_end=sim_end,
            tick_s=tick_s,
            job_cpu=job_cpu,
        )
        a = arms[name]
        table.add(
            name, a["created"], a["completed"],
            round(a["useful_cpu_s"], 1), round(a["wasted_cpu_s"], 1),
            round(a["useful_work_rate"], 4), a["replacements"],
            a["flaky_attempts"],
            round(a["place_p50_ms"], 2), round(a["place_p99_ms"], 2),
        )
    result.tables.append(table)

    # Batched-vs-scalar TR identity: the predictive arm re-run with the
    # fleet batch path disabled must place every job on the same machine
    # at the same time for the same reason — the replay transcript (sim
    # clock timestamps included) is compared byte-for-byte.
    scalar_arm = _run_arm(
        predictive=True,
        batch_predict=False,
        service=service,
        timelines=timelines,
        job_hours=job_hours,
        target_inflight=target_inflight,
        max_jobs=max_jobs,
        sim_start=sim_start,
        sim_end=sim_end,
        tick_s=tick_s,
        job_cpu=job_cpu,
    )
    assert scalar_arm["decisions"] == arms["predictive"]["decisions"], (
        "batched TR placement diverged from the scalar reference path"
    )
    result.notes["batch_scalar_placements_identical"] = True

    pred, blind = arms["predictive"], arms["blind"]
    result.notes["useful_rate_predictive"] = round(pred["useful_work_rate"], 4)
    result.notes["useful_rate_blind"] = round(blind["useful_work_rate"], 4)
    result.notes["useful_rate_ratio"] = round(
        pred["useful_work_rate"] / max(blind["useful_work_rate"], 1e-9), 3
    )
    result.notes["wasted_predictive_cpu_s"] = round(pred["wasted_cpu_s"], 1)
    result.notes["wasted_blind_cpu_s"] = round(blind["wasted_cpu_s"], 1)
    result.notes["predictive_beats_blind"] = bool(
        pred["useful_work_rate"] > blind["useful_work_rate"]
        and pred["wasted_cpu_s"] < blind["wasted_cpu_s"]
    )

    # Perf-trajectory snapshot (BENCH_sched.json via `--bench-out`).
    # Placement p99 is gated lower-is-better as usual; useful-work
    # throughput is gated with the ':higher' suffix — a drop beyond the
    # relative threshold fails the build.
    result.bench = {
        "placement_p50_ms": pred["place_p50_ms"],
        "placement_p99_ms": pred["place_p99_ms"],
        "useful_work_rate": pred["useful_work_rate"],
        "wasted_cpu_seconds": pred["wasted_cpu_s"],
        "blind_useful_work_rate": blind["useful_work_rate"],
        "blind_wasted_cpu_seconds": blind["wasted_cpu_s"],
        "gate_keys": ["placement_p99_ms", "useful_work_rate:higher"],
    }
    return result
