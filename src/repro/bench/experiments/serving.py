"""SERVING — serving-tier throughput, coalescing and load-shedding.

A closed-loop load generator drives a real :class:`ServeServer` (TCP,
JSON lines) end to end with thread-per-connection clients and reports,
from the obs histograms, what the paper's State Manager would face in
deployment:

* **coalescing** — a burst of identical cold ``predict`` queries is
  answered with one computation (duplicate concurrent queries share the
  primary's kernel estimation);
* **throughput vs. offered load** — requests/second and p50/p99 latency
  as the number of closed-loop clients grows;
* **load shedding** — against a deliberately tiny admission queue, a
  cold burst returns 503-style ``shed`` responses quickly while the
  server stays live (health round-trip succeeds during and after).
"""

from __future__ import annotations

import threading
import time

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.estimator import EstimatorConfig
from repro.obs.metrics import MetricsRegistry, scoped_registry
from repro.obs.tracing import TraceContext, scoped_recorder, use_context
from repro.obs.traceview import build_traces, summarize
from repro.serve.client import ServeClient
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


class _ServerThread:
    """A ServeServer on its own event loop thread (bench plumbing)."""

    def __init__(self, service: AvailabilityService, config: DispatchConfig) -> None:
        import asyncio

        self._loop = asyncio.new_event_loop()
        self.server = ServeServer(service, port=0, config=config)
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="serving-bench-loop", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self._loop).result(10)

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        import asyncio

        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


def _closed_loop(port: int, queries: list[dict], out: dict, lock: threading.Lock) -> None:
    """One client: issue every query back-to-back, tally statuses."""
    ok = shed = other = 0
    with ServeClient(port=port) as client:
        for params in queries:
            resp = client.request("predict", params)
            if resp.ok:
                ok += 1
            elif resp.backpressure:
                shed += 1
            else:
                other += 1
    with lock:
        out["ok"] = out.get("ok", 0) + ok
        out["shed"] = out.get("shed", 0) + shed
        out["other"] = out.get("other", 0) + other


def _fanout(port: int, per_client_queries: list[list[dict]]) -> dict:
    """Run one closed-loop wave, one thread per client."""
    tally: dict = {}
    lock = threading.Lock()
    threads = [
        threading.Thread(target=_closed_loop, args=(port, qs, tally, lock))
        for qs in per_client_queries
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return tally


def _latency_quantiles(registry: MetricsRegistry, op: str) -> tuple[float, float, int]:
    """(p50_ms, p99_ms, count) of one op from the obs histogram."""
    hist = registry.get("serve_request_latency_seconds")
    if hist is None:
        return float("nan"), float("nan"), 0
    child = hist.labels(op=op)
    return child.quantile(0.5) * 1e3, child.quantile(0.99) * 1e3, child.count


def _counter(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    return 0.0 if metric is None else metric.value


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the SERVING load-generator experiment."""
    if scale == "quick":
        n_machines, n_days, period = 3, 10, 60.0
        burst_clients, load_levels, reqs_per_client = 8, (1, 2, 4, 8), 40
    else:
        n_machines, n_days, period = 8, 28, 30.0
        burst_clients, load_levels, reqs_per_client = 16, (1, 2, 4, 8, 16, 32), 100

    testbed = synthesize_testbed(
        n_machines, n_days=n_days, sample_period=period, seed=seed
    )
    machines = testbed.machine_ids

    def predict_params(machine: str, start_hour: float, hours: float = 2.0) -> dict:
        return {
            "machine": machine,
            "start_hour": start_hour,
            "hours": hours,
            "day_type": "weekday",
        }

    result = ExperimentResult(
        experiment_id="SERVING",
        description="serving-tier throughput, coalescing and load-shedding",
    )

    # --- phase 1: coalescing on a cold cache --------------------------- #
    # Every client asks the *same* question at the same time; only the
    # primary should pay the kernel estimation.
    def fresh_service() -> AvailabilityService:
        svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=10))
        for trace in testbed:
            svc.register(trace)
        return svc

    coalesce_tbl = ResultTable(
        title="SERVING coalescing (identical cold burst)",
        columns=["clients", "ok", "coalesced", "computed", "days_classified"],
    )
    with scoped_registry() as reg:
        srv = _ServerThread(
            fresh_service(), DispatchConfig(max_workers=2, queue_depth=256)
        )
        try:
            same = [
                [predict_params(machines[0], 9.0)] for _ in range(burst_clients)
            ]
            tally = _fanout(srv.port, same)
        finally:
            srv.stop()
        coalesced = _counter(reg, "serve_coalesced_requests_total")
        classified = _counter(reg, "incremental_days_classified_total")
        coalesce_tbl.add(
            burst_clients,
            tally.get("ok", 0),
            int(coalesced),
            burst_clients - int(coalesced),
            int(classified),
        )
    result.tables.append(coalesce_tbl)
    result.notes["coalesced_requests"] = coalesced
    result.notes["coalescing_demonstrated"] = coalesced > 0

    # --- phase 2: throughput / latency vs offered load ----------------- #
    load_tbl = ResultTable(
        title="SERVING throughput vs offered load",
        columns=[
            "clients", "requests", "wall_s", "throughput_rps",
            "p50_ms", "p99_ms", "shed",
        ],
    )
    service = fresh_service()
    # Distinct windows per request stream; reused across levels so the
    # predictor cache is warm after the first level (steady state).
    start_hours = [6.0 + 0.5 * i for i in range(reqs_per_client)]
    srv = _ServerThread(service, DispatchConfig(max_workers=4, queue_depth=256))
    try:
        for n_clients in load_levels:
            with scoped_registry() as reg:
                waves = [
                    [
                        predict_params(machines[(c + i) % len(machines)], h)
                        for i, h in enumerate(start_hours)
                    ]
                    for c in range(n_clients)
                ]
                t0 = time.perf_counter()
                tally = _fanout(srv.port, waves)
                wall = time.perf_counter() - t0
                p50, p99, count = _latency_quantiles(reg, "predict")
                load_tbl.add(
                    n_clients,
                    n_clients * reqs_per_client,
                    wall,
                    (tally.get("ok", 0) + tally.get("shed", 0)) / wall,
                    p50,
                    p99,
                    tally.get("shed", 0),
                )
    finally:
        srv.stop()
    result.tables.append(load_tbl)
    result.notes["peak_throughput_rps"] = max(load_tbl.column("throughput_rps"))
    result.notes["p99_ms_at_peak"] = load_tbl.rows[-1][5]

    # --- phase 3: load shedding under a tiny admission queue ----------- #
    shed_tbl = ResultTable(
        title="SERVING load shedding (queue_depth=2, cold distinct burst)",
        columns=["clients", "ok", "shed", "health_ok_during", "health_ok_after"],
    )
    with scoped_registry() as reg:
        srv = _ServerThread(
            fresh_service(),
            DispatchConfig(max_workers=1, queue_depth=2),
        )
        try:
            # Distinct cold windows: every request is real work, so the
            # single worker falls behind and admission control trips.
            waves = [
                [predict_params(machines[c % len(machines)], 6.0 + 0.25 * i, 3.0)
                 for i in range(10)]
                for c in range(burst_clients)
            ]
            health_during: dict = {}

            def probe() -> None:
                with ServeClient(port=srv.port) as client:
                    health_during["ok"] = client.health()["status"] == "ok"

            prober = threading.Thread(target=probe)
            prober.start()
            tally = _fanout(srv.port, waves)
            prober.join()
            with ServeClient(port=srv.port) as client:
                health_after = client.health()["status"] == "ok"
        finally:
            srv.stop()
        shed_total = _counter(reg, "serve_shed_total")
        shed_tbl.add(
            burst_clients,
            tally.get("ok", 0),
            tally.get("shed", 0),
            health_during.get("ok", False),
            health_after,
        )
    result.tables.append(shed_tbl)
    result.notes["shed_responses"] = shed_total
    result.notes["shedding_demonstrated"] = shed_total > 0
    result.notes["server_stayed_live"] = bool(health_after)

    # --- phase 4: traced wave (per-tier breakdown) --------------------- #
    # The same warm service again, one closed-loop client, every request
    # carrying a fresh root context.  Server and client share this
    # process, so the scoped recorder catches both sides of each trace;
    # the reconstructed trees give the per-tier latency breakdown the
    # perf snapshot persists.  Phase 2 ran with tracing off, so its p99
    # next to this phase's is the tracing-overhead comparison.
    trace_tbl = ResultTable(
        title="SERVING traced wave (per-tier breakdown)",
        columns=["traces", "spans", "trace_p50_ms", "trace_p99_ms"],
    )
    with scoped_recorder() as rec:
        srv = _ServerThread(service, DispatchConfig(max_workers=4, queue_depth=256))
        try:
            with ServeClient(port=srv.port) as client:
                for i, h in enumerate(start_hours):
                    with use_context(TraceContext.new_root()):
                        client.request(
                            "predict", predict_params(machines[i % len(machines)], h)
                        )
        finally:
            srv.stop()
        trees = build_traces(rec.spans())
    summ = summarize(trees)
    trace_tbl.add(summ.n_traces, summ.n_spans, summ.trace_p50_ms, summ.trace_p99_ms)
    result.tables.append(trace_tbl)
    result.notes["traced_requests"] = summ.n_traces
    result.notes["traced_p99_ms"] = summ.trace_p99_ms

    # Perf-trajectory snapshot (BENCH_serving.json via `--bench-out`).
    # Only the untraced steady-state p99 is gated: the traced wave is a
    # single serial client, too few samples to hold across commits.
    result.bench = {
        "predict_p50_ms": load_tbl.rows[-1][4],
        "predict_p99_ms": load_tbl.rows[-1][5],
        "throughput_rps": result.notes["peak_throughput_rps"],
        "coalesced_requests": int(coalesced),
        "traced_trace_p50_ms": summ.trace_p50_ms,
        "traced_trace_p99_ms": summ.trace_p99_ms,
        **{
            f"tier_{tier}_p50_ms": ms
            for tier, ms in summ.tier_breakdown_ms().items()
        },
        "gate_keys": ["predict_p99_ms"],
    }
    return result
