"""SIZE — job sizing from TR profiles (extension, scheduler-facing).

A scheduler rarely asks "what is the TR of this fixed window?" — it asks
the inverse: "how long a job can I start *now* and still meet my success
target?".  The TR-profile API answers that in one solve per start hour
(:func:`repro.core.smp.temporal_reliability_profile`): this experiment
sweeps the start hours of a weekday and reports, per machine, the
longest placement with TR >= 0.9 / 0.8 / 0.5.

Expected shape on a student lab: night hours admit long jobs, working
hours only short ones — the quantitative version of the quickstart
example's closing advice.
"""

from __future__ import annotations

import numpy as np

from repro.bench.ascii_plot import Series, line_chart
from repro.bench.data import evaluation_data
from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.predictor import TemporalReliabilityPredictor, max_reliable_horizon
from repro.core.windows import ClockWindow, DayType

__all__ = ["run"]

THRESHOLDS = (0.9, 0.8, 0.5)


def run(
    scale: str = "quick",
    *,
    probe_hours: float = 12.0,
    start_hours: tuple[int, ...] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run the job-sizing sweep."""
    data = evaluation_data(scale, seed=seed)
    if start_hours is None:
        start_hours = tuple(range(0, 24, 2)) if scale == "quick" else tuple(range(24))
    table = ResultTable(
        title="SIZE mean reliable job length (h) by start hour (weekdays)",
        columns=["start_hour"] + [f"TR>={th:g}" for th in THRESHOLDS],
    )
    per_threshold: dict[float, list[float]] = {th: [] for th in THRESHOLDS}
    for h in start_hours:
        # Windows may cross midnight; history days whose window would run
        # past the trace end are simply ineligible (at most the last day).
        cw = ClockWindow.from_hours(h, probe_hours)
        horizons = {th: [] for th in THRESHOLDS}
        for mid in data.machine_ids:
            predictor = TemporalReliabilityPredictor(
                data.train[mid], estimator_config=data.estimator_config
            )
            profile, step = predictor.predict_profile(cw, DayType.WEEKDAY)
            for th in THRESHOLDS:
                horizons[th].append(max_reliable_horizon(profile, step, th) / 3600.0)
        row = [h]
        for th in THRESHOLDS:
            mean_h = float(np.mean(horizons[th]))
            row.append(mean_h)
            per_threshold[th].append(mean_h)
        table.add(*row)

    result = ExperimentResult(
        experiment_id="SIZE",
        description="reliable job length by start hour, from TR profiles",
        tables=[table],
    )
    result.charts.append(
        line_chart(
            [
                Series(f"TR>={th:g}", list(start_hours), per_threshold[th])
                for th in THRESHOLDS
            ],
            title="SIZE: how long a job fits, by start hour",
            xlabel="start hour",
            ylabel="hours",
        )
    )
    hours = list(start_hours)
    strict = per_threshold[0.9]
    night = np.mean([v for h, v in zip(hours, strict) if h <= 4])
    midday = np.mean([v for h, v in zip(hours, strict) if 10 <= h <= 16])
    result.notes["night_mean_hours_tr90"] = float(night)
    result.notes["midday_mean_hours_tr90"] = float(midday)
    result.notes["night_admits_longer_jobs"] = bool(night > midday)
    loose = per_threshold[0.5]
    result.notes["thresholds_monotone"] = bool(
        all(a <= b + 1e-9 for a, b in zip(strict, loose))
    )
    return result
