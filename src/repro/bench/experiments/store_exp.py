"""STORE — durable trace-store ingest, recovery and warm-start costs.

Benchmarks the write-ahead segment log that makes the serving tier's
registry crash-recoverable:

* **ingest throughput vs fsync policy** — streaming append of monitor
  chunks under ``always`` (fsync per record), ``interval`` (bounded
  loss) and ``never`` (OS page cache), in samples/second;
* **recovery time vs log length** — reopen cost as the WAL grows, and
  again after compaction folds the segments into one NPZ snapshot (the
  paper's motivation for snapshots: replay only the suffix);
* **warm-start vs cold load** — building an :class:`AvailabilityService`
  from a recovered store versus re-registering a traceset from plain
  NPZ files.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.harness import ExperimentResult, ResultTable
from repro.obs.metrics import scoped_registry
from repro.service import AvailabilityService
from repro.store import StoreConfig, TraceStore
from repro.traces.io import load_traceset, save_traceset
from repro.traces.trace import MachineTrace
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def _chunks(trace: MachineTrace, chunk_samples: int) -> list[MachineTrace]:
    """Split one trace into monitor-sized append chunks."""
    out = []
    for lo in range(0, trace.n_samples, chunk_samples):
        hi = min(lo + chunk_samples, trace.n_samples)
        out.append(
            MachineTrace(
                machine_id=trace.machine_id,
                start_time=trace.start_time + lo * trace.sample_period,
                sample_period=trace.sample_period,
                load=trace.load[lo:hi],
                free_mem_mb=trace.free_mem_mb[lo:hi],
                up=trace.up[lo:hi],
            )
        )
    return out


def _ingest(root: Path, policy: str, chunks_by_machine: dict) -> tuple[float, int]:
    """Append every chunk through one store; (wall_s, samples)."""
    total = 0
    t0 = time.perf_counter()
    with TraceStore(root, StoreConfig(fsync=policy)) as store:
        for chunks in chunks_by_machine.values():
            for chunk in chunks:
                total += store.append(chunk.machine_id, chunk).appended
    return time.perf_counter() - t0, total


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the STORE durability-cost experiment."""
    if scale == "quick":
        n_machines, n_days, period, chunk_samples = 3, 7, 60.0, 200
        log_lengths = (5, 20, 50)
    else:
        n_machines, n_days, period, chunk_samples = 8, 28, 30.0, 500
        log_lengths = (10, 50, 200, 500)

    testbed = synthesize_testbed(
        n_machines, n_days=n_days, sample_period=period, seed=seed
    )
    chunks_by_machine = {t.machine_id: _chunks(t, chunk_samples) for t in testbed}
    total_samples = sum(t.n_samples for t in testbed)

    result = ExperimentResult(
        experiment_id="STORE",
        description="trace-store ingest, recovery and warm-start costs",
    )

    # --- phase 1: ingest throughput vs fsync policy -------------------- #
    ingest_tbl = ResultTable(
        title="STORE ingest throughput vs fsync policy",
        columns=["fsync", "samples", "wall_s", "samples_per_s"],
    )
    fsync_p99_ms = float("nan")
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        for policy in ("always", "interval:0.5", "never"):
            with scoped_registry() as reg:
                wall, appended = _ingest(
                    Path(tmp) / policy.replace(":", "-"), policy, chunks_by_machine
                )
                if policy == "always":
                    hist = reg.get("store_fsync_seconds")
                    if hist is not None:
                        fsync_p99_ms = hist.quantile(0.99) * 1e3
            ingest_tbl.add(policy, appended, wall, appended / max(wall, 1e-9))
    result.tables.append(ingest_tbl)
    rates = ingest_tbl.column("samples_per_s")
    result.notes["fsync_always_slowdown_x"] = rates[-1] / max(rates[0], 1e-9)
    result.notes["fsync_p99_ms"] = fsync_p99_ms

    # --- phase 2: recovery time vs log length, before/after compaction - #
    recovery_tbl = ResultTable(
        title="STORE recovery time vs WAL length",
        columns=[
            "chunks", "samples", "wal_recover_ms", "compacted_recover_ms",
            "segments_removed",
        ],
    )
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        one = testbed[testbed.machine_ids[0]]
        for i, n_chunks in enumerate(log_lengths):
            root = Path(tmp) / f"len{i}"
            chunks = _chunks(one, chunk_samples)[:n_chunks]
            with TraceStore(root, StoreConfig(fsync="never")) as store:
                for chunk in chunks:
                    store.append(chunk.machine_id, chunk)
            with TraceStore(root) as store:
                wal_ms = store.last_recovery.duration_s * 1e3
                report = store.compact()
            with TraceStore(root) as store:
                compacted_ms = store.last_recovery.duration_s * 1e3
                n_recovered = store.n_samples(one.machine_id)
            assert n_recovered == sum(c.n_samples for c in chunks)
            recovery_tbl.add(
                n_chunks,
                n_recovered,
                wal_ms,
                compacted_ms,
                report.segments_removed,
            )
    result.tables.append(recovery_tbl)
    result.notes["compaction_speedup_x"] = (
        recovery_tbl.rows[-1][2] / max(recovery_tbl.rows[-1][3], 1e-9)
    )

    # --- phase 3: warm-start vs cold traceset load --------------------- #
    warm_tbl = ResultTable(
        title="STORE warm-start vs cold load",
        columns=["path", "machines", "wall_s"],
    )
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        traces_dir = Path(tmp) / "traces"
        save_traceset(testbed, traces_dir)
        store_dir = Path(tmp) / "store"
        with TraceStore(store_dir, StoreConfig(fsync="never")) as store:
            for trace in testbed:
                store.replace(trace)

        t0 = time.perf_counter()
        svc_cold = AvailabilityService()
        for trace in load_traceset(traces_dir):
            svc_cold.register(trace)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        with TraceStore(store_dir) as store:
            svc_warm = AvailabilityService.warm_start(store)
        warm_s = time.perf_counter() - t0

        assert sorted(svc_warm.machine_ids) == sorted(svc_cold.machine_ids)
        warm_tbl.add("cold (npz traceset)", len(svc_cold), cold_s)
        warm_tbl.add("warm (trace store)", len(svc_warm), warm_s)
    result.tables.append(warm_tbl)
    result.notes["total_samples"] = total_samples
    result.notes["warm_start_s"] = warm_s
    result.notes["cold_load_s"] = cold_s

    # Perf-trajectory snapshot (BENCH_store.json via `--bench-out`).
    # fsync p99 is the gated number; the --min-abs-ms floor in
    # tools/bench_gate.py absorbs sub-millisecond disk jitter.
    result.bench = {
        "ingest_always_samples_per_s": ingest_tbl.rows[0][3],
        "ingest_never_samples_per_s": ingest_tbl.rows[-1][3],
        "fsync_p99_ms": fsync_p99_ms,
        "wal_recovery_ms": recovery_tbl.rows[-1][2],
        "compacted_recovery_ms": recovery_tbl.rows[-1][3],
        "warm_start_ms": warm_s * 1e3,
        "gate_keys": ["fsync_p99_ms"],
    }
    return result
