"""TRACE — calibration of the synthetic testbed (paper Section 6.1).

The paper's trace statistics, against which the synthesizer is
calibrated: ~1800 machine-days over 3 months; 405-453 unavailability
occurrences per machine; diverse workloads with recurring daily
patterns per day type.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, ResultTable
from repro.core.windows import DayType
from repro.traces.stats import daily_pattern_correlation, summarize_trace
from repro.traces.synthesis import synthesize_testbed

__all__ = ["run"]


def run(scale: str = "quick", *, seed: int = 0) -> ExperimentResult:
    """Run the TRACE calibration experiment."""
    if scale == "quick":
        n_machines, n_days, period = 3, 90, 30.0
    else:
        n_machines, n_days, period = 8, 90, 6.0
    traces = synthesize_testbed(
        n_machines, n_days=n_days, sample_period=period, seed=seed, machine_jitter=0.10
    )
    table = ResultTable(
        title="TRACE per-machine statistics (90 days)",
        columns=["machine", "events", "S3", "S4", "S5", "availability", "mean_load"],
    )
    counts = []
    for trace in traces:
        s = summarize_trace(trace)
        counts.append(s.n_events)
        table.add(
            s.machine_id, s.n_events, s.n_s3, s.n_s4, s.n_s5, s.availability, s.mean_load
        )

    # Day-to-day pattern comparability (the SMP's premise).
    first = next(iter(traces))
    wd = first.days(DayType.WEEKDAY)
    corr_wd = np.nanmean(
        [daily_pattern_correlation(first, a, b) for a, b in zip(wd, wd[1:])]
    )
    result = ExperimentResult(
        experiment_id="TRACE",
        description="synthetic testbed calibration vs paper Section 6.1",
        tables=[table],
    )
    result.notes["mean_events_per_machine"] = float(np.mean(counts))
    result.notes["paper_band"] = "405-453"
    result.notes["in_order_of_magnitude"] = bool(200 <= np.mean(counts) <= 700)
    result.notes["weekday_pattern_correlation"] = float(corr_wd)
    return result
