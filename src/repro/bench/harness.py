"""Experiment harness: result tables and experiment metadata.

Every experiment module in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` — one or more :class:`ResultTable` objects
plus free-form notes — which the benchmarks print and the CLI renders.
The tables carry exactly the rows/series the paper's figures report, so
a run is directly comparable against the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.obs.events import get_event_log
from repro.obs.instruments import instrument

__all__ = ["ResultTable", "ExperimentResult", "run_instrumented"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment rows."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Render as aligned monospace text."""
        cells = [[str(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        for j, row in enumerate(cells):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> Path:
        """Write the table as CSV."""
        import csv

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path


@dataclass
class ExperimentResult:
    """Output of one experiment: tables, terminal charts, headline notes."""

    experiment_id: str
    description: str
    tables: list[ResultTable] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    notes: dict[str, Any] = field(default_factory=dict)
    #: Flat scalar metrics for the persisted perf trajectory
    #: (``BENCH_<id>.json`` via :mod:`repro.bench.snapshots`): p50/p99
    #: latency, throughput, recovery time, per-tier breakdowns.  Keys
    #: ending in ``p99_ms`` (and any listed in ``gate_keys``) are what
    #: ``tools/bench_gate.py`` compares across commits.
    bench: dict[str, Any] = field(default_factory=dict)

    def table(self, title: str) -> ResultTable:
        """Look up a table by title."""
        for t in self.tables:
            if t.title == title:
                return t
        raise KeyError(f"no table titled {title!r} in {self.experiment_id}")

    def format(self) -> str:
        """Render the full result as text."""
        parts = [f"=== {self.experiment_id}: {self.description} ==="]
        for t in self.tables:
            parts.append(t.format())
        for chart in self.charts:
            parts.append(chart)
        if self.notes:
            parts.append("notes:")
            for k, v in self.notes.items():
                parts.append(f"  {k}: {_fmt(v)}")
        return "\n\n".join(parts)

    def print(self) -> None:
        """Print the result to stdout."""
        print(self.format(), flush=True)


def run_instrumented(
    name: str, module: Any, scale: str = "quick", *, seed: int = 0
) -> ExperimentResult:
    """Run one experiment module, publishing telemetry about the run.

    Wall time lands in ``experiment_wall_seconds{experiment=...}``, the
    produced table-row count in ``experiment_result_rows``, and the
    outcome in ``experiment_runs_total{status=ok|error}``.  A failing
    experiment additionally emits an ``experiment_failed`` event before
    the exception propagates to the caller (the CLI turns it into a
    non-zero exit).
    """
    t0 = time.perf_counter()
    try:
        result = module.run(scale, seed=seed)
    except Exception as exc:
        instrument("experiment_runs_total").labels(experiment=name, status="error").inc()
        get_event_log().emit(
            "experiment_failed",
            severity="error",
            experiment=name,
            scale=scale,
            error=f"{type(exc).__name__}: {exc}",
        )
        raise
    elapsed = time.perf_counter() - t0
    instrument("experiment_runs_total").labels(experiment=name, status="ok").inc()
    instrument("experiment_wall_seconds").labels(experiment=name).observe(elapsed)
    instrument("experiment_result_rows").labels(experiment=name).set(
        sum(len(t.rows) for t in result.tables)
    )
    return result
