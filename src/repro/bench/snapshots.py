"""Persisted perf trajectory: machine-readable bench snapshots.

Each bench run can drop a ``BENCH_<experiment>.json`` per experiment —
a flat record of the headline performance numbers (p50/p99 latency,
throughput, recovery time, per-tier breakdowns from traces).  Committed
snapshots under ``benchmarks/baselines/`` form the repo's performance
trajectory; ``tools/bench_gate.py`` compares a fresh run against the
committed baseline in CI and fails the build on a p99 regression.

Snapshot schema (version 1)::

    {
      "snapshot_version": 1,
      "experiment": "serving",
      "scale": "quick",
      "metrics": {"predict_p50_ms": 1.2, "predict_p99_ms": 4.0, ...},
      "gate_keys": ["predict_p99_ms", ...]
    }

``gate_keys`` names the metrics the gate holds across commits; metrics
not listed are context (throughput, counts, tier breakdowns) that may
drift freely.  By default every key ending in ``p99_ms`` is gated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "SNAPSHOT_VERSION",
    "bench_snapshot_path",
    "default_gate_keys",
    "read_bench_snapshot",
    "write_bench_snapshot",
]

SNAPSHOT_VERSION = 1


def bench_snapshot_path(directory: str | Path, experiment: str) -> Path:
    """The conventional snapshot filename for one experiment."""
    return Path(directory) / f"BENCH_{experiment}.json"


def default_gate_keys(metrics: Mapping[str, Any]) -> list[str]:
    """The metrics gated when the experiment does not name its own:
    every finite scalar whose key ends in ``p99_ms``."""
    return sorted(
        key for key, value in metrics.items()
        if key.endswith("p99_ms") and isinstance(value, (int, float))
    )


def write_bench_snapshot(
    directory: str | Path,
    experiment: str,
    metrics: Mapping[str, Any],
    *,
    scale: str = "quick",
    gate_keys: list[str] | None = None,
) -> Path:
    """Write one experiment's ``BENCH_<experiment>.json``."""
    path = bench_snapshot_path(directory, experiment)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = {
        "snapshot_version": SNAPSHOT_VERSION,
        "experiment": experiment,
        "scale": scale,
        "metrics": dict(metrics),
        "gate_keys": (
            sorted(gate_keys) if gate_keys is not None else default_gate_keys(metrics)
        ),
    }
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_snapshot(path: str | Path) -> dict[str, Any]:
    """Read and validate one snapshot."""
    obj = json.loads(Path(path).read_text())
    if not isinstance(obj, dict) or "metrics" not in obj:
        raise ValueError(f"{path} is not a bench snapshot (no 'metrics')")
    version = obj.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"{path} has snapshot_version {version!r}, expected {SNAPSHOT_VERSION}"
        )
    obj.setdefault("gate_keys", default_gate_keys(obj["metrics"]))
    return obj
