"""Command-line driver: regenerate any paper table/figure from a terminal.

Usage::

    repro-fgcs list                         # show the experiment registry
    repro-fgcs run fig5                     # one experiment, quick scale
    repro-fgcs run fig7 --scale full        # paper-scale run
    repro-fgcs run all --out results/       # everything, tables to CSV
    repro-fgcs synthesize --machines 8 --days 90 --out traces/
    repro-fgcs predict --trace traces/lab-00.npz --start-hour 8 --hours 5
    repro-fgcs serve --traces traces/ --port 7061
    repro-fgcs query predict --port 7061 --machine lab-00 --start-hour 8 --hours 5
    repro-fgcs store init store/            # create a durable trace store
    repro-fgcs store ingest store/ --traces traces/
    repro-fgcs serve --store store/         # warm-start, persist registrations
    repro-fgcs query extend --port 7061 --trace chunk.npz --retries 3
    repro-fgcs store stat store/            # per-machine WAL/snapshot accounting
    repro-fgcs cluster start --nodes 3 --replicas 2 --data cluster/
    repro-fgcs cluster status --spec cluster/cluster.json
    repro-fgcs query predict --cluster cluster/cluster.json --machine lab-00
    repro-fgcs query health --port-file /tmp/serve-port
    repro-fgcs cluster stop --spec cluster/cluster.json
    repro-fgcs serve --store store/ --audit --audit-dir audit/
    repro-fgcs audit report --port 7061     # Brier/ECE scoreboard + drift
    repro-fgcs audit watch --port 7061 --interval 5
    repro-fgcs audit resolve --journal audit/ --store store/
    repro-fgcs obs --format prometheus      # dump the metrics snapshot
    repro-fgcs serve --trace-out spans.jsonl --metrics-out metrics.json
    repro-fgcs query predict --port 7061 --machine lab-00 --traced
    repro-fgcs trace spans.jsonl .repro-trace.jsonl   # span trees + critical path
    repro-fgcs run serving --bench-out bench/         # BENCH_serving.json
    repro-fgcs serve --store store/ --sched-dir sched/
    repro-fgcs sched submit --port 7061 --job j1 --cpu-seconds 3600
    repro-fgcs sched status --port 7061               # the whole job table
    repro-fgcs sched watch --cluster cluster/cluster.json
    repro-fgcs sched drain lab-00 --port 7061         # checkpoint-migrate away
    repro-fgcs ingest agent --port 7061 --duration 60 # monitor THIS host live
    repro-fgcs ingest agent --port 7061 --simulate-days 14  # synthetic, fast
    repro-fgcs ingest import spot.csv --format preempt --port 7061
    repro-fgcs ingest import fleet.csv --out traces/  # convert offline
    repro-fgcs ingest tail --port 7061 --machine $(hostname) -n 5

(Equivalently: ``python -m repro ...``.)

``run`` and ``predict`` write the process's metrics registry to a JSON
snapshot as they exit (``--metrics-out``, default ``.repro-metrics.json``
in the working directory); ``obs`` renders that snapshot as a human
table or as the Prometheus text exposition format.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["main"]

#: Mirror of repro.obs.export.DEFAULT_SNAPSHOT_PATH, kept literal so
#: building the parser stays import-light.
_DEFAULT_SNAPSHOT = ".repro-metrics.json"

#: Default client-side span export of ``query --traced``.
_DEFAULT_TRACE_PATH = ".repro-trace.jsonl"


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY

    print(f"{'id':<10} description")
    print(f"{'-' * 10} {'-' * 50}")
    for name, module in REGISTRY.items():
        lines = (module.__doc__ or "").strip().splitlines()
        desc = lines[0] if lines else "(no description)"
        print(f"{name:<10} {desc}")
    return 0


def _write_metrics(path: str) -> None:
    """Persist the full instrument catalog (plus recorded values) to disk."""
    from repro.obs import ensure_all_registered, write_snapshot

    ensure_all_registered()
    write_snapshot(path)
    print(f"[metrics snapshot written to {path}]")


def _cmd_run(args: argparse.Namespace) -> int:
    import traceback

    from repro.bench.experiments import REGISTRY
    from repro.bench.harness import run_instrumented

    names = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: all, {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    failed: list[str] = []
    for name in names:
        t0 = time.perf_counter()
        try:
            result = run_instrumented(name, REGISTRY[name], args.scale, seed=args.seed)
        except Exception:
            # run_instrumented already counted the failure and emitted the
            # experiment_failed event; report and keep going so one broken
            # experiment does not hide the others' results.
            print(f"[{name} FAILED]", file=sys.stderr)
            traceback.print_exc()
            failed.append(name)
            continue
        result.print()
        print(f"\n[{name} finished in {time.perf_counter() - t0:.1f} s]\n")
        if args.out:
            out = Path(args.out)
            for i, table in enumerate(result.tables):
                slug = table.title.lower().replace(" ", "_").replace(":", "")[:60]
                table.to_csv(out / f"{name}_{i}_{slug}.csv")
            print(f"[tables written to {out}/]")
        if args.bench_out and result.bench:
            from repro.bench.snapshots import write_bench_snapshot

            bench = dict(result.bench)
            gate_keys = bench.pop("gate_keys", None)
            snap = write_bench_snapshot(
                args.bench_out, name, bench, scale=args.scale, gate_keys=gate_keys
            )
            print(f"[bench snapshot written to {snap}]")
    _write_metrics(args.metrics_out)
    if failed:
        print(f"failed experiment(s): {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.traces.io import save_traceset
    from repro.traces.profiles import PROFILES
    from repro.traces.synthesis import synthesize_testbed

    if args.profile not in PROFILES:
        print(f"unknown profile {args.profile!r}; known: {', '.join(PROFILES)}",
              file=sys.stderr)
        return 2
    testbed = synthesize_testbed(
        args.machines,
        n_days=args.days,
        sample_period=args.period,
        seed=args.seed,
        profile=PROFILES[args.profile](),
    )
    path = save_traceset(testbed, args.out)
    total = sum(t.n_samples for t in testbed)
    print(f"wrote {len(testbed)} machine traces ({total} samples) to {path}/")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core import ClockWindow, DayType, TemporalReliabilityPredictor
    from repro.core.estimator import EstimatorConfig
    from repro.traces.io import load_trace_npz

    trace = load_trace_npz(args.trace)
    predictor = TemporalReliabilityPredictor(
        trace, estimator_config=EstimatorConfig(step_multiple=args.step_multiple)
    )
    window = ClockWindow.from_hours(args.start_hour, args.hours)
    dtype = DayType.WEEKEND if args.weekend else DayType.WEEKDAY
    res = predictor.predict_detailed(window, dtype)
    print(f"machine:    {trace.machine_id} ({trace.n_days} days of history)")
    print(f"window:     {args.start_hour:05.2f}h + {args.hours:g}h on {dtype.value}s")
    print(f"TR:         {res.tr:.4f}")
    print(f"init state: {res.init_state.name} ({res.init_state.describe()})")
    print(
        f"based on:   {res.n_history_days} history days, {res.n_observations} sojourns, "
        f"horizon {res.horizon} x {res.step:g}s"
    )
    print(f"cost:       {res.total_seconds * 1000:.1f} ms "
          f"(estimation {res.estimation_seconds * 1000:.1f} ms)")
    _write_metrics(args.metrics_out)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.dispatch import DispatchConfig
    from repro.serve.server import ServeServer
    from repro.service import AvailabilityService

    if args.trace_out:
        from repro.obs import get_recorder

        get_recorder().open_sink(args.trace_out)
        print(f"[tracing to {args.trace_out}]", flush=True)
    store = None
    if args.store:
        from repro.store import StoreConfig, TraceStore

        store = TraceStore(args.store, StoreConfig(fsync=args.fsync))
        service = AvailabilityService.warm_start(
            store, max_cache_entries=args.cache_entries
        )
        rec = store.last_recovery
        print(
            f"[recovered {rec.machines} machines from {args.store} "
            f"({rec.samples_from_snapshots} snapshot + {rec.samples_replayed} "
            f"replayed samples, {rec.truncated_bytes} torn bytes truncated, "
            f"{rec.duration_s * 1000:.0f} ms)]",
            flush=True,
        )
    else:
        service = AvailabilityService(max_cache_entries=args.cache_entries)
    if args.traces:
        from repro.traces.io import load_traceset

        for trace in load_traceset(args.traces):
            service.register(trace)
        print(f"[loaded {len(service)} machine histories from {args.traces}]",
              flush=True)
    audit = None
    if args.audit or args.audit_dir:
        from repro.audit import AuditConfig, PredictionAudit

        audit = PredictionAudit(
            AuditConfig(
                node_id=args.node_id,
                directory=args.audit_dir,
                fsync=args.fsync,
            ),
            classifier=service.classifier,
            step_multiple=service.config.step_multiple,
        )
        where = f"durable at {args.audit_dir}" if args.audit_dir else "memory-only"
        print(
            f"[audit on ({where}): {audit.journal.n_predictions} predictions "
            f"recovered, {audit.n_pending} pending]",
            flush=True,
        )
    adapt = None
    if args.adapt:
        from repro.adapt import AdaptController

        if audit is None:
            # The adapt tier scores challengers through the audit
            # journal, so --adapt without audit flags implies a
            # memory-only audit.
            from repro.audit import AuditConfig, PredictionAudit

            audit = PredictionAudit(
                AuditConfig(node_id=args.node_id),
                classifier=service.classifier,
                step_multiple=service.config.step_multiple,
            )
            print("[audit on (memory-only, implied by --adapt)]", flush=True)
        adapt = AdaptController(service, audit)
        print("[adapt on: auto retune on per-machine drift alarms]", flush=True)
    from repro.sched import JobManager, SchedConfig

    sched = JobManager(
        service,
        config=SchedConfig(speedup=args.sched_speedup),
        directory=args.sched_dir,
        fsync=args.fsync,
        node=args.node_id,
    )
    if args.sched_dir:
        print(
            f"[scheduler durable at {args.sched_dir}: "
            f"{sched.recovered_jobs} jobs recovered]",
            flush=True,
        )
    config = DispatchConfig(
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms,
        drain_timeout_s=args.drain_timeout,
    )

    async def _serve() -> int:
        server = ServeServer(
            service, host=args.host, port=args.port, config=config, audit=audit,
            sched=sched, adapt=adapt,
        )
        await server.start()
        print(f"[serving on {args.host}:{server.port}]", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{server.port}\n")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        print("[draining...]", flush=True)
        serving.cancel()
        drained = await server.stop()
        print(f"[stopped{'' if drained else ' (drain timed out)'}]", flush=True)
        return 0 if drained else 1

    try:
        return asyncio.run(_serve())
    finally:
        sched.close()  # idempotent; the drain usually got here first
        if audit is not None:
            audit.close()  # idempotent; the drain usually got here first
        if store is not None:
            store.close()
        # Snapshots land after the drain so the final requests' samples
        # (and spans) are included.
        if args.metrics_out:
            _write_metrics(args.metrics_out)
        if args.trace_out:
            from repro.obs import get_recorder

            get_recorder().close()


def _resolve_query_target(args: argparse.Namespace) -> tuple[str, int] | None:
    """(host, port) from --port, --port-file or --cluster (exactly one)."""
    import json as _json

    given = [
        name for name, value in (
            ("--port", args.port),
            ("--port-file", args.port_file),
            ("--cluster", args.cluster),
        ) if value
    ]
    if len(given) != 1:
        print(
            "exactly one of --port, --port-file or --cluster is required"
            + (f" (got {', '.join(given)})" if given else ""),
            file=sys.stderr,
        )
        return None
    if args.port:
        return args.host, args.port
    if args.port_file:
        text = Path(args.port_file).read_text().strip()
        return args.host, int(text)
    spec = _json.loads(Path(args.cluster).read_text())
    router = spec["router"]
    return router["host"], int(router["port"])


def _unreachable_hint(args: argparse.Namespace, host: str, port: int) -> str:
    """An actionable next step when the query target refuses connections."""
    if args.port:
        return (
            f"hint: --port {port} was given explicitly; no server is listening "
            f"there on {host}. Start one with 'repro-fgcs serve --port {port}' "
            "(or 'cluster start'), or read the live port from a file with "
            "--port-file."
        )
    if args.port_file:
        return (
            f"hint: port {port} was read from --port-file {args.port_file}, "
            "which may be stale from an earlier server. Restart the server "
            "with the same --port-file, or pass the live port via --port."
        )
    return (
        f"hint: the router address came from --cluster {args.cluster}, but the "
        "cluster looks down. Check it with 'repro-fgcs cluster status --spec "
        f"{args.cluster}' or restart it with 'repro-fgcs cluster start'."
    )


def _cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient, _trace_params
    from repro.serve.protocol import STATUS_OK

    target = _resolve_query_target(args)
    if target is None:
        return 2
    host, port = target
    params: dict[str, object] = {}
    if args.op in ("predict", "predict_batch", "fleet_scan", "rank",
                   "select", "horizon"):
        params.update(
            start_hour=args.start_hour,
            hours=args.hours,
            day_type="weekend" if args.weekend else "weekday",
        )
    if args.op in ("predict_batch", "fleet_scan") and args.machines:
        params["machines"] = list(args.machines)
    if args.op == "fleet_scan" and args.horizons_hours:
        params["horizons_hours"] = list(args.horizons_hours)
    if args.op in ("predict", "horizon"):
        if not args.machine:
            print(f"--machine is required for op {args.op!r}", file=sys.stderr)
            return 2
        params["machine"] = args.machine
    if args.op == "select":
        params["k"] = args.k
    if args.op == "horizon":
        params["tr_threshold"] = args.tr_threshold
    if args.op in ("register", "extend"):
        if not args.trace:
            print(f"--trace is required for op {args.op!r}", file=sys.stderr)
            return 2
        from repro.traces.io import load_trace_npz

        params.update(_trace_params(load_trace_npz(args.trace)))
    if args.op in ("quality", "adapt_status") and args.machine:
        params["machine"] = args.machine
    trace_ctx = None
    if args.traced or args.trace_out:
        from repro.obs import TraceContext

        trace_ctx = TraceContext.new_root()
    try:
        with ServeClient(
            host, port, timeout=args.connect_timeout, retries=args.retries
        ) as client:
            if trace_ctx is not None:
                from repro.obs import use_context

                with use_context(trace_ctx):
                    response = client.request(
                        args.op, params, deadline_ms=args.deadline_ms
                    )
            else:
                response = client.request(
                    args.op, params, deadline_ms=args.deadline_ms
                )
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return 1
    if trace_ctx is not None:
        from repro.obs import get_recorder

        out = args.trace_out or _DEFAULT_TRACE_PATH
        get_recorder().export(out)
        print(f"[trace {trace_ctx.trace_id}: client spans appended to {out}; "
              "merge with the server's --trace-out file via 'repro-fgcs trace']",
              file=sys.stderr)
    print(_json.dumps(response.to_wire(), indent=2))
    return 0 if response.status == STATUS_OK else 1


def _cmd_cluster_start(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.cluster import ClusterRouter, LocalCluster, RouterConfig

    data_dir = Path(args.data)
    data_dir.mkdir(parents=True, exist_ok=True)
    spec_path = Path(args.spec_file) if args.spec_file else data_dir / "cluster.json"
    if args.trace_out:
        # Router spans go to --trace-out; each backend gets its own sink
        # under DATA/node-*/trace.jsonl.  'repro-fgcs trace' merges them.
        from repro.obs import get_recorder

        get_recorder().open_sink(args.trace_out)
        print(f"[router tracing to {args.trace_out}; "
              f"nodes trace under {data_dir}/node-*/trace.jsonl]", flush=True)
    cluster = LocalCluster(
        data_dir,
        args.nodes,
        host=args.host,
        fsync=args.fsync,
        workers=args.workers,
        queue_depth=args.queue_depth,
        supervise=not args.no_supervise,
        audit=args.audit,
        trace=bool(args.trace_out),
        metrics=bool(args.metrics_out),
        sched=args.sched,
        sched_speedup=args.sched_speedup,
    )
    config = RouterConfig(
        replicas=args.replicas,
        vnodes=args.vnodes,
        probe_interval_s=args.probe_interval,
    )

    async def _run() -> int:
        from repro.serve.client import AsyncServeClient

        router = ClusterRouter(
            cluster.addresses, host=args.host, port=args.port, config=config
        )
        await router.start()
        print(
            f"[cluster router on {args.host}:{router.port}; "
            f"{args.nodes} nodes, R={args.replicas}, "
            f"write quorum {config.write_quorum}]",
            flush=True,
        )
        cluster.write_spec(spec_path, args.host, router.port)
        print(f"[cluster spec written to {spec_path}]", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{router.port}\n")
        if args.traces:
            from repro.traces.io import load_traceset

            client = await AsyncServeClient.connect(
                args.host, router.port, retries=5
            )
            try:
                total = 0
                for trace in load_traceset(args.traces):
                    await client.register(trace)
                    total += trace.n_samples
            finally:
                await client.close()
            print(
                f"[registered {args.traces} through the router "
                f"({total} samples, quorum-replicated)]",
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        serving = asyncio.ensure_future(router.serve_forever())
        await stop.wait()
        print("[stopping cluster...]", flush=True)
        serving.cancel()
        await router.stop()
        return 0

    try:
        cluster.start()
        print(
            f"[{args.nodes} backend nodes up: "
            + ", ".join(f"{nid}@{host}:{port}"
                        for nid, (host, port) in cluster.addresses.items())
            + "]",
            flush=True,
        )
        return asyncio.run(_run())
    finally:
        cluster.stop()
        if args.metrics_out:
            _write_metrics(args.metrics_out)
        if args.trace_out:
            from repro.obs import get_recorder

            get_recorder().close()
        print("[cluster stopped]", flush=True)


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient

    if args.spec:
        spec = _json.loads(Path(args.spec).read_text())
        host, port = spec["router"]["host"], int(spec["router"]["port"])
    elif args.port:
        host, port = args.host, args.port
    else:
        print("either --spec or --port is required", file=sys.stderr)
        return 2
    try:
        with ServeClient(host, port, timeout=args.connect_timeout) as client:
            health = client.health()
    except OSError as exc:
        print(f"router at {host}:{port} is unreachable: {exc}", file=sys.stderr)
        return 1
    ring = health.get("ring", {})
    print(
        f"cluster status: {health['status']} "
        f"({health.get('up_nodes', '?')}/{ring.get('nodes', '?')} nodes up, "
        f"R={ring.get('replicas', '?')}, "
        f"write quorum {ring.get('write_quorum', '?')})"
    )
    header = f"{'node':<12} {'address':<22} {'state':<6} {'machines':>8} {'queue':>6}"
    print(header)
    print("-" * len(header))
    for node_id, st in sorted(health.get("nodes", {}).items()):
        machines = st.get("machines")
        queue = st.get("queue_depth")
        print(
            f"{node_id:<12} {st['address']:<22} {st['state']:<6} "
            f"{'-' if machines is None else machines:>8} "
            f"{'-' if queue is None else queue:>6}"
        )
    return 0 if health["status"] != "down" else 1


def _cmd_cluster_stop(args: argparse.Namespace) -> int:
    import json as _json
    import os
    import signal

    spec = _json.loads(Path(args.spec).read_text())
    pid = int(spec["pid"])
    try:
        os.kill(pid, signal.SIGTERM)
    except ProcessLookupError:
        print(f"cluster process {pid} is already gone")
        return 0
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            print(f"cluster process {pid} stopped")
            return 0
        time.sleep(0.1)
    print(f"cluster process {pid} did not stop within {args.timeout}s",
          file=sys.stderr)
    return 1


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import StoreConfig, TraceStore

    with TraceStore(args.dir, StoreConfig(fsync=args.fsync)) as store:
        rec = store.last_recovery
        if args.store_op == "init":
            print(f"initialised trace store at {args.dir} "
                  f"({rec.machines} machines recovered)")
            return 0
        if args.store_op == "ingest":
            if not args.traces:
                print("--traces is required for 'store ingest'", file=sys.stderr)
                return 2
            from repro.traces.io import load_traceset

            total = 0
            for trace in load_traceset(args.traces):
                store.replace(trace)
                total += trace.n_samples
                print(f"  {trace.machine_id}: {trace.n_samples} samples")
            print(f"ingested {len(store)} machines ({total} samples) into {args.dir}")
            return 0
        if args.store_op == "stat":
            print(
                f"recovery: {rec.machines} machines, "
                f"{rec.samples_from_snapshots} snapshot + "
                f"{rec.samples_replayed} replayed samples "
                f"({rec.records_replayed} records, "
                f"{rec.truncated_bytes} torn bytes truncated) "
                f"in {rec.duration_s * 1000:.1f} ms"
            )
            header = (f"{'machine':<20} {'samples':>10} {'snapshot':>10} "
                      f"{'segments':>8} {'wal bytes':>12} {'snap bytes':>12}")
            print(header)
            print("-" * len(header))
            for st in store.stat():
                print(
                    f"{st.machine_id:<20} {st.n_samples:>10} "
                    f"{st.snapshot_samples:>10} {st.n_segments:>8} "
                    f"{st.wal_bytes:>12} {st.snapshot_bytes:>12}"
                )
            return 0
        if args.store_op == "compact":
            report = store.compact()
            print(
                f"compacted {report.machines} machines: "
                f"{report.segments_removed} segments removed, "
                f"{report.bytes_reclaimed} WAL bytes reclaimed"
            )
            return 0
    print(f"unknown store operation {args.store_op!r}", file=sys.stderr)
    return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    """Reconstruct span trees from exported JSONL and break down latency."""
    import json as _json

    from repro.obs.traceview import (
        build_traces,
        critical_path,
        load_spans,
        render_summary,
        render_tree,
        summarize,
    )

    spans = load_spans(args.inputs)
    if not spans:
        print(f"no spans found in: {', '.join(args.inputs)}", file=sys.stderr)
        return 1
    trees = build_traces(spans)
    if args.trace_id:
        tree = trees.get(args.trace_id)
        if tree is None:
            prefixed = [t for t in trees if t.startswith(args.trace_id)]
            if len(prefixed) == 1:
                tree = trees[prefixed[0]]
            else:
                print(f"trace {args.trace_id!r} not found "
                      f"({len(trees)} traces loaded)", file=sys.stderr)
                return 1
        trees = {tree.trace_id: tree}
    summary = summarize(trees, exemplars=args.exemplars)
    slowest = max(trees.values(), key=lambda t: t.duration_s)
    path = critical_path(slowest)
    if args.json:
        print(_json.dumps({
            "n_traces": summary.n_traces,
            "n_spans": summary.n_spans,
            "trace_p50_ms": summary.trace_p50_ms,
            "trace_p99_ms": summary.trace_p99_ms,
            "by_tier": {k: dict(v) for k, v in summary.by_tier.items()},
            "by_name": {k: dict(v) for k, v in summary.by_name.items()},
            "slowest": [{"trace_id": tid, "ms": ms} for tid, ms in summary.slowest],
            "critical_path": [
                {"name": s.name, "tier": s.tier, "ms": s.duration_s * 1e3}
                for s in path
            ],
        }, indent=2))
        return 0 if path else 1
    print(render_summary(summary))
    print()
    if args.tree or args.trace_id:
        for tree in sorted(trees.values(), key=lambda t: -t.duration_s):
            print(render_tree(tree))
            print()
    print(f"critical path of slowest trace ({slowest.trace_id}):")
    for span in path:
        print(f"  {span.name} ({span.tier})  {span.duration_s * 1e3:.2f} ms")
    if not path:
        print("  (empty)", file=sys.stderr)
        return 1
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import (
        ensure_all_registered,
        read_snapshot,
        render_prometheus,
        render_table,
    )

    path = Path(args.metrics_in)
    if path.exists():
        registry = read_snapshot(path)
    else:
        # No snapshot yet: render the instrument catalog, zero-valued, so
        # dashboards and smoke tests see the full schema either way.
        print(
            f"[no snapshot at {path}; rendering the empty instrument catalog — "
            "run 'repro-fgcs run' or 'repro-fgcs predict' first]",
            file=sys.stderr,
        )
        from repro.obs import MetricsRegistry

        registry = ensure_all_registered(MetricsRegistry())
    render = render_prometheus if args.format == "prometheus" else render_table
    print(render(registry), end="")
    return 0


def _fmt_metric(value: object, spec: str = ".4f") -> str:
    return "-" if value is None else format(value, spec)


def _print_quality(quality: dict) -> None:
    """Human rendering of a ``quality`` result (single node or merged)."""
    if not quality.get("enabled"):
        print("audit is not enabled on the target "
              "(start the server with --audit)")
        return
    if "nodes" in quality:
        origin = f"{len(quality['nodes'])} nodes: {', '.join(quality['nodes'])}"
    else:
        durable = "durable" if quality.get("durable") else "memory-only"
        origin = f"node {quality.get('node', '?')}, {durable}"
    journaled = quality.get("journaled", {})
    resolved = quality.get("resolved", {})
    drift = quality.get("drift", {})
    print(f"audit report ({origin})")
    print(
        "journaled: "
        + ", ".join(f"{op} {n}" for op, n in sorted(journaled.items()))
        + f"   pending: {quality.get('pending', 0)}"
        + "   resolved: "
        + ", ".join(f"{o} {n}" for o, n in sorted(resolved.items()))
    )
    agg = quality.get("aggregate", {})
    print(
        f"windowed brier: {_fmt_metric(agg.get('brier'))}"
        f"   binned: {_fmt_metric(agg.get('brier_binned'))}"
        f"   ece: {_fmt_metric(agg.get('ece'))}"
        f"   base rate: {_fmt_metric(agg.get('base_rate'))}"
        f"   n: {agg.get('n', 0)}"
    )
    degraded = "YES" if drift.get("degraded") else "no"
    print(f"degraded: {degraded} (alarms: {drift.get('alarms', 0)})")
    last = drift.get("last_alarm")
    if last:
        print(
            f"last alarm: {last.get('reason')} "
            f"(brier {_fmt_metric(last.get('brier'))}, "
            f"ece {_fmt_metric(last.get('ece'))})"
        )
    machines = quality.get("machines", {})
    if machines:
        header = (f"{'machine':<20} {'n':>6} {'brier':>8} {'ece':>8} "
                  f"{'base':>6} {'pending':>8}")
        print(header)
        print("-" * len(header))
        for name, snap in sorted(machines.items()):
            print(
                f"{name:<20} {snap.get('n', 0):>6} "
                f"{_fmt_metric(snap.get('brier')):>8} "
                f"{_fmt_metric(snap.get('ece')):>8} "
                f"{_fmt_metric(snap.get('base_rate'), '.2f'):>6} "
                f"{str(snap.get('pending', '-')):>8}"
            )


def _fetch_quality(args: argparse.Namespace, host: str, port: int) -> dict | None:
    from repro.serve.client import ServeClient, ServeRequestError

    try:
        with ServeClient(host, port, timeout=args.connect_timeout) as client:
            return client.quality(machine=args.machine)
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return None
    except ServeRequestError as exc:
        # A draining/overloaded server answers, but not with a report —
        # to a watcher that is the same as the target disappearing.
        print(f"server at {host}:{port} refused the request: {exc}",
              file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return None


def _cmd_audit_report(args: argparse.Namespace) -> int:
    import json as _json

    target = _resolve_query_target(args)
    if target is None:
        return 2
    quality = _fetch_quality(args, *target)
    if quality is None:
        return 1
    if args.json:
        print(_json.dumps(quality, indent=2))
    else:
        _print_quality(quality)
    return 0 if quality.get("enabled") else 1


def _cmd_audit_watch(args: argparse.Namespace) -> int:
    """Poll the quality report; one summary line per tick."""
    target = _resolve_query_target(args)
    if target is None:
        return 2
    previous = None
    for tick in range(args.count):
        if tick:
            time.sleep(args.interval)
        quality = _fetch_quality(args, *target)
        if quality is None:
            return 1
        if not quality.get("enabled"):
            print("audit is not enabled on the target", file=sys.stderr)
            return 1
        resolved = sum(quality.get("resolved", {}).values())
        delta = "" if previous is None else f" (+{resolved - previous})"
        previous = resolved
        agg = quality.get("aggregate", {})
        drift = quality.get("drift", {})
        stamp = time.strftime("%H:%M:%S")
        print(
            f"[{stamp}] resolved {resolved}{delta}  "
            f"pending {quality.get('pending', 0)}  "
            f"brier {_fmt_metric(agg.get('brier'))}  "
            f"ece {_fmt_metric(agg.get('ece'))}  "
            f"degraded {'YES' if drift.get('degraded') else 'no'}"
            f" (alarms {drift.get('alarms', 0)})",
            flush=True,
        )
    return 0


def _cmd_audit_resolve(args: argparse.Namespace) -> int:
    """Offline: label a journal's pending predictions against a store."""
    import json as _json

    from repro.audit import AuditConfig, PredictionAudit
    from repro.service import AvailabilityService
    from repro.store import StoreConfig, TraceStore

    with TraceStore(args.store, StoreConfig(fsync="never")) as store:
        service = AvailabilityService.warm_start(store)
        audit = PredictionAudit(
            AuditConfig(directory=args.journal, fsync="always"),
            classifier=service.classifier,
            step_multiple=service.config.step_multiple,
        )
        try:
            before = audit.n_pending
            resolutions = []
            for machine, history in sorted(service._histories.items()):
                resolutions.extend(audit.observe_ingest(machine, history))
            quality = audit.quality()
        finally:
            audit.close()
    if args.json:
        print(_json.dumps(quality, indent=2))
        return 0
    print(
        f"resolved {len(resolutions)} of {before} pending predictions "
        f"against {args.store} ({quality['pending']} still pending)"
    )
    _print_quality(quality)
    return 0


def _fetch_adapt_status(args: argparse.Namespace, host: str, port: int) -> dict | None:
    from repro.serve.client import ServeClient, ServeRequestError

    try:
        with ServeClient(host, port, timeout=args.connect_timeout) as client:
            return client.adapt_status(machine=args.machine)
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return None
    except ServeRequestError as exc:
        print(f"server at {host}:{port} refused the request: {exc}",
              file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return None


def _print_adapt_status(status: dict) -> None:
    print(
        f"adapt: auto={'on' if status.get('auto') else 'off'}  "
        f"retunes {status.get('retunes', 0)}  "
        f"promotions {status.get('promotions', 0)}  "
        f"abandoned {status.get('abandoned', 0)}  "
        f"shadowing {status.get('shadowing', 0)}"
    )
    overrides = status.get("overrides") or []
    if overrides:
        print(f"overridden machines: {', '.join(overrides)}")
    machines = status.get("machines", {})
    if machines:
        header = (f"{'machine':<20} {'state':<10} {'retunes':>8} {'promo':>6} "
                  f"{'cooldown':>9} {'fallback':>9}")
        print(header)
        print("-" * len(header))
        for name, entry in sorted(machines.items()):
            print(
                f"{name:<20} {entry.get('state', '?'):<10} "
                f"{entry.get('retunes', 0):>8} "
                f"{entry.get('promotions', 0):>6} "
                f"{entry.get('cooldown', 0):>9} "
                f"{'YES' if entry.get('fallback_active') else 'no':>9}"
            )


def _cmd_adapt_status(args: argparse.Namespace) -> int:
    import json as _json

    target = _resolve_query_target(args)
    if target is None:
        return 2
    status = _fetch_adapt_status(args, *target)
    if status is None:
        return 1
    if args.json:
        print(_json.dumps(status, indent=2))
    else:
        if not status.get("enabled"):
            print("adapt is not enabled on the target", file=sys.stderr)
        else:
            _print_adapt_status(status)
    return 0 if status.get("enabled") else 1


def _cmd_adapt_watch(args: argparse.Namespace) -> int:
    """Poll the adapt tier; one summary line per tick."""
    target = _resolve_query_target(args)
    if target is None:
        return 2
    for tick in range(args.count):
        if tick:
            time.sleep(args.interval)
        status = _fetch_adapt_status(args, *target)
        if status is None:
            return 1
        if not status.get("enabled"):
            print("adapt is not enabled on the target", file=sys.stderr)
            return 1
        stamp = time.strftime("%H:%M:%S")
        machines = status.get("machines", {})
        fallback = sum(1 for e in machines.values() if e.get("fallback_active"))
        print(
            f"[{stamp}] retunes {status.get('retunes', 0)}  "
            f"promotions {status.get('promotions', 0)}  "
            f"abandoned {status.get('abandoned', 0)}  "
            f"shadowing {status.get('shadowing', 0)}  "
            f"fallback {fallback}  "
            f"overrides {len(status.get('overrides') or [])}",
            flush=True,
        )
    return 0


def _cmd_adapt_retune(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient, ServeRequestError

    target = _resolve_query_target(args)
    if target is None:
        return 2
    host, port = target
    try:
        with ServeClient(host, port, timeout=args.connect_timeout) as client:
            summary = client.adapt_retune(args.machine)
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return 1
    except ServeRequestError as exc:
        print(f"retune failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(summary, indent=2))
        return 0
    best = summary.get("best") or {}
    champ = summary.get("champion") or {}
    print(
        f"machine {summary.get('machine')}: scored "
        f"{len(summary.get('candidates', []))} candidates over "
        f"{summary.get('holdout_days')} holdout days"
    )
    print(
        f"champion brier {champ.get('brier')}  best brier {best.get('brier')}  "
        f"improvement {summary.get('improvement')}"
    )
    if summary.get("trial_opened"):
        print(f"trial opened for challenger {best.get('candidate')}")
    else:
        print("no trial opened (champion holds, or a trial is already running)")
    return 0


def _cmd_adapt_promote(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient, ServeRequestError

    target = _resolve_query_target(args)
    if target is None:
        return 2
    host, port = target
    try:
        with ServeClient(host, port, timeout=args.connect_timeout) as client:
            result = client.adapt_promote(args.machine, force=args.force)
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return 1
    except ServeRequestError as exc:
        print(f"promote failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(result, indent=2))
        return 0 if result.get("promoted") else 1
    if result.get("promoted"):
        print(
            f"machine {result.get('machine')}: promoted challenger "
            f"{result.get('challenger')}"
            + (" (forced)" if result.get("forced") else "")
        )
        return 0
    print(
        f"machine {result.get('machine')}: not promoted — "
        f"{result.get('reason')}",
        file=sys.stderr,
    )
    return 1


def _sched_client(args: argparse.Namespace):
    """Connected ServeClient for the sched subcommands (or None + rc 1/2)."""
    from repro.serve.client import ServeClient

    target = _resolve_query_target(args)
    if target is None:
        return None, 2
    host, port = target
    try:
        return ServeClient(host, port, timeout=args.connect_timeout), 0
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return None, 1


def _print_job(job: dict) -> None:
    state = job.get("state", "?")
    progress = job.get("progress_seconds")
    if progress is None:
        # the job table carries raw records; only 'status --job' computes
        # live progress, so fall back to what the record itself implies
        progress = (
            job.get("total_cpu_seconds", 0.0) if state == "completed"
            else job.get("carried_seconds", 0.0)
        )
    line = (
        f"{job.get('job', '?'):<20} {state:<10} "
        f"machine {job.get('machine') or '-':<12} "
        f"progress {progress:>10.1f}"
        f"/{job.get('total_cpu_seconds', 0.0):<10.1f} "
        f"attempts {len(job.get('attempts', ()))}"
    )
    if job.get("wasted_cpu_seconds"):
        line += f" wasted {job['wasted_cpu_seconds']:.1f}"
    if job.get("note"):
        line += f"  ({job['note']})"
    print(line)


def _cmd_sched_submit(args: argparse.Namespace) -> int:
    import json as _json

    client, rc = _sched_client(args)
    if client is None:
        return rc
    with client:
        result = client.submit(
            args.job,
            args.cpu_seconds,
            cpu=args.cpu,
            mem_mb=args.mem_mb,
            checkpoint_interval_s=args.checkpoint_interval,
        )
    print(_json.dumps(result, indent=2))
    record = result.get("record", {})
    return 0 if record.get("state") not in (None, "failed") else 1


def _cmd_sched_status(args: argparse.Namespace) -> int:
    import json as _json

    client, rc = _sched_client(args)
    if client is None:
        return rc
    with client:
        if args.job:
            result = client.job_status(args.job)
            if args.json:
                print(_json.dumps(result, indent=2))
            else:
                _print_job(result)
            return 0
        result = client.jobs()
    if args.json:
        print(_json.dumps(result, indent=2))
        return 0
    jobs = result.get("jobs", [])
    states = result.get("stats", {}).get("states", {})
    wasted = sum(j.get("wasted_cpu_seconds", 0.0) for j in jobs)
    print(
        "jobs: "
        + (", ".join(f"{s} {n}" for s, n in sorted(states.items())) or "none")
        + f"   wasted cpu-s {wasted:.1f}"
    )
    for job in sorted(jobs, key=lambda j: j.get("job", "")):
        _print_job(job)
    return 0


def _cmd_sched_watch(args: argparse.Namespace) -> int:
    """Poll the job list until every job is terminal (or count runs out)."""
    from repro.sched import TERMINAL_STATES

    client, rc = _sched_client(args)
    if client is None:
        return rc
    open_jobs: list = []
    with client:
        for tick in range(args.count):
            if tick:
                time.sleep(args.interval)
            result = client.jobs()
            jobs = result.get("jobs", [])
            states = result.get("stats", {}).get("states", {})
            open_jobs = [
                j for j in jobs if j.get("state") not in TERMINAL_STATES
            ]
            stamp = time.strftime("%H:%M:%S")
            print(
                f"[{stamp}] "
                + (", ".join(f"{s} {n}" for s, n in sorted(states.items()))
                   or "no jobs")
                + f"   open {len(open_jobs)}",
                flush=True,
            )
            if jobs and not open_jobs:
                print("all jobs terminal")
                return 0
    print(f"{len(open_jobs)} jobs still open after {args.count} polls",
          file=sys.stderr)
    return 1


def _cmd_sched_drain(args: argparse.Namespace) -> int:
    import json as _json

    client, rc = _sched_client(args)
    if client is None:
        return rc
    with client:
        response = client.request(
            "replace",
            {"machines": list(args.machines), "reason": args.reason},
        )
    print(_json.dumps(response.to_wire(), indent=2))
    from repro.serve.protocol import STATUS_OK

    return 0 if response.status == STATUS_OK else 1


def _cmd_ingest_agent(args: argparse.Namespace) -> int:
    import signal

    from repro.ingest.agent import AgentConfig, MonitorAgent, SimulatedClock
    from repro.ingest.samplers import MissingDependencyError, make_sampler
    from repro.serve.client import ServeClient

    target = _resolve_query_target(args)
    if target is None:
        return 2
    host, port = target
    sampler_kind = args.sampler
    if args.simulate_days and sampler_kind == "auto":
        # Simulated time makes a real host sampler meaningless (it would
        # read the same instant thousands of times); default to synthetic.
        sampler_kind = "synthetic"
    try:
        sampler = make_sampler(sampler_kind, seed=args.seed)
    except MissingDependencyError as exc:
        print(f"sampler {sampler_kind!r} unavailable: {exc}", file=sys.stderr)
        return 2
    config = AgentConfig(
        machine_id=args.machine,
        sample_period=args.period,
        chunk_samples=args.chunk,
        ring_capacity=args.ring,
        spill_dir=args.spill_dir,
        utc_offset_s=args.utc_offset,
    )
    if args.simulate_days:
        clock = SimulatedClock(time.time())
        tick, sleeper = clock.now, clock.sleep
        duration = args.simulate_days * 86400.0
    else:
        tick, sleeper = time.time, time.sleep
        duration = args.duration
    stopping = False

    def _stop(_sig, _frame):
        nonlocal stopping
        stopping = True

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _stop)
    try:
        with ServeClient(
            host, port, timeout=args.connect_timeout, retries=args.retries
        ) as client:
            agent = MonitorAgent(sampler, client, config, clock=tick, sleep=sleeper)
            print(
                f"[agent {args.machine}: sampler {sampler.kind}, "
                f"period {args.period:g}s, chunk {args.chunk}, "
                f"target {host}:{port}"
                + (f", spill {args.spill_dir}" if args.spill_dir else "")
                + "]",
                flush=True,
            )
            produced = agent.run(
                max_samples=args.samples,
                duration_s=duration,
                stop=lambda: stopping,
            )
            status = agent.status()
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return 1
    print(
        f"[agent stopped: {produced} samples generated, "
        f"{status['acked']} acked, {status['unacked']} unacked, "
        f"{status['gap_filled']} gap-filled, "
        f"{status['flush_errors']} flush errors]"
    )
    return 0 if status["unacked"] == 0 else 1


def _cmd_ingest_import(args: argparse.Namespace) -> int:
    import json as _json

    from repro.ingest.adapters import get_adapter

    try:
        convert = get_adapter(args.format)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    client = None
    if not args.out:
        target = _resolve_query_target(args)
        if target is None:
            print(
                "hint: give a server target to register the imported traces, "
                "or --out DIR to write them as a traceset instead",
                file=sys.stderr,
            )
            return 2
        from repro.serve.client import ServeClient

        host, port = target
        try:
            client = ServeClient(host, port, timeout=args.connect_timeout)
        except OSError as exc:
            print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
            print(_unreachable_hint(args, host, port), file=sys.stderr)
            return 1
    kwargs: dict[str, object] = {
        "sample_period": args.period,
        "machine_id": args.machine,
        "utc_offset_s": args.utc_offset,
    }
    if args.format != "preempt":
        kwargs["gap_policy"] = args.gap_policy
        if args.native_period:
            kwargs["native_period"] = args.native_period
    all_traces = []
    try:
        for path in args.files:
            try:
                traces, stats = convert(path, **kwargs)
            except (ValueError, FileNotFoundError) as exc:
                print(f"import failed: {exc}", file=sys.stderr)
                return 1
            all_traces.extend(traces)
            print(_json.dumps(stats.as_dict()))
            for trace in traces:
                if client is not None:
                    result = client.register(trace)
                    print(
                        f"  registered {trace.machine_id}: "
                        f"{result.get('n_samples', trace.n_samples)} samples"
                    )
                else:
                    print(f"  converted {trace.machine_id}: "
                          f"{trace.n_samples} samples")
    finally:
        if client is not None:
            client.close()
    if args.out:
        from repro.traces.io import save_traceset
        from repro.traces.trace import TraceSet

        testbed = TraceSet()
        for trace in all_traces:
            testbed.add(trace)
        save_traceset(testbed, args.out)
        print(f"[{len(testbed)} machine traces written to {args.out}/]")
    return 0


def _cmd_ingest_tail(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient

    target = _resolve_query_target(args)
    if target is None:
        return 2
    host, port = target
    try:
        with ServeClient(host, port, timeout=args.connect_timeout) as client:
            result = client.tail(args.machine, n=args.n)
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        print(_unreachable_hint(args, host, port), file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(result, indent=2))
        return 0
    print(
        f"{result['machine']}: {result['n_samples']} samples, "
        f"period {result['sample_period']:g}s, "
        f"model time [{result['start_time']:g}, {result['end_time']:g})"
    )
    header = f"{'model time':>14} {'load':>8} {'free MB':>10} {'up':>3}"
    print(header)
    print("-" * len(header))
    for s in result["samples"]:
        mem = "inf" if s["free_mem_mb"] == float("inf") else f"{s['free_mem_mb']:.0f}"
        print(
            f"{s['time']:>14.1f} {s['load']:>8.3f} {mem:>10} "
            f"{'up' if s['up'] else 'DN':>3}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-fgcs",
        description="Resource availability prediction in FGCS systems — "
        "reproduction of Ren et al., HPDC 2006.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--scale", choices=("quick", "full"), default="quick",
                     help="quick: minutes; full: paper-scale (default: quick)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", help="directory to also write result tables as CSV")
    run.add_argument("--metrics-out", default=_DEFAULT_SNAPSHOT,
                     help="metrics snapshot path (default: %(default)s)")
    run.add_argument("--bench-out", default=None,
                     help="directory for machine-readable BENCH_<id>.json "
                     "perf snapshots (compared by tools/bench_gate.py)")
    run.set_defaults(func=_cmd_run)

    synth = sub.add_parser("synthesize", help="generate a synthetic testbed")
    synth.add_argument("--machines", type=int, default=8)
    synth.add_argument("--days", type=int, default=90)
    synth.add_argument("--period", type=float, default=6.0,
                       help="monitoring period in seconds (default: 6)")
    synth.add_argument("--profile", default="student-lab",
                       help="machine profile (student-lab, office-desktop, server-room)")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--out", required=True, help="output directory")
    synth.set_defaults(func=_cmd_synthesize)

    pred = sub.add_parser("predict", help="predict TR from a saved trace")
    pred.add_argument("--trace", required=True, help="path to a .npz trace")
    pred.add_argument("--start-hour", type=float, default=8.0)
    pred.add_argument("--hours", type=float, default=5.0)
    pred.add_argument("--weekend", action="store_true",
                      help="predict for weekends instead of weekdays")
    pred.add_argument("--step-multiple", type=int, default=10,
                      help="SMP step as a multiple of the monitoring period")
    pred.add_argument("--metrics-out", default=_DEFAULT_SNAPSHOT,
                      help="metrics snapshot path (default: %(default)s)")
    pred.set_defaults(func=_cmd_predict)

    serve = sub.add_parser("serve", help="run the TCP availability server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7061,
                       help="TCP port; 0 picks an ephemeral port (default: 7061)")
    serve.add_argument("--port-file",
                       help="write the bound port to this file once listening")
    serve.add_argument("--traces", help="directory of .npz traces to pre-register")
    serve.add_argument("--store",
                       help="trace-store directory; warm-starts the registry from "
                       "it and persists registrations/extensions durably")
    serve.add_argument("--fsync", default="interval",
                       help="store durability policy: always | interval[:SECONDS] "
                       "| never (default: interval)")
    serve.add_argument("--workers", type=int, default=4,
                       help="prediction worker threads (default: 4)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max admitted-but-unanswered requests (default: 64)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline in ms (default: none)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to wait for in-flight work on shutdown")
    serve.add_argument("--cache-entries", type=int, default=512,
                       help="LRU bound on cached (machine, window) entries")
    serve.add_argument("--audit", action="store_true",
                       help="journal served predictions and score them as "
                       "ground truth arrives (the 'quality' op / 'repro-fgcs "
                       "audit report' read the scoreboard)")
    serve.add_argument("--audit-dir",
                       help="audit journal directory (implies --audit; the "
                       "journal survives restarts)")
    serve.add_argument("--node-id", default="local",
                       help="node identity stamped into audit records "
                       "(default: local)")
    serve.add_argument("--adapt", action="store_true",
                       help="run the self-healing adapt tier: auto retune on "
                       "per-machine drift alarms, champion/challenger shadow "
                       "trials, calibrated fallback (implies a memory-only "
                       "audit when no audit flags are given)")
    serve.add_argument("--sched-dir", default=None,
                       help="scheduler WAL directory; job state survives "
                       "restarts (default: memory-only scheduler)")
    serve.add_argument("--sched-speedup", type=float, default=1.0,
                       help="guest CPU-seconds completed per wall second "
                       "(tests/bench compress simulated hours; default: 1)")
    serve.add_argument("--metrics-out", default=None,
                       help="write a metrics snapshot here on SIGTERM drain")
    serve.add_argument("--trace-out", default=None,
                       help="append request trace spans to this JSONL file "
                       "(eagerly flushed; read with 'repro-fgcs trace')")
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser("query",
                           help="query a running availability server or cluster")
    query.add_argument("op",
                       choices=("predict", "predict_batch", "fleet_scan", "rank",
                                "select", "horizon", "health",
                                "register", "extend", "quality", "adapt_status"))
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=0,
                       help="server (or cluster router) port")
    query.add_argument("--port-file",
                       help="read the port from this file (as written by "
                       "'repro-fgcs serve --port-file' or 'cluster start')")
    query.add_argument("--cluster", metavar="SPEC",
                       help="read the router address from a cluster spec JSON "
                       "(as written by 'repro-fgcs cluster start')")
    query.add_argument("--machine", help="machine id (predict/horizon)")
    query.add_argument("--machines", nargs="+", metavar="ID", default=None,
                       help="restrict predict_batch/fleet_scan to these "
                       "machines (default: every registered machine)")
    query.add_argument("--horizons-hours", nargs="+", type=float, default=None,
                       metavar="H",
                       help="sub-window TRs to include per fleet_scan entry")
    query.add_argument("--trace",
                       help="path to a .npz trace to ship (register/extend)")
    query.add_argument("--retries", type=int, default=0,
                       help="retry shed/shutting_down responses this many times "
                       "with jittered backoff (default: 0)")
    query.add_argument("--start-hour", type=float, default=9.0)
    query.add_argument("--hours", type=float, default=2.0)
    query.add_argument("--weekend", action="store_true",
                       help="query weekends instead of weekdays")
    query.add_argument("--k", type=int, default=1, help="gang size for select")
    query.add_argument("--tr-threshold", type=float, default=0.9,
                       help="TR threshold for horizon")
    query.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline in ms")
    query.add_argument("--connect-timeout", type=float, default=10.0)
    query.add_argument("--traced", action="store_true",
                       help="attach a fresh trace context to the request and "
                       "export the client-side spans")
    query.add_argument("--trace-out", default=None,
                       help="client-side span JSONL path (implies --traced; "
                       f"default with --traced: {_DEFAULT_TRACE_PATH})")
    query.set_defaults(func=_cmd_query)

    clus = sub.add_parser(
        "cluster",
        help="run a sharded, replicated multi-node cluster behind one router",
    )
    csub = clus.add_subparsers(dest="cluster_op", required=True)

    cstart = csub.add_parser(
        "start", help="start N backend serve processes and the router"
    )
    cstart.add_argument("--nodes", type=int, default=3,
                        help="backend node count (default: 3)")
    cstart.add_argument("--replicas", type=int, default=2,
                        help="replication factor R (default: 2)")
    cstart.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per backend on the hash ring")
    cstart.add_argument("--data", required=True,
                        help="cluster data directory (per-node stores + spec)")
    cstart.add_argument("--host", default="127.0.0.1")
    cstart.add_argument("--port", type=int, default=7070,
                        help="router port; 0 picks an ephemeral port")
    cstart.add_argument("--port-file",
                        help="write the router port to this file once listening")
    cstart.add_argument("--spec-file",
                        help="cluster spec path (default: DATA/cluster.json)")
    cstart.add_argument("--traces",
                        help="traceset directory to register through the router "
                        "(quorum-replicated onto the owning shards)")
    cstart.add_argument("--fsync", default="always",
                        help="per-node store durability policy (default: always)")
    cstart.add_argument("--workers", type=int, default=2,
                        help="worker threads per backend (default: 2)")
    cstart.add_argument("--queue-depth", type=int, default=64,
                        help="admission queue depth per backend (default: 64)")
    cstart.add_argument("--probe-interval", type=float, default=0.5,
                        help="membership health-probe period in seconds")
    cstart.add_argument("--no-supervise", action="store_true",
                        help="do not relaunch backends that die")
    cstart.add_argument("--sched", action="store_true",
                        help="give every backend a durable scheduler WAL "
                        "under DATA/node-*/sched (job state survives "
                        "node restarts)")
    cstart.add_argument("--sched-speedup", type=float, default=1.0,
                        help="guest CPU-seconds completed per wall second "
                        "on every backend's scheduler (default: 1)")
    cstart.add_argument("--audit", action="store_true",
                        help="enable the prediction audit on every backend "
                        "(journals under DATA/node-*/audit; the router merges "
                        "'quality' across nodes)")
    cstart.add_argument("--metrics-out", default=None,
                        help="write the router's metrics snapshot here on "
                        "SIGTERM drain (nodes write DATA/node-*/metrics.json)")
    cstart.add_argument("--trace-out", default=None,
                        help="append router trace spans to this JSONL file; "
                        "backends trace to DATA/node-*/trace.jsonl "
                        "(merge with 'repro-fgcs trace')")
    cstart.set_defaults(func=_cmd_cluster_start)

    cstatus = csub.add_parser("status", help="show per-node cluster health")
    cstatus.add_argument("--spec", help="cluster spec JSON from 'cluster start'")
    cstatus.add_argument("--host", default="127.0.0.1")
    cstatus.add_argument("--port", type=int, default=0, help="router port")
    cstatus.add_argument("--connect-timeout", type=float, default=5.0)
    cstatus.set_defaults(func=_cmd_cluster_status)

    cstop = csub.add_parser("stop", help="stop a running cluster by spec file")
    cstop.add_argument("--spec", required=True,
                       help="cluster spec JSON from 'cluster start'")
    cstop.add_argument("--timeout", type=float, default=30.0,
                       help="seconds to wait for the cluster to exit")
    cstop.set_defaults(func=_cmd_cluster_stop)

    store = sub.add_parser("store", help="manage a durable trace store")
    store.add_argument("store_op", choices=("init", "ingest", "stat", "compact"),
                       help="init: create; ingest: load a traceset; stat: "
                       "per-machine accounting; compact: fold WALs into snapshots")
    store.add_argument("dir", help="store directory")
    store.add_argument("--traces", help="traceset directory to ingest")
    store.add_argument("--fsync", default="interval",
                       help="durability policy: always | interval[:SECONDS] | never")
    store.set_defaults(func=_cmd_store)

    audit = sub.add_parser(
        "audit", help="inspect online prediction quality (Brier, ECE, drift)"
    )
    asub = audit.add_subparsers(dest="audit_op", required=True)

    def _audit_target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="server (or cluster router) port")
        p.add_argument("--port-file",
                       help="read the port from this file (as written by "
                       "'repro-fgcs serve --port-file' or 'cluster start')")
        p.add_argument("--cluster", metavar="SPEC",
                       help="read the router address from a cluster spec JSON")
        p.add_argument("--machine", help="restrict the report to one machine")
        p.add_argument("--connect-timeout", type=float, default=10.0)

    areport = asub.add_parser(
        "report", help="fetch and render the quality scoreboard"
    )
    _audit_target_args(areport)
    areport.add_argument("--json", action="store_true",
                         help="print the raw quality result as JSON")
    areport.set_defaults(func=_cmd_audit_report)

    awatch = asub.add_parser(
        "watch", help="poll the scoreboard, one summary line per tick"
    )
    _audit_target_args(awatch)
    awatch.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default: 2)")
    awatch.add_argument("--count", type=int, default=30,
                        help="number of polls before exiting (default: 30)")
    awatch.set_defaults(func=_cmd_audit_watch)

    aresolve = asub.add_parser(
        "resolve",
        help="offline: label a journal's pending predictions against a "
        "trace store's histories",
    )
    aresolve.add_argument("--journal", required=True,
                          help="audit journal directory (from serve --audit-dir)")
    aresolve.add_argument("--store", required=True,
                          help="trace-store directory holding the ground truth")
    aresolve.add_argument("--json", action="store_true",
                          help="print the raw quality result as JSON")
    aresolve.set_defaults(func=_cmd_audit_resolve)

    adapt = sub.add_parser(
        "adapt",
        help="inspect and drive the self-healing model tier "
        "(retunes, shadow trials, promotions)",
    )
    adsub = adapt.add_subparsers(dest="adapt_op", required=True)

    def _adapt_target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="server (or cluster router) port")
        p.add_argument("--port-file",
                       help="read the port from this file (as written by "
                       "'repro-fgcs serve --port-file' or 'cluster start')")
        p.add_argument("--cluster", metavar="SPEC",
                       help="read the router address from a cluster spec JSON")
        p.add_argument("--connect-timeout", type=float, default=10.0)

    adstatus = adsub.add_parser(
        "status", help="show retunes, trials and promotions per machine"
    )
    _adapt_target_args(adstatus)
    adstatus.add_argument("--machine", help="restrict to one machine")
    adstatus.add_argument("--json", action="store_true",
                          help="print the raw adapt_status result as JSON")
    adstatus.set_defaults(func=_cmd_adapt_status)

    adwatch = adsub.add_parser(
        "watch", help="poll the adapt tier, one summary line per tick"
    )
    _adapt_target_args(adwatch)
    adwatch.add_argument("--machine", help="restrict to one machine")
    adwatch.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls (default: 2)")
    adwatch.add_argument("--count", type=int, default=30,
                         help="number of polls before exiting (default: 30)")
    adwatch.set_defaults(func=_cmd_adapt_watch)

    adretune = adsub.add_parser(
        "retune", help="backtest candidate models for one machine now"
    )
    _adapt_target_args(adretune)
    adretune.add_argument("--machine", required=True,
                          help="machine id to retune")
    adretune.add_argument("--json", action="store_true",
                          help="print the raw retune plan as JSON")
    adretune.set_defaults(func=_cmd_adapt_retune)

    adpromote = adsub.add_parser(
        "promote", help="promote one machine's shadow challenger"
    )
    _adapt_target_args(adpromote)
    adpromote.add_argument("--machine", required=True,
                           help="machine id whose challenger to promote")
    adpromote.add_argument("--force", action="store_true",
                           help="promote even without the scoreboard margin")
    adpromote.add_argument("--json", action="store_true",
                           help="print the raw result as JSON")
    adpromote.set_defaults(func=_cmd_adapt_promote)

    sched = sub.add_parser(
        "sched", help="submit and track guest jobs on the TR-aware scheduler"
    )
    ssub = sched.add_subparsers(dest="sched_op", required=True)

    def _sched_target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="server (or cluster router) port")
        p.add_argument("--port-file",
                       help="read the port from this file (as written by "
                       "'repro-fgcs serve --port-file' or 'cluster start')")
        p.add_argument("--cluster", metavar="SPEC",
                       help="read the router address from a cluster spec JSON")
        p.add_argument("--connect-timeout", type=float, default=10.0)

    ssubmit = ssub.add_parser("submit", help="submit a job for placement")
    _sched_target_args(ssubmit)
    ssubmit.add_argument("--job", required=True, help="job id (idempotent)")
    ssubmit.add_argument("--cpu-seconds", type=float, required=True,
                         help="total guest CPU-seconds the job needs")
    ssubmit.add_argument("--cpu", type=float, default=1.0,
                         help="CPU cores demanded (default: 1)")
    ssubmit.add_argument("--mem-mb", type=float, default=64.0,
                         help="resident memory demanded in MB (default: 64)")
    ssubmit.add_argument("--checkpoint-interval", type=float, default=None,
                         help="checkpoint period in guest seconds "
                         "(default: scheduler config)")
    ssubmit.set_defaults(func=_cmd_sched_submit)

    sstatus = ssub.add_parser(
        "status", help="show one job (--job) or the whole job table"
    )
    _sched_target_args(sstatus)
    sstatus.add_argument("--job", help="restrict to one job id")
    sstatus.add_argument("--json", action="store_true",
                         help="print the raw result as JSON")
    sstatus.set_defaults(func=_cmd_sched_status)

    swatch = ssub.add_parser(
        "watch", help="poll the job table until every job is terminal"
    )
    _sched_target_args(swatch)
    swatch.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default: 2)")
    swatch.add_argument("--count", type=int, default=30,
                        help="number of polls before giving up (default: 30)")
    swatch.set_defaults(func=_cmd_sched_watch)

    sdrain = ssub.add_parser(
        "drain",
        help="re-place the jobs running on the given machines "
        "(checkpoint-migrate when cheaper than restart)",
    )
    _sched_target_args(sdrain)
    sdrain.add_argument("machines", nargs="+",
                        help="machine ids to drain jobs away from")
    sdrain.add_argument("--reason", default="drain",
                        help="replacement reason recorded on the attempts "
                        "(drain* reasons allow live migration)")
    sdrain.set_defaults(func=_cmd_sched_drain)

    ingest = sub.add_parser(
        "ingest", help="feed real telemetry into a server (live agent, "
        "foreign trace import, read-back tail)"
    )
    isub = ingest.add_subparsers(dest="ingest_op", required=True)

    def _ingest_target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="server (or cluster router) port")
        p.add_argument("--port-file",
                       help="read the port from this file (as written by "
                       "'repro-fgcs serve --port-file' or 'cluster start')")
        p.add_argument("--cluster", metavar="SPEC",
                       help="read the router address from a cluster spec JSON")
        p.add_argument("--connect-timeout", type=float, default=10.0)

    import socket as _socket

    iagent = isub.add_parser(
        "agent",
        help="run the live host monitor: sample this machine onto the "
        "model grid and stream chunks through 'extend'",
    )
    _ingest_target_args(iagent)
    iagent.add_argument("--machine", default=_socket.gethostname(),
                        help="machine id to report as (default: hostname)")
    iagent.add_argument("--period", type=float, default=6.0,
                        help="monitoring period in seconds (default: 6, "
                        "the paper's testbed setting)")
    # Mirror of repro.ingest.samplers.SAMPLER_KINDS, kept literal so
    # building the parser stays import-light.
    iagent.add_argument("--sampler", default="auto",
                        choices=("auto", "psutil", "proc", "synthetic"),
                        help="host sampler backend: psutil (needs the "
                        "repro[ingest] extra), proc (/proc, Linux, no deps), "
                        "synthetic (deterministic walk); auto picks psutil, "
                        "or synthetic under --simulate-days (default: auto)")
    iagent.add_argument("--seed", type=int, default=0,
                        help="seed for the synthetic sampler")
    iagent.add_argument("--duration", type=float, default=None,
                        help="stop after this many wall seconds "
                        "(default: run until SIGINT/SIGTERM)")
    iagent.add_argument("--samples", type=int, default=None,
                        help="stop after generating this many samples")
    iagent.add_argument("--simulate-days", type=float, default=None,
                        help="run on a simulated clock for this many model "
                        "days (sleep is free; builds multi-day histories "
                        "in seconds)")
    iagent.add_argument("--chunk", type=int, default=10,
                        help="samples per extend chunk (default: 10, one "
                        "minute at the 6 s period)")
    iagent.add_argument("--ring", type=int, default=4096,
                        help="in-memory buffer bound in samples (default: 4096)")
    iagent.add_argument("--spill-dir", default=None,
                        help="durable spill directory; unacknowledged samples "
                        "survive agent crashes and server outages")
    iagent.add_argument("--utc-offset", type=float, default=0.0,
                        help="seconds to add to UTC for the model calendar "
                        "(the paper's weekday/weekend split is local time)")
    iagent.add_argument("--retries", type=int, default=3,
                        help="retry shed/refused flushes this many times "
                        "with jittered backoff (default: 3)")
    iagent.set_defaults(func=_cmd_ingest_agent)

    iimport = isub.add_parser(
        "import",
        help="convert a foreign trace file onto the model grid and "
        "register it (or write a traceset with --out)",
    )
    _ingest_target_args(iimport)
    iimport.add_argument("files", nargs="+", help="foreign trace files")
    # Mirror of the repro.ingest.adapters registry, kept literal so
    # building the parser stays import-light.
    iimport.add_argument("--format", default="csv",
                         choices=("csv", "preempt"),
                         help="adapter: csv (timestamp,load[,free_mem_mb]"
                         "[,up][,machine]) or preempt (instance,start,end"
                         "[,cause] spot-VM lifetimes) (default: csv)")
    iimport.add_argument("--period", type=float, default=6.0,
                         help="model grid period in seconds (default: 6)")
    iimport.add_argument("--machine", default=None,
                         help="override the machine id (single-machine "
                         "files only)")
    iimport.add_argument("--gap-policy", choices=("down", "reject"),
                         default="down",
                         help="slots with no source data: mark the machine "
                         "down, or reject the import (default: down)")
    iimport.add_argument("--native-period", type=float, default=None,
                         help="source cadence in seconds (csv adapter; "
                         "default: inferred from timestamps)")
    iimport.add_argument("--utc-offset", type=float, default=0.0,
                         help="seconds to add to UTC for the model calendar")
    iimport.add_argument("--out", default=None,
                         help="write converted traces to this traceset "
                         "directory instead of registering them")
    iimport.set_defaults(func=_cmd_ingest_import)

    itail = isub.add_parser(
        "tail",
        help="read back the last N samples the server holds for a machine",
    )
    _ingest_target_args(itail)
    itail.add_argument("--machine", required=True, help="machine id")
    itail.add_argument("-n", type=int, default=10,
                       help="samples to read (default: 10)")
    itail.add_argument("--json", action="store_true",
                       help="print the raw result as JSON")
    itail.set_defaults(func=_cmd_ingest_tail)

    trace = sub.add_parser(
        "trace",
        help="reconstruct span trees from exported trace JSONL and print a "
        "critical-path latency breakdown",
    )
    trace.add_argument("inputs", nargs="+",
                       help="trace JSONL files (client + server/router + "
                       "per-node files are merged by trace id)")
    trace.add_argument("--trace-id", default=None,
                       help="restrict to one trace (full id or unique prefix)")
    trace.add_argument("--tree", action="store_true",
                       help="also print every trace's span tree")
    trace.add_argument("--exemplars", type=int, default=3,
                       help="slowest-trace exemplars to list (default: 3)")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable summary instead of text")
    trace.set_defaults(func=_cmd_trace)

    obs = sub.add_parser("obs", help="render the metrics snapshot")
    obs.add_argument("--format", choices=("table", "prometheus"), default="table",
                     help="output format (default: table)")
    obs.add_argument("--metrics-in", default=_DEFAULT_SNAPSHOT,
                     help="snapshot to render (default: %(default)s)")
    obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
