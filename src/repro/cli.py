"""Command-line driver: regenerate any paper table/figure from a terminal.

Usage::

    repro-fgcs list                         # show the experiment registry
    repro-fgcs run fig5                     # one experiment, quick scale
    repro-fgcs run fig7 --scale full        # paper-scale run
    repro-fgcs run all --out results/       # everything, tables to CSV
    repro-fgcs synthesize --machines 8 --days 90 --out traces/
    repro-fgcs predict --trace traces/lab-00.npz --start-hour 8 --hours 5
    repro-fgcs obs --format prometheus      # dump the metrics snapshot

(Equivalently: ``python -m repro ...``.)

``run`` and ``predict`` write the process's metrics registry to a JSON
snapshot as they exit (``--metrics-out``, default ``.repro-metrics.json``
in the working directory); ``obs`` renders that snapshot as a human
table or as the Prometheus text exposition format.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["main"]

#: Mirror of repro.obs.export.DEFAULT_SNAPSHOT_PATH, kept literal so
#: building the parser stays import-light.
_DEFAULT_SNAPSHOT = ".repro-metrics.json"


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY

    print(f"{'id':<10} description")
    print(f"{'-' * 10} {'-' * 50}")
    for name, module in REGISTRY.items():
        desc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<10} {desc}")
    return 0


def _write_metrics(path: str) -> None:
    """Persist the full instrument catalog (plus recorded values) to disk."""
    from repro.obs import ensure_all_registered, write_snapshot

    ensure_all_registered()
    write_snapshot(path)
    print(f"[metrics snapshot written to {path}]")


def _cmd_run(args: argparse.Namespace) -> int:
    import traceback

    from repro.bench.experiments import REGISTRY
    from repro.bench.harness import run_instrumented

    names = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: all, {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    failed: list[str] = []
    for name in names:
        t0 = time.perf_counter()
        try:
            result = run_instrumented(name, REGISTRY[name], args.scale, seed=args.seed)
        except Exception:
            # run_instrumented already counted the failure and emitted the
            # experiment_failed event; report and keep going so one broken
            # experiment does not hide the others' results.
            print(f"[{name} FAILED]", file=sys.stderr)
            traceback.print_exc()
            failed.append(name)
            continue
        result.print()
        print(f"\n[{name} finished in {time.perf_counter() - t0:.1f} s]\n")
        if args.out:
            out = Path(args.out)
            for i, table in enumerate(result.tables):
                slug = table.title.lower().replace(" ", "_").replace(":", "")[:60]
                table.to_csv(out / f"{name}_{i}_{slug}.csv")
            print(f"[tables written to {out}/]")
    _write_metrics(args.metrics_out)
    if failed:
        print(f"failed experiment(s): {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.traces.io import save_traceset
    from repro.traces.profiles import PROFILES
    from repro.traces.synthesis import synthesize_testbed

    if args.profile not in PROFILES:
        print(f"unknown profile {args.profile!r}; known: {', '.join(PROFILES)}",
              file=sys.stderr)
        return 2
    testbed = synthesize_testbed(
        args.machines,
        n_days=args.days,
        sample_period=args.period,
        seed=args.seed,
        profile=PROFILES[args.profile](),
    )
    path = save_traceset(testbed, args.out)
    total = sum(t.n_samples for t in testbed)
    print(f"wrote {len(testbed)} machine traces ({total} samples) to {path}/")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core import ClockWindow, DayType, TemporalReliabilityPredictor
    from repro.core.estimator import EstimatorConfig
    from repro.traces.io import load_trace_npz

    trace = load_trace_npz(args.trace)
    predictor = TemporalReliabilityPredictor(
        trace, estimator_config=EstimatorConfig(step_multiple=args.step_multiple)
    )
    window = ClockWindow.from_hours(args.start_hour, args.hours)
    dtype = DayType.WEEKEND if args.weekend else DayType.WEEKDAY
    res = predictor.predict_detailed(window, dtype)
    print(f"machine:    {trace.machine_id} ({trace.n_days} days of history)")
    print(f"window:     {args.start_hour:05.2f}h + {args.hours:g}h on {dtype.value}s")
    print(f"TR:         {res.tr:.4f}")
    print(f"init state: {res.init_state.name} ({res.init_state.describe()})")
    print(
        f"based on:   {res.n_history_days} history days, {res.n_observations} sojourns, "
        f"horizon {res.horizon} x {res.step:g}s"
    )
    print(f"cost:       {res.total_seconds * 1000:.1f} ms "
          f"(estimation {res.estimation_seconds * 1000:.1f} ms)")
    _write_metrics(args.metrics_out)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import (
        ensure_all_registered,
        read_snapshot,
        render_prometheus,
        render_table,
    )

    path = Path(args.metrics_in)
    if path.exists():
        registry = read_snapshot(path)
    else:
        # No snapshot yet: render the instrument catalog, zero-valued, so
        # dashboards and smoke tests see the full schema either way.
        print(
            f"[no snapshot at {path}; rendering the empty instrument catalog — "
            "run 'repro-fgcs run' or 'repro-fgcs predict' first]",
            file=sys.stderr,
        )
        from repro.obs import MetricsRegistry

        registry = ensure_all_registered(MetricsRegistry())
    render = render_prometheus if args.format == "prometheus" else render_table
    print(render(registry), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-fgcs",
        description="Resource availability prediction in FGCS systems — "
        "reproduction of Ren et al., HPDC 2006.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--scale", choices=("quick", "full"), default="quick",
                     help="quick: minutes; full: paper-scale (default: quick)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", help="directory to also write result tables as CSV")
    run.add_argument("--metrics-out", default=_DEFAULT_SNAPSHOT,
                     help="metrics snapshot path (default: %(default)s)")
    run.set_defaults(func=_cmd_run)

    synth = sub.add_parser("synthesize", help="generate a synthetic testbed")
    synth.add_argument("--machines", type=int, default=8)
    synth.add_argument("--days", type=int, default=90)
    synth.add_argument("--period", type=float, default=6.0,
                       help="monitoring period in seconds (default: 6)")
    synth.add_argument("--profile", default="student-lab",
                       help="machine profile (student-lab, office-desktop, server-room)")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--out", required=True, help="output directory")
    synth.set_defaults(func=_cmd_synthesize)

    pred = sub.add_parser("predict", help="predict TR from a saved trace")
    pred.add_argument("--trace", required=True, help="path to a .npz trace")
    pred.add_argument("--start-hour", type=float, default=8.0)
    pred.add_argument("--hours", type=float, default=5.0)
    pred.add_argument("--weekend", action="store_true",
                      help="predict for weekends instead of weekdays")
    pred.add_argument("--step-multiple", type=int, default=10,
                      help="SMP step as a multiple of the monitoring period")
    pred.add_argument("--metrics-out", default=_DEFAULT_SNAPSHOT,
                      help="metrics snapshot path (default: %(default)s)")
    pred.set_defaults(func=_cmd_predict)

    obs = sub.add_parser("obs", help="render the metrics snapshot")
    obs.add_argument("--format", choices=("table", "prometheus"), default="table",
                     help="output format (default: table)")
    obs.add_argument("--metrics-in", default=_DEFAULT_SNAPSHOT,
                     help="snapshot to render (default: %(default)s)")
    obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
