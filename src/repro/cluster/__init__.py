"""repro.cluster — sharded, replicated multi-node serving.

The cluster tier turns N independent ``repro serve`` processes into one
availability-prediction service behind one socket:

* :mod:`repro.cluster.ring` places every machine on an R-replica set of
  backends via consistent hashing (stable, balanced, minimal movement);
* :mod:`repro.cluster.membership` probes backend health and applies
  mark-down/mark-up hysteresis;
* :mod:`repro.cluster.router` speaks the existing v2 wire protocol to
  clients and proxies per-op: owner-routed reads with transparent
  failover, scatter-gather ``rank``/``select``, quorum-replicated
  writes;
* :mod:`repro.cluster.node` supervises the backend processes (each with
  its own durable store, warm-started on restart) and hosts the local
  cluster/bench/test harnesses.

See README "Clustering" for topology and failure-mode documentation.
"""

from repro.cluster.membership import Membership, NodeHealth
from repro.cluster.node import (
    LocalCluster,
    NodeSpec,
    RouterThread,
    SupervisedNode,
    free_port,
    wait_for_port,
)
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, RouterConfig

__all__ = [
    "HashRing",
    "Membership",
    "NodeHealth",
    "ClusterRouter",
    "RouterConfig",
    "NodeSpec",
    "SupervisedNode",
    "LocalCluster",
    "RouterThread",
    "free_port",
    "wait_for_port",
]
