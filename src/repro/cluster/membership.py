"""Backend health tracking: periodic probes with mark-down hysteresis.

The router must not route to a dead backend (every request would pay a
connect timeout before failing over) and must not flap a slow-but-alive
backend out of the ring (mark-down dumps its load onto the survivors).
Both failure modes are handled the standard way — consecutive-outcome
hysteresis around a periodic probe of the existing wire-protocol
``health`` op:

* a node is marked **down** only after ``down_after`` consecutive probe
  failures (one dropped packet does not evict a replica);
* a down node is marked **up** only after ``up_after`` consecutive
  probe successes (a restarting node must prove itself before load
  returns to it).

The router also feeds *passive* evidence in: a connection error on a
proxied request counts as one probe failure (``report_failure``), so a
SIGKILLed backend is usually suspected by the very request that first
hits it, ahead of the probe period.

Mark-down never changes the hash ring — placement is stable, a down
node keeps owning its shards and reads fail over to the other replicas.
That is what bounds failover to "try the next owner" instead of a
rebalance storm.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.serve.protocol import Request, Response

__all__ = ["NodeHealth", "Membership"]


@dataclass
class NodeHealth:
    """Mutable probe state of one backend node."""

    node_id: str
    host: str
    port: int
    up: bool = True
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    #: Last successful ``health`` payload (queue depth, machines, ...).
    last_payload: Mapping[str, Any] | None = None
    last_change_monotonic: float = field(default_factory=time.monotonic)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class Membership:
    """Health states of a fixed node set, driven by an asyncio probe loop."""

    def __init__(
        self,
        addresses: Mapping[str, tuple[str, int]],
        *,
        probe_interval_s: float = 0.5,
        probe_timeout_s: float = 1.0,
        down_after: int = 2,
        up_after: int = 2,
    ) -> None:
        if down_after < 1 or up_after < 1:
            raise ValueError("down_after and up_after must be >= 1")
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.down_after = down_after
        self.up_after = up_after
        self._nodes = {
            node_id: NodeHealth(node_id=node_id, host=host, port=port)
            for node_id, (host, port) in addresses.items()
        }
        self._task: asyncio.Task | None = None
        #: Transition hooks, invoked on the probe loop's event loop at
        #: the moment a node is marked down / back up (not per failure).
        #: The router uses them to trigger job re-placement; exceptions
        #: are swallowed so a hook bug cannot kill health tracking.
        self.on_down: Callable[[str], None] | None = None
        self.on_up: Callable[[str], None] | None = None
        for node_id in self._nodes:
            instrument("cluster_node_up").labels(node=node_id).set(1)

    # ------------------------------------------------------------------ #
    # queries (called from the router's event loop only)
    # ------------------------------------------------------------------ #

    @property
    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def node(self, node_id: str) -> NodeHealth:
        return self._nodes[node_id]

    def address(self, node_id: str) -> tuple[str, int]:
        st = self._nodes[node_id]
        return st.host, st.port

    def is_up(self, node_id: str) -> bool:
        return self._nodes[node_id].up

    def up_nodes(self) -> list[str]:
        return [n for n, st in self._nodes.items() if st.up]

    def prefer_up(self, node_ids: list[str]) -> list[str]:
        """Reorder ``node_ids``: up nodes first, order otherwise kept.

        Down nodes stay at the tail as a last resort — when every owner
        of a shard is marked down the router still *tries* them rather
        than refusing outright, so a wrongly-suspected node can answer.
        """
        return [n for n in node_ids if self.is_up(n)] + [
            n for n in node_ids if not self.is_up(n)
        ]

    def status(self) -> dict[str, dict[str, Any]]:
        """Per-node health summary (the ``cluster status`` payload)."""
        out: dict[str, dict[str, Any]] = {}
        for node_id, st in self._nodes.items():
            payload = dict(st.last_payload) if st.last_payload else {}
            out[node_id] = {
                "address": st.address,
                "state": "up" if st.up else "down",
                "consecutive_failures": st.consecutive_failures,
                "machines": payload.get("machines"),
                "queue_depth": payload.get("queue_depth"),
                "backend_status": payload.get("status"),
            }
        return out

    # ------------------------------------------------------------------ #
    # evidence
    # ------------------------------------------------------------------ #

    def report_failure(self, node_id: str) -> None:
        """Count one failure against a node (probe or proxied request)."""
        st = self._nodes[node_id]
        st.consecutive_successes = 0
        st.consecutive_failures += 1
        instrument("cluster_probe_failures_total").labels(node=node_id).inc()
        if st.up and st.consecutive_failures >= self.down_after:
            st.up = False
            st.last_change_monotonic = time.monotonic()
            instrument("cluster_node_up").labels(node=node_id).set(0)
            get_event_log().emit(
                "cluster_node_down",
                severity="warning",
                node=node_id,
                address=st.address,
                failures=st.consecutive_failures,
            )
            self._notify(self.on_down, node_id)

    def report_success(self, node_id: str, payload: Mapping[str, Any] | None = None) -> None:
        """Count one success for a node (probe or proxied request)."""
        st = self._nodes[node_id]
        st.consecutive_failures = 0
        st.consecutive_successes += 1
        if payload is not None:
            st.last_payload = payload
        if not st.up and st.consecutive_successes >= self.up_after:
            st.up = True
            st.last_change_monotonic = time.monotonic()
            instrument("cluster_node_up").labels(node=node_id).set(1)
            get_event_log().emit(
                "cluster_node_up", node=node_id, address=st.address
            )
            self._notify(self.on_up, node_id)

    @staticmethod
    def _notify(hook: Callable[[str], None] | None, node_id: str) -> None:
        if hook is None:
            return
        try:
            hook(node_id)
        except Exception as exc:
            get_event_log().emit(
                "membership_hook_error",
                severity="error",
                node=node_id,
                error=f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------------ #
    # probe loop
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the periodic probe task on the running event loop."""
        if self._task is None:
            self._task = asyncio.ensure_future(self._probe_loop())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def probe_all(self) -> None:
        """One probe round across every node (also used by tests)."""
        await asyncio.gather(
            *(self._probe_one(node_id) for node_id in self._nodes),
            return_exceptions=True,
        )

    async def _probe_loop(self) -> None:
        while True:
            await self.probe_all()
            await asyncio.sleep(self.probe_interval_s)

    async def _probe_one(self, node_id: str) -> None:
        st = self._nodes[node_id]
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(st.host, st.port), self.probe_timeout_s
            )
            writer.write(Request(op="health", id="probe").encode())
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), self.probe_timeout_s)
            if not line:
                raise ConnectionError("backend closed the probe connection")
            resp = Response.decode(line)
            if not resp.ok:
                raise ConnectionError(f"health answered {resp.status!r}")
            self.report_success(node_id, resp.result)
        except (OSError, asyncio.TimeoutError, ValueError):
            self.report_failure(node_id)
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass
