"""Supervised backend nodes: one serve process + one store each.

A cluster backend is nothing new — it is exactly the single-node
``repro serve --store`` process of the serving and storage tiers, with
two properties the cluster layers on top:

* **its own store** — each node persists only the shards routed to it,
  so a node's disk is its shard set and a restarted node recovers
  *itself* (warm start) without asking anyone else for data;
* **supervision** — :class:`SupervisedNode` relaunches the process when
  it dies (crash, SIGKILL), on the *same* port and store directory, so
  the hash ring and the router's address book never change.  Quorum
  writes (R ≥ 2) are what make this sufficient: everything the dead
  node acknowledged is in its WAL, and everything it missed while down
  lives on the other replicas, which keep answering reads meanwhile.

:class:`LocalCluster` composes N supervised nodes for the CLI, the
bench and the tests; :class:`RouterThread` hosts a
:class:`~repro.cluster.router.ClusterRouter` on a dedicated event-loop
thread for callers that are not themselves async (bench, tests).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.router import ClusterRouter, RouterConfig
from repro.obs.events import get_event_log

__all__ = [
    "NodeSpec",
    "SupervisedNode",
    "LocalCluster",
    "RouterThread",
    "free_port",
    "wait_for_port",
]


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind, read, release)."""
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def wait_for_port(host: str, port: int, timeout_s: float = 20.0) -> bool:
    """Poll until a TCP connect to ``host:port`` succeeds."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False


@dataclass(frozen=True)
class NodeSpec:
    """Identity and launch parameters of one backend node."""

    node_id: str
    store_dir: Path
    host: str = "127.0.0.1"
    #: Fixed port (0: pick a free one at first start and pin it).
    port: int = 0
    fsync: str = "always"
    workers: int = 2
    queue_depth: int = 64
    #: Enable the prediction audit on this backend (the router's
    #: ``quality`` op merges the per-node scoreboards).
    audit: bool = False
    #: Durable audit-journal directory (None with audit on: memory-only).
    audit_dir: Path | None = None
    #: JSONL file this node appends its trace spans to (None: no sink).
    #: Eagerly flushed, so a SIGKILLed node's spans survive for
    #: ``repro trace`` to merge.
    trace_out: Path | None = None
    #: Metrics-snapshot file the node writes on SIGTERM drain.
    metrics_out: Path | None = None
    #: Durable scheduler-WAL directory (None: memory-only JobManager).
    sched_dir: Path | None = None
    #: Guest CPU-seconds completed per wall second on this node's
    #: JobManager (tests/bench compress simulated hours into seconds).
    sched_speedup: float = 1.0

    def command(self, port: int) -> list[str]:
        """The serve process argv for this spec bound to ``port``."""
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", str(port),
            "--store", str(self.store_dir),
            "--fsync", self.fsync,
            "--workers", str(self.workers),
            "--queue-depth", str(self.queue_depth),
            "--node-id", self.node_id,
        ]
        if self.audit or self.audit_dir is not None:
            argv.append("--audit")
        if self.audit_dir is not None:
            argv += ["--audit-dir", str(self.audit_dir)]
        if self.sched_dir is not None:
            argv += ["--sched-dir", str(self.sched_dir)]
        if self.sched_speedup != 1.0:
            argv += ["--sched-speedup", str(self.sched_speedup)]
        if self.trace_out is not None:
            argv += ["--trace-out", str(self.trace_out)]
        if self.metrics_out is not None:
            argv += ["--metrics-out", str(self.metrics_out)]
        return argv


class SupervisedNode:
    """One backend serve process, relaunched on the same port when it dies."""

    def __init__(
        self,
        spec: NodeSpec,
        *,
        supervise: bool = True,
        restart_backoff_s: float = 0.2,
        start_timeout_s: float = 30.0,
    ) -> None:
        self.spec = spec
        self.port = spec.port or free_port(spec.host)
        self.supervise = supervise
        self.restart_backoff_s = restart_backoff_s
        self.start_timeout_s = start_timeout_s
        self.restarts = 0
        self._proc: subprocess.Popen | None = None
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    @property
    def node_id(self) -> str:
        return self.spec.node_id

    @property
    def address(self) -> tuple[str, int]:
        return self.spec.host, self.port

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Launch the serve process and wait until it accepts connections."""
        self.spec.store_dir.mkdir(parents=True, exist_ok=True)
        self._launch()
        if self.supervise and self._monitor is None:
            self._monitor = threading.Thread(
                target=self._watch, name=f"supervise-{self.node_id}", daemon=True
            )
            self._monitor.start()

    def _launch(self) -> None:
        # The child must import the same repro package as this process,
        # regardless of the parent's CWD or install mode.
        env = dict(os.environ)
        pkg_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._proc = subprocess.Popen(
            self.spec.command(self.port),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        if not wait_for_port(self.spec.host, self.port, self.start_timeout_s):
            raise RuntimeError(
                f"backend {self.node_id} did not start listening on "
                f"{self.spec.host}:{self.port} within {self.start_timeout_s}s"
            )

    def _watch(self) -> None:
        while not self._stopping.is_set():
            proc = self._proc
            if proc is not None and proc.poll() is not None:
                get_event_log().emit(
                    "cluster_node_restarting",
                    severity="warning",
                    node=self.node_id,
                    exit_code=proc.returncode,
                )
                time.sleep(self.restart_backoff_s)
                if self._stopping.is_set():
                    return
                try:
                    self._launch()
                    self.restarts += 1
                except RuntimeError:
                    continue  # port still draining; retry next tick
            self._stopping.wait(0.1)

    # ------------------------------------------------------------------ #

    def kill(self) -> None:
        """SIGKILL the process (supervision, if on, will relaunch it)."""
        if self._proc is not None and self._proc.poll() is None:
            self._proc.send_signal(signal.SIGKILL)
            self._proc.wait()

    def stop(self, timeout_s: float = 15.0) -> None:
        """Stop supervision and terminate the process (graceful drain)."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout_s)
            self._monitor = None
        if self._proc is not None and self._proc.poll() is None:
            self._proc.send_signal(signal.SIGTERM)
            try:
                self._proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()


class LocalCluster:
    """N supervised backends under one data directory, for one router."""

    def __init__(
        self,
        data_dir: str | Path,
        n_nodes: int,
        *,
        host: str = "127.0.0.1",
        fsync: str = "always",
        workers: int = 2,
        queue_depth: int = 64,
        supervise: bool = True,
        audit: bool = False,
        trace: bool = False,
        metrics: bool = False,
        sched: bool = False,
        sched_speedup: float = 1.0,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.data_dir = Path(data_dir)
        self.nodes: list[SupervisedNode] = [
            SupervisedNode(
                NodeSpec(
                    node_id=f"node-{i}",
                    store_dir=self.data_dir / f"node-{i}" / "store",
                    host=host,
                    fsync=fsync,
                    workers=workers,
                    queue_depth=queue_depth,
                    audit=audit,
                    audit_dir=(
                        self.data_dir / f"node-{i}" / "audit" if audit else None
                    ),
                    trace_out=(
                        self.data_dir / f"node-{i}" / "trace.jsonl" if trace else None
                    ),
                    metrics_out=(
                        self.data_dir / f"node-{i}" / "metrics.json" if metrics else None
                    ),
                    sched_dir=(
                        self.data_dir / f"node-{i}" / "sched" if sched else None
                    ),
                    sched_speedup=sched_speedup,
                ),
                supervise=supervise,
            )
            for i in range(n_nodes)
        ]

    @property
    def trace_files(self) -> list[Path]:
        """Per-node span sinks (present only when built with trace=True)."""
        return [
            node.spec.trace_out for node in self.nodes
            if node.spec.trace_out is not None
        ]

    @property
    def addresses(self) -> dict[str, tuple[str, int]]:
        """``node_id -> (host, port)`` for building a router."""
        return {node.node_id: node.address for node in self.nodes}

    def node(self, node_id: str) -> SupervisedNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"unknown node {node_id!r}")

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    def stop(self) -> None:
        for node in self.nodes:
            node.stop()

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def write_spec(self, path: str | Path, router_host: str, router_port: int) -> Path:
        """Persist the cluster layout for ``cluster status`` / ``stop``."""
        spec = {
            "router": {"host": router_host, "port": router_port},
            "pid": os.getpid(),
            "nodes": [
                {
                    "node_id": node.node_id,
                    "host": node.spec.host,
                    "port": node.port,
                    "store": str(node.spec.store_dir),
                    "pid": node.pid,
                }
                for node in self.nodes
            ],
        }
        path = Path(path)
        path.write_text(json.dumps(spec, indent=2) + "\n")
        return path


@dataclass
class RouterThread:
    """A :class:`ClusterRouter` hosted on a dedicated event-loop thread."""

    addresses: dict[str, tuple[str, int]]
    config: RouterConfig = field(default_factory=RouterConfig)
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self.router = ClusterRouter(
            self.addresses, host=self.host, port=0, config=self.config
        )
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="cluster-router-loop", daemon=True
        )
        self._thread.start()
        self.run(self.router.start())

    @property
    def port(self) -> int:
        return self.router.port

    def run(self, coro):  # noqa: ANN001 - passthrough helper
        """Run a coroutine on the router's loop and return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(60)

    def stop(self) -> None:
        self.run(self.router.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
