"""Consistent-hash ring: stable ``machine_id -> replica set`` placement.

The cluster shards the machine universe across its backend nodes with
the classic consistent-hashing construction: every node is hashed onto
a circle at ``vnodes`` pseudo-random points (virtual nodes), and a key
is owned by the first ``replicas`` *distinct* nodes found walking the
circle clockwise from the key's own hash.  Two properties make this the
right placement function for a serving tier whose membership changes:

* **balance** — with enough virtual nodes the arc owned by each node
  concentrates around 1/N of the circle, so shards stay within a few
  percent of each other (``tests/cluster/test_ring.py`` pins the
  tolerance);
* **minimal movement** — adding or removing one node only reassigns the
  keys whose clockwise walk crosses that node's points, about 1/N of
  the keyspace, instead of reshuffling everything the way ``hash(key)
  % N`` does.

Hashing uses MD5 (as a mixer, not for security): it is stable across
processes and Python versions, unlike the builtin ``hash`` which is
randomized per process — two routers built over the same node list
MUST agree on every key's owners.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """Position of ``key`` on the ring circle (first 8 MD5 bytes)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping keys to an R-replica node set."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        *,
        vnodes: int = 64,
        replicas: int = 2,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.vnodes = vnodes
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners_at: list[str] = []  # node owning self._points[i]
        for node in nodes:
            self._nodes.add(node)
        self._rebuild()

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> list[str]:
        """Current member nodes, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Add one node (idempotent)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._rebuild()

    def remove_node(self, node: str) -> None:
        """Remove one node."""
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{node}#{v}"), node)
            for node in self._nodes
            for v in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners_at = [n for _, n in pairs]

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #

    def owners(self, key: str) -> list[str]:
        """The replica set of ``key``: first R distinct nodes clockwise.

        The first entry is the *primary* (preferred for reads); the rest
        are the failover order.  With fewer than R member nodes every
        node owns every key.
        """
        if not self._nodes:
            raise LookupError("hash ring has no nodes")
        start = bisect.bisect_right(self._points, _point(key))
        want = min(self.replicas, len(self._nodes))
        found: list[str] = []
        for i in range(len(self._points)):
            node = self._owners_at[(start + i) % len(self._points)]
            if node not in found:
                found.append(node)
                if len(found) == want:
                    break
        return found

    def primary(self, key: str) -> str:
        """The primary owner of ``key``."""
        return self.owners(key)[0]

    def shard_counts(self, keys: Sequence[str]) -> dict[str, int]:
        """Primary-ownership tally of ``keys`` per node (balance probe)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts
