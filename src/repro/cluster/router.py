"""The cluster frontend: one socket, many sharded/replicated backends.

The router speaks the *same* JSON-lines wire protocol as a single
``repro serve`` process (:mod:`repro.serve.protocol`), so every
existing client — ``repro query``, :class:`~repro.serve.client.ServeClient`,
a scheduler with a socket — talks to a cluster by changing nothing but
the port.  Behind the socket each op is routed by kind:

* **single-machine reads** (``predict``, ``horizon``) go to the
  machine's primary owner on the hash ring; on a connection error or a
  backpressure answer (``shed`` / ``shutting_down``) the router fails
  over to the next replica transparently, so a SIGKILLed backend costs
  the client nothing but latency;
* **fan-out reads** (``rank``, ``select``) scatter to every live node
  and merge: replicas report the same machine twice, the merge dedups,
  and ``select`` re-runs the top-k + gang-survival math on the merged
  TR map so its answer is identical to a single-node deployment;
* **writes** (``register``, ``extend``) fan out to *all* R owners of
  the machine and succeed only with a write quorum of ⌈(R+1)/2⌉ acks —
  for the default R=2 that is both replicas, which is what lets a
  restarted node warm-start from its own store and still hold every
  byte it ever acknowledged;
* **health** is answered by the router itself with the cluster view
  (per-node up/down, ring shape) — it must work while backends are
  down, because it is how operators see that they are down.

The router holds no machine data: placement is pure hashing, health is
probed, and every byte of history lives in the backends' stores.  A
router restart therefore loses nothing and needs no recovery.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.adapt.controller import merge_adapt_status
from repro.audit.scoreboard import merge_quality
from repro.cluster.membership import Membership
from repro.cluster.ring import HashRing
from repro.core.multi import group_survival, select_best_k
from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.obs.tracing import TraceContext, current_context, start_span, use_context
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    STATUS_ERROR,
    ProtocolError,
    Request,
    Response,
    min_version,
)

__all__ = ["RouterConfig", "ClusterRouter"]

#: Ops answered by proxying to the single owning replica set.
_SINGLE_MACHINE_OPS = frozenset({"predict", "horizon", "tail"})
#: Ops answered by scatter-gather across every shard.
_SCATTER_OPS = frozenset({"rank", "select"})
#: Fleet batch ops (protocol v7): each shard answers for the machines it
#: owns (``missing_ok``) and the router merges the per-machine entries.
_FLEET_OPS = frozenset({"predict_batch", "fleet_scan"})
#: Ops merged from per-node audit state (never deduplicated: each node
#: journaled only the predictions it served).
_QUALITY_OPS = frozenset({"quality"})
#: Ops fanned out to all R owners under a write quorum.
_WRITE_OPS = frozenset({"register", "extend"})
#: Scheduling ops owned by the *job* key's replica set (protocol v5).
#: ``job_status`` proxies with failover; ``cancel`` and ``job_put`` are
#: quorum writes so every owner's JobManager converges.
_JOB_SINGLE_OPS = frozenset({"job_status"})
_JOB_WRITE_OPS = frozenset({"cancel", "job_put"})
#: ``jobs`` scatters to every live node and dedups by job id.
_JOB_SCATTER_OPS = frozenset({"jobs"})
#: ``replace`` broadcasts to every live node (each JobManager re-places
#: its own affected jobs); also triggered internally on node death.
_JOB_BROADCAST_OPS = frozenset({"replace"})
#: Adapt-tier state is per-node like audit state: scatter and merge.
_ADAPT_STATUS_OPS = frozenset({"adapt_status"})
#: Retune/promote change the machine's serving model, which lives on
#: every owner of the machine — quorum writes, but they never touch the
#: machine catalog (they create no history).
_ADAPT_WRITE_OPS = frozenset({"adapt_retune", "adapt_promote"})


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of one :class:`ClusterRouter`."""

    #: Replication factor R: copies of each machine's history.
    replicas: int = 2
    #: Virtual nodes per backend on the hash ring.
    vnodes: int = 64
    #: Seconds to establish one backend connection.
    connect_timeout_s: float = 2.0
    #: Seconds to wait for one backend response (None: unbounded).
    request_timeout_s: float | None = 30.0
    #: Idle pooled connections kept per backend.
    pool_idle_per_node: int = 8
    #: Health-probe period.
    probe_interval_s: float = 0.5
    #: Consecutive failures before mark-down / successes before mark-up.
    down_after: int = 2
    up_after: int = 2

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")

    @property
    def write_quorum(self) -> int:
        """Acks required for a write: ⌈(R+1)/2⌉ (majority of R+1)."""
        return (self.replicas + 2) // 2


class _BackendPool:
    """Pooled JSON-lines connections to the backends, one in use per call."""

    def __init__(self, membership: Membership, config: RouterConfig) -> None:
        self._membership = membership
        self._config = config
        self._idle: dict[str, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]] = {}
        self._ids = itertools.count(1)

    async def call(self, node_id: str, request: Request) -> Response:
        """One request/response round-trip against ``node_id``.

        Raises ``ConnectionError``/``OSError``/``TimeoutError`` when the
        backend is unreachable or the connection breaks mid-request; the
        broken connection is discarded, never pooled.
        """
        conn = await self._acquire(node_id)
        reader, writer = conn
        # The ambient trace context (the router span this call runs
        # under) rides the forwarded request, so backend-side spans join
        # the same trace.  Backends too old for v4 ignore the field.
        ctx = current_context()
        forwarded = Request(
            op=request.op,
            params=request.params,
            id=f"r{next(self._ids)}",
            deadline_ms=request.deadline_ms,
            version=min_version(request.op),
            trace=None if ctx is None else ctx.to_wire(),
        )
        try:
            writer.write(forwarded.encode())
            await writer.drain()
            line = await self._bounded(reader.readline())
            if not line:
                raise ConnectionError(f"backend {node_id} closed the connection")
            resp = Response.decode(line)
            if resp.id != forwarded.id:
                raise ProtocolError(
                    f"backend {node_id} answered id {resp.id!r}, "
                    f"expected {forwarded.id!r}"
                )
        except BaseException:
            await _close_quietly(writer)
            raise
        self._release(node_id, conn)
        return resp

    async def _bounded(self, coro: Any) -> Any:
        if self._config.request_timeout_s is None:
            return await coro
        return await asyncio.wait_for(coro, self._config.request_timeout_s)

    async def _acquire(
        self, node_id: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        idle = self._idle.get(node_id)
        while idle:
            reader, writer = idle.pop()
            if not writer.is_closing():
                return reader, writer
            await _close_quietly(writer)
        host, port = self._membership.address(node_id)
        return await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=MAX_LINE_BYTES),
            self._config.connect_timeout_s,
        )

    def _release(
        self, node_id: str, conn: tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        idle = self._idle.setdefault(node_id, [])
        if len(idle) < self._config.pool_idle_per_node and not conn[1].is_closing():
            idle.append(conn)
        else:
            conn[1].close()

    async def close(self) -> None:
        for conns in self._idle.values():
            for _, writer in conns:
                await _close_quietly(writer)
        self._idle.clear()


async def _close_quietly(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (OSError, asyncio.CancelledError):
        pass


class ClusterRouter:
    """Protocol-compatible frontend over N sharded, replicated backends."""

    def __init__(
        self,
        nodes: Mapping[str, tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: RouterConfig | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one backend node")
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.config = config or RouterConfig()
        self.ring = HashRing(
            nodes, vnodes=self.config.vnodes, replicas=self.config.replicas
        )
        self.membership = Membership(
            nodes,
            probe_interval_s=self.config.probe_interval_s,
            probe_timeout_s=self.config.connect_timeout_s,
            down_after=self.config.down_after,
            up_after=self.config.up_after,
        )
        self._pool = _BackendPool(self.membership, self.config)
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = time.monotonic()
        #: Machines seen in acknowledged register/extend writes.  When a
        #: node dies, the machines it primarily owns are treated as dead
        #: hosts and the surviving JobManagers re-place their jobs.
        self._machine_catalog: set[str] = set()
        self._replace_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind, start probing, start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.membership.on_down = self._on_node_down
        self.membership.on_up = self._on_node_up
        self.membership.start()
        get_event_log().emit(
            "cluster_router_started",
            host=self.host,
            port=self.port,
            nodes=len(self.ring),
            replicas=self.config.replicas,
        )

    async def stop(self) -> None:
        """Stop accepting, close backend pools and the probe loop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.membership.stop()
        for task in list(self._replace_tasks):
            task.cancel()
        if self._replace_tasks:
            await asyncio.gather(*self._replace_tasks, return_exceptions=True)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self._pool.close()
        get_event_log().emit("cluster_router_stopped")

    async def serve_forever(self) -> None:
        """Run until cancelled (start() must have been called)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    # connection handling (same framing discipline as ServeServer)
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                t = asyncio.ensure_future(self._answer(line, writer, write_lock))
                pending.add(t)
                t.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for t in pending:
                t.cancel()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _answer(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        t0 = time.perf_counter()
        op = "invalid"
        try:
            request = Request.decode(line)
            op = request.op
            if request.trace is not None:
                # Adopt the client's context for this task: every span
                # below (and every forwarded backend call) joins its trace.
                ctx = TraceContext.from_wire(request.trace)
                with use_context(ctx), start_span("router.route", "router", op=op):
                    response = await self._route(request)
            else:
                response = await self._route(request)
        except ProtocolError as exc:
            response = Response.failure("", STATUS_ERROR, "ProtocolError", str(exc))
        except Exception as exc:  # routing bug: answer, don't drop the line
            response = Response.failure(
                "", STATUS_ERROR, type(exc).__name__, str(exc)
            )
        outcome = "ok" if response.ok else response.status
        instrument("cluster_requests_routed_total").labels(op=op, outcome=outcome).inc()
        if response.elapsed_ms is None:
            response = Response(
                id=response.id,
                status=response.status,
                result=response.result,
                error=response.error,
                coalesced=response.coalesced,
                elapsed_ms=(time.perf_counter() - t0) * 1e3,
            )
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(response.encode())
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    async def _route(self, request: Request) -> Response:
        if request.op == "health":
            return Response.success(request.id, self._cluster_health())
        if request.op in _SINGLE_MACHINE_OPS:
            return await self._route_single(request)
        if request.op in _SCATTER_OPS:
            return await self._route_scatter(request)
        if request.op in _FLEET_OPS:
            return await self._route_fleet(request)
        if request.op in _QUALITY_OPS:
            return await self._route_quality(request)
        if request.op in _WRITE_OPS:
            return await self._route_write(request)
        if request.op == "submit":
            return await self._route_submit(request)
        if request.op in _JOB_SINGLE_OPS:
            return await self._route_single(request)
        if request.op in _JOB_WRITE_OPS:
            return await self._route_write(request)
        if request.op in _JOB_SCATTER_OPS:
            return await self._route_jobs(request)
        if request.op in _JOB_BROADCAST_OPS:
            return await self._route_broadcast(request)
        if request.op in _ADAPT_STATUS_OPS:
            return await self._route_adapt_status(request)
        if request.op in _ADAPT_WRITE_OPS:
            return await self._route_write(request)
        return Response.failure(
            request.id, STATUS_ERROR, "ProtocolError",
            f"op {request.op!r} is not routable"
        )

    async def _call_timed(self, node_id: str, request: Request) -> Response:
        t0 = time.perf_counter()
        try:
            resp = await self._pool.call(node_id, request)
        except (OSError, asyncio.TimeoutError):
            self.membership.report_failure(node_id)
            raise
        finally:
            instrument("cluster_shard_latency_seconds").labels(node=node_id).observe(
                time.perf_counter() - t0
            )
        return resp

    async def _call_traced(self, node_id: str, request: Request, **attrs: Any) -> Response:
        """One backend call under a ``router.call`` span (fan-out paths)."""
        with start_span("router.call", "router", node=node_id, **attrs):
            return await self._call_timed(node_id, request)

    def _owner_key(self, request: Request) -> str:
        # Job ops shard by the job id (prefixed so job and machine key
        # spaces never collide on the ring); everything else by machine.
        if request.op == "job_put":
            record = request.params.get("record")
            if not isinstance(record, Mapping) or "job" not in record:
                raise ProtocolError("job_put needs params['record']['job']")
            return f"job:{record['job']}"
        if request.op in ("submit", "job_status", "cancel"):
            job = request.params.get("job")
            if job is None:
                raise ProtocolError(f"missing required param 'job' for {request.op!r}")
            return f"job:{job}"
        machine = request.params.get("machine")
        if machine is None:
            raise ProtocolError(f"missing required param 'machine' for {request.op!r}")
        return str(machine)

    async def _route_single(self, request: Request) -> Response:
        """Proxy to the owning replica set, failing over in ring order."""
        owners = self.membership.prefer_up(self.ring.owners(self._owner_key(request)))
        backpressure: Response | None = None
        for attempt, node_id in enumerate(owners):
            # attempt > 0 IS the failover hop: the span records which
            # replica answered after the preferred owner failed.
            with start_span(
                "router.attempt", "router",
                node=node_id, attempt=attempt, failover=attempt > 0,
            ) as sp:
                try:
                    resp = await self._call_timed(node_id, request)
                except (OSError, asyncio.TimeoutError) as exc:
                    if sp is not None:
                        sp.set(outcome=f"unreachable:{type(exc).__name__}")
                    if attempt + 1 < len(owners):
                        instrument("cluster_failovers_total").inc()
                    continue
                if sp is not None:
                    sp.set(outcome=resp.status)
            if resp.backpressure:
                backpressure = resp
                if attempt + 1 < len(owners):
                    instrument("cluster_failovers_total").inc()
                continue
            # ok — or a semantic error the next replica would repeat.
            return Response(
                id=request.id,
                status=resp.status,
                result=resp.result,
                error=resp.error,
                coalesced=resp.coalesced,
            )
        if backpressure is not None:
            return Response(
                id=request.id,
                status=backpressure.status,
                error=backpressure.error,
            )
        return Response.failure(
            request.id, STATUS_ERROR, "NoReplicaAvailable",
            f"all {len(owners)} replicas of "
            f"{self._owner_key(request)!r} are unreachable",
        )

    async def _route_scatter(self, request: Request) -> Response:
        """Scatter ``rank``/``select`` to every live shard and merge."""
        targets = self.membership.up_nodes() or self.membership.node_ids
        # The backend math for select is top-k over the *global* TR map,
        # so both ops scatter as `rank` and the router re-derives select.
        scatter = Request(
            op="rank",
            params={
                k: v for k, v in request.params.items() if k != "k"
            },
            deadline_ms=request.deadline_ms,
        )
        with start_span("router.scatter", "router", op=request.op, targets=len(targets)):
            results = await asyncio.gather(
                *(self._call_traced(n, scatter) for n in targets),
                return_exceptions=True,
            )
        trs: dict[str, float] = {}
        errors: list[Response] = []
        nodes_ok = 0
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            if not resp.ok:
                errors.append(resp)
                continue
            nodes_ok += 1
            for entry in resp.result["ranking"]:
                # Replicas answer from byte-identical histories; first
                # answer wins, duplicates are dropped.
                trs.setdefault(entry["machine"], entry["tr"])
        if nodes_ok == 0:
            if errors:
                first = errors[0]
                return Response(
                    id=request.id, status=first.status, error=first.error
                )
            return Response.failure(
                request.id, STATUS_ERROR, "NoReplicaAvailable",
                "no shard answered the scatter",
            )
        shards = {"queried": len(targets), "ok": nodes_ok,
                  "partial": nodes_ok < len(targets)}
        if request.op == "rank":
            order = sorted(trs.items(), key=lambda kv: (-kv[1], kv[0]))
            result: dict[str, Any] = {
                "ranking": [{"machine": m, "tr": tr} for m, tr in order],
                "shards": shards,
            }
            return Response.success(request.id, result)
        k = int(request.params.get("k", 1))
        try:
            chosen = select_best_k(trs, k)
        except ValueError as exc:
            return Response.failure(
                request.id, STATUS_ERROR, "ValueError", str(exc)
            )
        return Response.success(
            request.id,
            {
                "machines": chosen,
                "survival": group_survival([trs[m] for m in chosen]),
                "k": k,
                "shards": shards,
            },
        )

    async def _route_fleet(self, request: Request) -> Response:
        """Scatter a fleet batch op to every live shard and merge.

        Each shard runs *one* batched kernel solve over the machines it
        owns (``missing_ok`` makes it skip ids on other shards), so a
        cluster-wide ``fleet_scan`` costs one matrix pass per shard
        instead of N scalar predicts.  Replicas answer from
        byte-identical histories, so the first answer per machine wins.
        """
        targets = self.membership.up_nodes() or self.membership.node_ids
        scatter = Request(
            op=request.op,
            params=dict(request.params, missing_ok=True),
            deadline_ms=request.deadline_ms,
        )
        with start_span("router.scatter", "router", op=request.op, targets=len(targets)):
            results = await asyncio.gather(
                *(self._call_traced(n, scatter) for n in targets),
                return_exceptions=True,
            )
        key = "predictions" if request.op == "predict_batch" else "machines"
        merged: dict[str, Mapping[str, Any]] = {}
        errors: list[Response] = []
        nodes_ok = 0
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            if not resp.ok:
                errors.append(resp)
                continue
            nodes_ok += 1
            for entry in resp.result.get(key, ()):
                merged.setdefault(str(entry["machine"]), entry)
        if nodes_ok == 0:
            if errors:
                first = errors[0]
                return Response(id=request.id, status=first.status, error=first.error)
            return Response.failure(
                request.id, STATUS_ERROR, "NoReplicaAvailable",
                f"no shard answered the {request.op} scatter",
            )
        requested = request.params.get("machines")
        if requested is not None:
            missing = sorted(
                {str(m) for m in requested} - merged.keys()
            )
            if missing:
                return Response.failure(
                    request.id, STATUS_ERROR, "ProtocolError",
                    f"machines not registered: {', '.join(missing)}",
                )
        shards = {"queried": len(targets), "ok": nodes_ok,
                  "partial": nodes_ok < len(targets)}
        if request.op == "predict_batch":
            entries = [merged[m] for m in sorted(merged)]
        else:
            entries = sorted(
                merged.values(), key=lambda e: (-float(e["tr"]), str(e["machine"]))
            )
        result: dict[str, Any] = {
            key: entries,
            "count": len(entries),
            "shards": shards,
        }
        for resp in results:
            if isinstance(resp, Response) and resp.ok:
                if "horizons_hours" in (resp.result or {}):
                    result["horizons_hours"] = resp.result["horizons_hours"]
                break
        return Response.success(request.id, result)

    async def _route_quality(self, request: Request) -> Response:
        """Scatter ``quality`` to every live node and merge the bins.

        Audit state is per-node, not replicated: a machine's R owners
        each journaled the subset of predictions *they* served, so the
        per-bin sufficient statistics are summed across nodes — for the
        aggregate and per machine — and the pooled metrics re-derived.
        """
        targets = self.membership.up_nodes() or self.membership.node_ids
        with start_span("router.scatter", "router", op=request.op, targets=len(targets)):
            results = await asyncio.gather(
                *(self._call_traced(n, request) for n in targets),
                return_exceptions=True,
            )
        answers: list[Mapping[str, Any]] = []
        errors: list[Response] = []
        nodes_ok = 0
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            if not resp.ok:
                errors.append(resp)
                continue
            nodes_ok += 1
            answers.append(resp.result)
        if nodes_ok == 0:
            if errors:
                first = errors[0]
                return Response(id=request.id, status=first.status, error=first.error)
            return Response.failure(
                request.id, STATUS_ERROR, "NoReplicaAvailable",
                "no shard answered the quality scatter",
            )
        merged = merge_quality(answers)
        merged["shards"] = {
            "queried": len(targets),
            "ok": nodes_ok,
            "partial": nodes_ok < len(targets),
        }
        return Response.success(request.id, merged)

    async def _route_adapt_status(self, request: Request) -> Response:
        """Scatter ``adapt_status`` to every live node and merge.

        Adapt state is per-node (each owner runs its own trials for the
        machines it serves); counters sum and machine entries union,
        keeping the entry that saw the most retunes.
        """
        targets = self.membership.up_nodes() or self.membership.node_ids
        with start_span("router.scatter", "router", op=request.op, targets=len(targets)):
            results = await asyncio.gather(
                *(self._call_traced(n, request) for n in targets),
                return_exceptions=True,
            )
        answers: list[dict[str, Any]] = []
        errors: list[Response] = []
        nodes_ok = 0
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            if not resp.ok:
                errors.append(resp)
                continue
            nodes_ok += 1
            answers.append(resp.result)
        if nodes_ok == 0:
            if errors:
                first = errors[0]
                return Response(id=request.id, status=first.status, error=first.error)
            return Response.failure(
                request.id, STATUS_ERROR, "NoReplicaAvailable",
                "no shard answered the adapt_status scatter",
            )
        merged = merge_adapt_status(answers)
        merged["shards"] = {
            "queried": len(targets),
            "ok": nodes_ok,
            "partial": nodes_ok < len(targets),
        }
        return Response.success(request.id, merged)

    async def _route_write(self, request: Request) -> Response:
        """Fan a write out to all R owners; ack only on a write quorum."""
        owners = self.ring.owners(self._owner_key(request))
        quorum = min(self.config.write_quorum, len(owners))
        # The quorum wait is the write's latency floor: the gather
        # resolves only when every owner answered or failed, and the
        # span's children show which replica was the straggler.
        with start_span(
            "router.quorum_wait", "router",
            op=request.op, replicas=len(owners), required=quorum,
        ) as sp:
            results = await asyncio.gather(
                *(self._call_traced(n, request) for n in owners),
                return_exceptions=True,
            )
            if sp is not None:
                sp.set(acks=sum(1 for r in results
                                if isinstance(r, Response) and r.ok))
        acks: list[Response] = []
        refusals: list[Response] = []
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            (acks if resp.ok else refusals).append(resp)
        if len(acks) < quorum:
            # A semantic refusal (bad grid, gap) is the same on every
            # replica — surface it rather than a generic quorum error.
            for refusal in refusals:
                if not refusal.backpressure:
                    return Response(
                        id=request.id, status=refusal.status, error=refusal.error
                    )
            return Response.failure(
                request.id, STATUS_ERROR, "QuorumNotMet",
                f"write acknowledged by {len(acks)}/{len(owners)} replicas, "
                f"quorum is {quorum}",
            )
        result = dict(acks[0].result)
        degraded = len(acks) < len(owners)
        if degraded:
            instrument("cluster_quorum_degraded_total").inc()
        result["quorum"] = {
            "acks": len(acks),
            "replicas": len(owners),
            "required": quorum,
            "degraded": degraded,
        }
        if request.op in _WRITE_OPS:
            # An acknowledged history write makes this machine part of
            # the placement pool the node-death hook reasons about.
            self._machine_catalog.add(self._owner_key(request))
        return Response.success(request.id, result)

    # ------------------------------------------------------------------ #
    # scheduling ops (protocol v5)
    # ------------------------------------------------------------------ #

    async def _route_submit(self, request: Request) -> Response:
        """Two-phase submit: place at the primary owner, then replicate.

        Each backend holds only its shard of machine histories, so
        independent placement at every owner would diverge.  Instead the
        job-key's primary owner (with failover) places *and* adopts the
        job; the router then fans the resulting record out to the full
        R owner set as ``job_put`` under the write quorum.  The placer's
        own adopt is a version-equal no-op, so the fan-out is idempotent.
        """
        placed = await self._route_single(request)
        if not placed.ok or not isinstance(placed.result, Mapping):
            return placed
        record = placed.result.get("record")
        if not isinstance(record, Mapping):
            return placed
        put = Request(
            op="job_put",
            params={"record": record},
            deadline_ms=request.deadline_ms,
        )
        replicated = await self._route_write(put)
        if not replicated.ok:
            return Response(
                id=request.id,
                status=replicated.status,
                error=replicated.error,
            )
        result = dict(placed.result)
        result["quorum"] = replicated.result.get("quorum")
        return Response.success(request.id, result)

    async def _route_jobs(self, request: Request) -> Response:
        """Scatter ``jobs`` to every live node; dedup records by job id.

        Replicas of a job may lag one transition apart (e.g. a refresh
        discovered a completion on one owner first); the merge keeps the
        copy with the highest ``(version, lifecycle stage)``.
        """
        from repro.sched.jobs import STATE_RANK

        targets = self.membership.up_nodes() or self.membership.node_ids
        with start_span("router.scatter", "router", op=request.op, targets=len(targets)):
            results = await asyncio.gather(
                *(self._call_traced(n, request) for n in targets),
                return_exceptions=True,
            )
        merged: dict[str, Mapping[str, Any]] = {}
        errors: list[Response] = []
        nodes_ok = 0
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            if not resp.ok:
                errors.append(resp)
                continue
            nodes_ok += 1
            for record in resp.result.get("jobs", ()):
                job_id = str(record["job"])
                current = merged.get(job_id)
                if current is None or (
                    (record["version"], STATE_RANK.get(record["state"], 0))
                    > (current["version"], STATE_RANK.get(current["state"], 0))
                ):
                    merged[job_id] = record
        if nodes_ok == 0:
            if errors:
                first = errors[0]
                return Response(id=request.id, status=first.status, error=first.error)
            return Response.failure(
                request.id, STATUS_ERROR, "NoReplicaAvailable",
                "no node answered the jobs scatter",
            )
        records = [merged[j] for j in sorted(merged)]
        states: dict[str, int] = {}
        for record in records:
            states[record["state"]] = states.get(record["state"], 0) + 1
        return Response.success(
            request.id,
            {
                "jobs": records,
                "stats": {"jobs": len(records), "states": states},
                "shards": {
                    "queried": len(targets),
                    "ok": nodes_ok,
                    "partial": nodes_ok < len(targets),
                },
            },
        )

    async def _route_broadcast(self, request: Request) -> Response:
        """Broadcast ``replace`` to every live node and sum the counts."""
        targets = self.membership.up_nodes() or self.membership.node_ids
        with start_span("router.scatter", "router", op=request.op, targets=len(targets)):
            results = await asyncio.gather(
                *(self._call_traced(n, request) for n in targets),
                return_exceptions=True,
            )
        replaced = 0
        actions: dict[str, int] = {}
        restored: set[str] = set()
        nodes_ok = 0
        errors: list[Response] = []
        for resp in results:
            if isinstance(resp, BaseException):
                if not isinstance(resp, (OSError, asyncio.TimeoutError)):
                    raise resp
                continue
            if not resp.ok:
                errors.append(resp)
                continue
            nodes_ok += 1
            replaced += int(resp.result.get("replaced", 0))
            for action, count in (resp.result.get("actions") or {}).items():
                actions[action] = actions.get(action, 0) + int(count)
            restored.update(resp.result.get("restored") or ())
        if nodes_ok == 0:
            if errors:
                first = errors[0]
                return Response(id=request.id, status=first.status, error=first.error)
            return Response.failure(
                request.id, STATUS_ERROR, "NoReplicaAvailable",
                "no node answered the replace broadcast",
            )
        return Response.success(
            request.id,
            {
                "replaced": replaced,
                "actions": actions,
                "restored": sorted(restored),
                "nodes": nodes_ok,
            },
        )

    # ------------------------------------------------------------------ #
    # node-death reaction (membership transition hooks)
    # ------------------------------------------------------------------ #

    def _machines_owned_by(self, node_id: str) -> list[str]:
        """Cataloged machines whose *primary* owner is ``node_id``."""
        return sorted(
            m for m in self._machine_catalog if self.ring.owners(m)[0] == node_id
        )

    def _on_node_down(self, node_id: str) -> None:
        machines = self._machines_owned_by(node_id)
        if machines:
            self._spawn_replace(machines, f"node_down:{node_id}", restore=False)

    def _on_node_up(self, node_id: str) -> None:
        machines = self._machines_owned_by(node_id)
        if machines:
            self._spawn_replace(machines, f"node_up:{node_id}", restore=True)

    def _spawn_replace(self, machines: list[str], reason: str, *, restore: bool) -> None:
        request = Request(
            op="replace",
            params={"machines": machines, "reason": reason, "restore": restore},
        )
        task = asyncio.ensure_future(self._replace_after_transition(request, reason))
        self._replace_tasks.add(task)
        task.add_done_callback(self._replace_tasks.discard)

    async def _replace_after_transition(self, request: Request, reason: str) -> None:
        with start_span("sched.replace", "router", reason=reason):
            try:
                response = await self._route_broadcast(request)
            except Exception as exc:
                get_event_log().emit(
                    "cluster_replace_error",
                    severity="error",
                    reason=reason,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
        get_event_log().emit(
            "cluster_jobs_replaced",
            severity="warning",
            reason=reason,
            machines=len(request.params["machines"]),
            replaced=(response.result or {}).get("replaced"),
            ok=response.ok,
        )

    # ------------------------------------------------------------------ #

    def _cluster_health(self) -> dict[str, Any]:
        nodes = self.membership.status()
        up = sum(1 for st in nodes.values() if st["state"] == "up")
        if up == len(nodes):
            status = "ok"
        elif up > 0:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "protocol_version": PROTOCOL_VERSION,
            "nodes": nodes,
            "up_nodes": up,
            "ring": {
                "nodes": len(self.ring),
                "replicas": self.config.replicas,
                "vnodes": self.config.vnodes,
                "write_quorum": self.config.write_quorum,
            },
            "uptime_seconds": time.monotonic() - self._started,
        }
