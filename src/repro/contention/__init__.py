"""Contention substrate: the Section-3.2 empirical studies, simulated.

An event-driven time-sharing scheduler
(:mod:`~repro.contention.scheduler`), process/host-group workloads
(:mod:`~repro.contention.processes`), a memory/thrashing model
(:mod:`~repro.contention.memory`), the study runners
(:mod:`~repro.contention.experiment`) and the Th1/Th2 derivation
(:mod:`~repro.contention.thresholds`).
"""

from repro.contention.experiment import (
    MemoryRecord,
    PriorityRecord,
    ReductionRecord,
    cpu_contention_study,
    measure_reduction,
    memory_contention_study,
    priority_alternatives_study,
)
from repro.contention.memory import MemorySystem
from repro.contention.processes import HostGroup, ProcessSpec, guest_spec
from repro.contention.scheduler import SchedulerParams, SchedulerSimulator, SimulationResult
from repro.contention.thresholds import ThresholdDerivation, crossing_load, derive_thresholds

__all__ = [
    "HostGroup",
    "MemoryRecord",
    "MemorySystem",
    "PriorityRecord",
    "ProcessSpec",
    "ReductionRecord",
    "SchedulerParams",
    "SchedulerSimulator",
    "SimulationResult",
    "ThresholdDerivation",
    "cpu_contention_study",
    "crossing_load",
    "derive_thresholds",
    "guest_spec",
    "measure_reduction",
    "memory_contention_study",
    "priority_alternatives_study",
]
