"""Runners for the paper's Section-3.2 empirical contention studies.

Three studies are implemented:

* :func:`cpu_contention_study` — the Section-3.2.1 sweep: host groups of
  several sizes and isolated usages run with a CPU-bound guest at nice 0
  and nice 19; the *reduction rate of host CPU usage* is measured per
  configuration.  Its output feeds the threshold derivation
  (:mod:`repro.contention.thresholds`) and the EMP-CPU bench.
* :func:`priority_alternatives_study` — the paper's comparison of
  priority-control alternatives: intermediate nice values between 0 and
  19 (the "gradually decrease priority" scheme) and the guest's own
  throughput cost of always running at nice 19 under a light host load.
* :func:`memory_contention_study` — the Section-3.2.2 sweep over guest
  and host working-set sizes on a 384 MB machine, showing that thrashing
  is a pure function of overcommit and insensitive to guest priority.

All runners return flat lists of small result records; the bench layer
formats them into the paper's figures/claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.contention.memory import MemorySystem
from repro.contention.processes import HostGroup, ProcessSpec, guest_spec
from repro.contention.scheduler import SchedulerParams, SchedulerSimulator

__all__ = [
    "ReductionRecord",
    "PriorityRecord",
    "MemoryRecord",
    "measure_reduction",
    "cpu_contention_study",
    "priority_alternatives_study",
    "memory_contention_study",
]


@dataclass(frozen=True)
class ReductionRecord:
    """One point of the reduction-rate curves (paper's CPU-contention plots)."""

    group_size: int
    isolated_usage: float  #: the group's aggregate L_H
    guest_nice: int
    reduction: float  #: (iso - together) / iso of host CPU usage
    host_usage_isolated: float
    host_usage_together: float
    guest_usage: float


@dataclass(frozen=True)
class PriorityRecord:
    """One point of the priority-alternatives comparison."""

    guest_nice: int
    isolated_usage: float
    host_reduction: float
    guest_usage: float


@dataclass(frozen=True)
class MemoryRecord:
    """One point of the memory-contention sweep."""

    guest_ws_mb: float
    host_ws_mb: float
    host_cpu_usage: float
    guest_nice: int
    thrashing: bool
    overcommit_ratio: float
    host_reduction: float


def measure_reduction(
    group: HostGroup,
    guest_nice: int | None,
    *,
    simulator: SchedulerSimulator | None = None,
    duration: float = 120.0,
    reps: int = 3,
    seed: int = 0,
) -> ReductionRecord:
    """Measure the host-CPU-usage reduction a guest causes on one group.

    Runs the group in isolation and together with the guest on *paired*
    seeds (identical host burst sequences), averaging over ``reps``
    replicas.  ``guest_nice=None`` measures the isolated baseline only
    (reduction 0), which the studies use as a sanity anchor.
    """
    sim = simulator or SchedulerSimulator()
    host_names = [p.name for p in group.processes]
    iso_vals, tog_vals, guest_vals = [], [], []
    for rep in range(reps):
        iso = sim.run(list(group.processes), duration, seed=seed + rep)
        iso_vals.append(iso.usage_of(host_names))
        if guest_nice is None:
            tog_vals.append(iso_vals[-1])
            guest_vals.append(0.0)
        else:
            tog = sim.run(
                list(group.processes) + [guest_spec(guest_nice)], duration, seed=seed + rep
            )
            tog_vals.append(tog.usage_of(host_names))
            guest_vals.append(tog.cpu_usage["guest"])
    iso_usage = float(np.mean(iso_vals))
    tog_usage = float(np.mean(tog_vals))
    reduction = 0.0 if iso_usage <= 0.0 else (iso_usage - tog_usage) / iso_usage
    return ReductionRecord(
        group_size=group.size,
        isolated_usage=group.isolated_usage,
        guest_nice=-1 if guest_nice is None else guest_nice,
        reduction=float(reduction),
        host_usage_isolated=iso_usage,
        host_usage_together=tog_usage,
        guest_usage=float(np.mean(guest_vals)),
    )


def cpu_contention_study(
    loads: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    group_sizes: tuple[int, ...] = (1, 2, 3, 5),
    guest_nices: tuple[int, ...] = (0, 19),
    *,
    params: SchedulerParams | None = None,
    duration: float = 120.0,
    reps: int = 3,
    seed: int = 0,
) -> list[ReductionRecord]:
    """The Section-3.2.1 sweep: reduction rate vs L_H, per size and nice.

    For each (size, aggregate load) the group splits the load across
    ``size`` identical bursty processes, which is the controlled analogue
    of the paper's randomly generated groups: the plotted x-axis is the
    aggregate isolated usage either way.
    """
    sim = SchedulerSimulator(params)
    out: list[ReductionRecord] = []
    for size in group_sizes:
        for load in loads:
            group = HostGroup.with_total_usage(load, size)
            for nice in guest_nices:
                out.append(
                    measure_reduction(
                        group, nice, simulator=sim, duration=duration, reps=reps, seed=seed
                    )
                )
    return out


def priority_alternatives_study(
    loads: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    nices: tuple[int, ...] = (0, 5, 10, 15, 19),
    *,
    params: SchedulerParams | None = None,
    duration: float = 120.0,
    reps: int = 3,
    seed: int = 0,
) -> list[PriorityRecord]:
    """The priority-control alternatives of Section 3.2.1.

    Sweeps intermediate nice values.  The paper's conclusions, which the
    EMP bench verifies on this output: (a) intermediate priorities only
    interpolate between the nice-0 and nice-19 curves — they add no new
    availability level beyond what Th1/Th2 capture; (b) parking the
    guest at nice 19 under a light host load costs the guest throughput
    without helping the host.
    """
    sim = SchedulerSimulator(params)
    out: list[PriorityRecord] = []
    for load in loads:
        group = HostGroup.single(load)
        for nice in nices:
            rec = measure_reduction(
                group, nice, simulator=sim, duration=duration, reps=reps, seed=seed
            )
            out.append(
                PriorityRecord(
                    guest_nice=nice,
                    isolated_usage=load,
                    host_reduction=rec.reduction,
                    guest_usage=rec.guest_usage,
                )
            )
    return out


def memory_contention_study(
    guest_ws_mb: tuple[float, ...] = (29.0, 64.0, 110.0, 150.0, 193.0),
    host_ws_mb: tuple[float, ...] = (53.0, 100.0, 150.0, 213.0),
    host_cpu_usages: tuple[float, ...] = (0.08, 0.35, 0.67),
    guest_nices: tuple[int, ...] = (0, 19),
    *,
    memory: MemorySystem | None = None,
    params: SchedulerParams | None = None,
    duration: float = 60.0,
    reps: int = 2,
    seed: int = 0,
) -> list[MemoryRecord]:
    """The Section-3.2.2 sweep: SPEC-sized guests vs Musbus-sized hosts.

    Working-set ranges follow the paper: guest 29-193 MB (SPEC CPU2000),
    host 53-213 MB and 8-67% CPU (Musbus), on a 384 MB machine.  The
    reduction combines the CPU-contention result with the thrashing
    efficiency factor; with sufficient memory it *is* the CPU result.
    """
    mem = memory or MemorySystem()
    sim = SchedulerSimulator(params)
    out: list[MemoryRecord] = []
    for g_ws in guest_ws_mb:
        for h_ws in host_ws_mb:
            for h_cpu in host_cpu_usages:
                group = HostGroup(
                    (
                        ProcessSpec(
                            name="host-0", isolated_usage=h_cpu, working_set_mb=h_ws
                        ),
                    )
                )
                working = [g_ws, h_ws]
                thrash = mem.is_thrashing(working)
                eff = mem.cpu_efficiency(working)
                for nice in guest_nices:
                    rec = measure_reduction(
                        group, nice, simulator=sim, duration=duration, reps=reps, seed=seed
                    )
                    # Thrashing steals CPU from everyone regardless of
                    # priority (paper observation 1): host effective usage
                    # scales by the paging efficiency.
                    combined = 1.0 - (1.0 - rec.reduction) * eff
                    out.append(
                        MemoryRecord(
                            guest_ws_mb=g_ws,
                            host_ws_mb=h_ws,
                            host_cpu_usage=h_cpu,
                            guest_nice=nice,
                            thrashing=thrash,
                            overcommit_ratio=mem.overcommit_ratio(working),
                            host_reduction=float(combined),
                        )
                    )
    return out
