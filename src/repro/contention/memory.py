"""Memory contention and thrashing model (paper Section 3.2.2).

The paper's Solaris experiments (SPEC CPU2000 guests, Musbus host
workloads, 384 MB machine) yield two observations that this model
encodes directly:

1. "memory thrashing happens when the total working set size of the
   guest and host processes (including kernel memory usage) exceeds the
   physical memory size of the machine.  Changing CPU priority does
   little to prevent thrashing."
2. "when there is sufficient memory in the system, the occurrences of
   UEC caused by CPU contention solely depend on the host CPU usage" —
   memory and CPU contention are separable.

Thrashing is therefore a function of working-set overcommit only; its
severity follows a smooth paging-overhead curve (every page fault steals
CPU from useful work), and it applies to host and guest alike regardless
of nice values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import math

__all__ = ["MemorySystem"]


@dataclass(frozen=True)
class MemorySystem:
    """Physical-memory model of one machine.

    Defaults match the paper's memory-contention testbed: a 384 MB
    Solaris machine.  ``paging_severity`` shapes how quickly usable CPU
    collapses once the working sets overcommit memory; 3.0 makes a 30%
    overcommit cost roughly 60% of the CPU — consistent with the paper's
    "thrashing kills the host workload regardless of priority".
    """

    ram_mb: float = 384.0
    kernel_mem_mb: float = 40.0
    paging_severity: float = 3.0

    def __post_init__(self) -> None:
        if self.ram_mb <= self.kernel_mem_mb:
            raise ValueError("ram_mb must exceed kernel_mem_mb")
        if self.paging_severity <= 0.0:
            raise ValueError("paging_severity must be positive")

    @property
    def available_mb(self) -> float:
        """Memory available to user working sets."""
        return self.ram_mb - self.kernel_mem_mb

    def overcommit_ratio(self, working_sets_mb: Iterable[float]) -> float:
        """Total working set over available memory (1.0 = exactly full)."""
        total = sum(working_sets_mb)
        if total < 0.0:
            raise ValueError("working sets must be non-negative")
        return total / self.available_mb

    def is_thrashing(self, working_sets_mb: Iterable[float]) -> bool:
        """The paper's criterion: thrashing iff working sets overcommit RAM."""
        return self.overcommit_ratio(working_sets_mb) > 1.0

    def cpu_efficiency(self, working_sets_mb: Iterable[float]) -> float:
        """Fraction of CPU left for useful work under the given load.

        1.0 with sufficient memory; decays exponentially in the
        overcommit excess once thrashing starts.  Priority-independent
        by construction (observation 1 above).
        """
        ratio = self.overcommit_ratio(working_sets_mb)
        if ratio <= 1.0:
            return 1.0
        return math.exp(-self.paging_severity * (ratio - 1.0))

    def free_for_guest(self, host_working_sets_mb: Iterable[float]) -> float:
        """Free memory a guest working set could claim, in MB."""
        return max(0.0, self.available_mb - sum(host_working_sets_mb))
