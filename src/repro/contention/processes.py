"""Process and host-group specifications for the contention studies.

The paper's Section-3.2 experiments run an aggregated *host group* of
synthetic processes (isolated CPU usages between 10% and 100%) together
with a completely CPU-bound *guest* process whose nice value is 0 or 19.
These specs describe exactly those workloads for the scheduler simulator.

A bursty process alternates compute bursts with sleeps sized so that its
*isolated* CPU usage (the usage when running alone, what the paper calls
``L``) hits the requested target.  A CPU-bound process never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProcessSpec", "HostGroup", "guest_spec"]


@dataclass(frozen=True)
class ProcessSpec:
    """One simulated process.

    ``isolated_usage`` is the target duty cycle in isolation (1.0 = pure
    CPU-bound).  ``burst_mean`` is the mean length of one compute burst
    in seconds; bursts are exponentially distributed, mimicking the
    compute-then-sleep loop of the paper's synthetic host programs.
    ``working_set_mb`` feeds the memory-contention model.
    """

    name: str
    nice: int = 0
    isolated_usage: float = 1.0
    burst_mean: float = 0.030
    working_set_mb: float = 5.0

    def __post_init__(self) -> None:
        if not -20 <= self.nice <= 19:
            raise ValueError(f"nice must be in [-20, 19], got {self.nice}")
        if not 0.0 < self.isolated_usage <= 1.0:
            raise ValueError(f"isolated_usage must be in (0, 1], got {self.isolated_usage}")
        if self.burst_mean <= 0.0:
            raise ValueError(f"burst_mean must be positive, got {self.burst_mean}")
        if self.working_set_mb < 0.0:
            raise ValueError(f"working_set_mb must be >= 0, got {self.working_set_mb}")

    @property
    def cpu_bound(self) -> bool:
        """True when the process never sleeps (isolated usage 1.0)."""
        return self.isolated_usage >= 1.0

    @property
    def sleep_per_burst(self) -> float:
        """Mean sleep following each burst to hit the isolated usage."""
        if self.cpu_bound:
            return 0.0
        return self.burst_mean * (1.0 - self.isolated_usage) / self.isolated_usage


@dataclass(frozen=True)
class HostGroup:
    """An aggregated group of host processes (the paper's ``H``)."""

    processes: tuple[ProcessSpec, ...]

    def __post_init__(self) -> None:
        if not self.processes:
            raise ValueError("host group must contain at least one process")

    @property
    def size(self) -> int:
        """Number of host processes in the group."""
        return len(self.processes)

    @property
    def isolated_usage(self) -> float:
        """The group's aggregate isolated CPU usage ``L_H``, capped at 1.

        Usages add as long as the CPU is not saturated; the cap reflects
        that a single CPU cannot exceed 100%.
        """
        return min(1.0, sum(p.isolated_usage for p in self.processes))

    @property
    def working_set_mb(self) -> float:
        """Aggregate working set of the host group."""
        return sum(p.working_set_mb for p in self.processes)

    @classmethod
    def single(cls, isolated_usage: float, **kwargs) -> "HostGroup":
        """A group of one host process with the given isolated usage."""
        return cls((ProcessSpec(name="host-0", isolated_usage=isolated_usage, **kwargs),))

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        size: int,
        usage_range: tuple[float, float] = (0.10, 1.00),
        **kwargs,
    ) -> "HostGroup":
        """The paper's randomized groups: per-process usage U(10%, 100%)."""
        if size < 1:
            raise ValueError(f"group size must be >= 1, got {size}")
        lo, hi = usage_range
        specs = tuple(
            ProcessSpec(
                name=f"host-{i}",
                isolated_usage=float(rng.uniform(lo, hi)),
                **kwargs,
            )
            for i in range(size)
        )
        return cls(specs)

    @classmethod
    def with_total_usage(
        cls, total: float, size: int = 1, **kwargs
    ) -> "HostGroup":
        """A group of ``size`` identical processes summing to ``total``."""
        if size < 1:
            raise ValueError(f"group size must be >= 1, got {size}")
        per = total / size
        specs = tuple(
            ProcessSpec(name=f"host-{i}", isolated_usage=per, **kwargs) for i in range(size)
        )
        return cls(specs)


def guest_spec(nice: int = 0, working_set_mb: float = 64.0) -> ProcessSpec:
    """The paper's guest: a completely CPU-bound process."""
    return ProcessSpec(
        name="guest", nice=nice, isolated_usage=1.0, working_set_mb=working_set_mb
    )
