"""Event-driven time-sharing CPU scheduler simulator.

This is the substrate for the paper's empirical contention studies
(Section 3.2): it reproduces the scheduling mechanics of the 2.4/2.6-era
Linux kernels the paper's testbed ran, at the level of detail that
matters for *host slowdown caused by a guest process*:

* **static priorities and timeslices** — nice 0 gets a 100 ms timeslice,
  nice 19 gets 5 ms (the Linux ``(20 - nice) * 5 ms`` rule);
* **strict priority dispatch with round-robin within a nice level**;
* **wakeup latency under load** — a process waking while the CPU is busy
  becomes runnable only at the next scheduler opportunity, modelled as a
  uniform 0..tick delay (HZ = 100, tick = 10 ms).  On an idle CPU the
  wakeup is immediate, so this delay exists *only* when a competing
  process (e.g. a spinning guest) occupies the CPU — exactly the
  differential cost the paper's reduction-rate metric measures;
* **imperfect equal-priority preemption** — a woken interactive task
  usually has enough dynamic-priority bonus to preempt an equal-nice
  CPU hog, but not always (the bonus decays as the task itself burns
  CPU).  We model the outcome with a Bernoulli draw,
  ``equal_nice_preempt_prob``, calibrated so that the simulated testbed
  reproduces the paper's measured thresholds (Th1 ~ 20% for a nice-0
  guest, Th2 ~ 60% for a nice-19 guest; see DESIGN.md);
* **context-switch cost**, which is what makes "run the guest at nice 19
  always" measurably wasteful for the guest (Section 3.2.1's second
  priority-control alternative).

The simulator is deliberately single-CPU (the paper's machines were) and
event-driven: between events nothing changes, so a multi-minute workload
simulates in tens of milliseconds.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.contention.processes import ProcessSpec

__all__ = ["SchedulerParams", "SimulationResult", "SchedulerSimulator"]

_INF = math.inf


@dataclass(frozen=True)
class SchedulerParams:
    """Tunables of the scheduler model (defaults: calibrated Linux-like)."""

    #: seconds of timeslice per priority unit: ts(nice) = (20 - nice) * this.
    timeslice_unit: float = 0.005
    #: timer tick (HZ = 200 -> 5 ms); bounds the busy-wakeup latency.
    tick: float = 0.005
    #: probability a woken process preempts an equal-nice running process.
    equal_nice_preempt_prob: float = 0.92
    #: CPU time charged per dispatch (context switch + cache warmup).
    context_switch_cost: float = 0.0002

    def __post_init__(self) -> None:
        if self.timeslice_unit <= 0.0 or self.tick <= 0.0:
            raise ValueError("timeslice_unit and tick must be positive")
        if not 0.0 <= self.equal_nice_preempt_prob <= 1.0:
            raise ValueError("equal_nice_preempt_prob must be a probability")
        if self.context_switch_cost < 0.0:
            raise ValueError("context_switch_cost must be >= 0")

    def timeslice(self, nice: int) -> float:
        """Timeslice granted to a process of the given nice value."""
        return max(self.timeslice_unit, (20 - nice) * self.timeslice_unit)


@dataclass
class _Proc:
    """Runtime state of one simulated process."""

    spec: ProcessSpec
    index: int
    remaining_burst: float = 0.0
    timeslice_left: float = 0.0
    cpu_time: float = 0.0  # accumulated after warmup only
    dispatches: int = 0
    epoch: int = 0  # invalidates stale run-end events after preemption


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one scheduler run."""

    duration: float  # measured (post-warmup) interval
    cpu_usage: dict[str, float]  # per-process CPU fraction
    dispatches: dict[str, int]

    def usage_of(self, names) -> float:
        """Total CPU fraction of the named processes."""
        return sum(self.cpu_usage[n] for n in names)


class SchedulerSimulator:
    """Single-CPU event-driven scheduler simulation."""

    def __init__(self, params: SchedulerParams | None = None) -> None:
        self.params = params or SchedulerParams()

    # ------------------------------------------------------------------ #

    def run(
        self,
        specs: list[ProcessSpec],
        duration: float = 120.0,
        *,
        warmup: float = 5.0,
        seed: int | np.random.Generator = 0,
    ) -> SimulationResult:
        """Simulate the given processes for ``warmup + duration`` seconds.

        CPU accounting starts after the warmup.  Process names must be
        unique.  Returns per-process CPU usage fractions.
        """
        if duration <= 0.0 or warmup < 0.0:
            raise ValueError("duration must be > 0 and warmup >= 0")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"process names must be unique, got {names}")
        if isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**31))
        params = self.params
        end = warmup + duration

        procs = [_Proc(spec=s, index=i) for i, s in enumerate(specs)]
        # Per-process generators keyed by (seed, name) make burst/sleep
        # sequences identical across runs that share a seed, regardless of
        # which other processes are present.  An isolated run and a
        # with-guest run are thereby *paired*: their usage difference is
        # pure scheduling effect, not workload sampling noise.
        proc_rng = {
            p.spec.name: np.random.default_rng(
                [seed, int.from_bytes(p.spec.name.encode(), "little") % (2**31)]
            )
            for p in procs
        }
        rng = np.random.default_rng([seed, 0x5CED])  # scheduling coins/delays
        # Event heap: (time, seq, kind, proc, payload).  Kinds:
        #   "wake"    — raw sleep expiry; converts to "ready" (maybe delayed)
        #   "ready"   — process enters the run queue
        #   "run_end" — running process hits burst end or slice end (epoch-tagged)
        events: list = []
        seq = 0

        def push(time: float, kind: str, proc: _Proc, payload=None) -> None:
            nonlocal seq
            heapq.heappush(events, (time, seq, kind, proc, payload))
            seq += 1

        ready: list[tuple[int, int, _Proc]] = []  # (nice, seq, proc)
        rseq = 0

        def enqueue(proc: _Proc) -> None:
            nonlocal rseq
            heapq.heappush(ready, (proc.spec.nice, rseq, proc))
            rseq += 1

        def draw_burst(proc: _Proc) -> float:
            if proc.spec.cpu_bound:
                return _INF
            return float(proc_rng[proc.spec.name].exponential(proc.spec.burst_mean))

        def draw_sleep(proc: _Proc) -> float:
            return float(proc_rng[proc.spec.name].exponential(proc.spec.sleep_per_burst))

        running: _Proc | None = None
        run_started = 0.0

        def dispatch(proc: _Proc, now: float) -> None:
            nonlocal running, run_started
            running = proc
            proc.epoch += 1
            proc.dispatches += 1
            run_started = now + min(params.context_switch_cost, params.timeslice_unit)
            if proc.timeslice_left <= 0.0:
                proc.timeslice_left = params.timeslice(proc.spec.nice)
            run_for = min(proc.remaining_burst, proc.timeslice_left)
            push(run_started + run_for, "run_end", proc, proc.epoch)

        def charge(proc: _Proc, start: float, stop: float) -> None:
            lo = max(start, warmup)
            if stop > lo:
                proc.cpu_time += stop - lo

        def halt_running(now: float) -> None:
            """Stop the running process at ``now`` and account its CPU."""
            nonlocal running
            assert running is not None
            ran = max(0.0, now - run_started)
            charge(running, run_started, now)
            running.remaining_burst -= ran
            running.timeslice_left -= ran
            running = None

        # Stagger initial wakeups so processes don't start in lockstep.
        for proc in procs:
            proc.remaining_burst = draw_burst(proc)
            push(float(proc_rng[proc.spec.name].uniform(0.0, 0.05)), "ready", proc, None)

        t = 0.0
        while events:
            t, _s, kind, proc, payload = heapq.heappop(events)
            if t >= end:
                break

            if kind == "wake":
                # Busy CPU: the wakeup is noticed at the next scheduler
                # opportunity (up to one tick later).  Idle CPU: immediate.
                if running is not None:
                    push(t + float(rng.uniform(0.0, params.tick)), "ready", proc, None)
                else:
                    push(t, "ready", proc, None)
                continue

            if kind == "ready":
                if running is None:
                    dispatch(proc, t)
                    continue
                if proc.spec.nice < running.spec.nice or (
                    proc.spec.nice == running.spec.nice
                    and rng.random() < params.equal_nice_preempt_prob
                ):
                    preempted = running
                    halt_running(t)
                    enqueue(preempted)
                    dispatch(proc, t)
                else:
                    enqueue(proc)
                continue

            # kind == "run_end"
            if running is not proc or payload != proc.epoch:
                continue  # stale event from before a preemption
            halt_running(t)
            if proc.remaining_burst <= 1e-12:
                # Burst finished: go to sleep, schedule the raw wakeup.
                proc.remaining_burst = draw_burst(proc)
                proc.timeslice_left = 0.0
                push(t + draw_sleep(proc), "wake", proc, None)
            else:
                # Timeslice expired: round-robin to the queue tail.
                proc.timeslice_left = 0.0
                enqueue(proc)
            if ready:
                _, _, nxt = heapq.heappop(ready)
                dispatch(nxt, t)

        if running is not None:
            charge(running, run_started, min(t, end))

        usage = {p.spec.name: p.cpu_time / duration for p in procs}
        return SimulationResult(
            duration=duration,
            cpu_usage=usage,
            dispatches={p.spec.name: p.dispatches for p in procs},
        )
