"""Derive Th1/Th2 from measured reduction-rate curves (paper Section 3.3).

The paper picks the thresholds "according to the lowest values of L_H
among the different host group sizes, where the guest process needs to
be reniced or terminated, respectively, to keep the slowdown below 5%":

* **Th1** — the smallest L_H at which a *nice-0* guest causes more than
  5% host slowdown (beyond it the guest must be reniced);
* **Th2** — the smallest L_H at which even a *nice-19* guest causes more
  than 5% slowdown (beyond it the guest must be terminated).

Crossings are located by linear interpolation on the per-group-size
curves, then the minimum over group sizes is taken, exactly following
the paper's conservative rule.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.contention.experiment import ReductionRecord
from repro.core.states import Thresholds

__all__ = ["ThresholdDerivation", "crossing_load", "derive_thresholds"]


def crossing_load(
    loads: Sequence[float], reductions: Sequence[float], limit: float
) -> float | None:
    """The smallest load at which the reduction curve crosses ``limit``.

    Points are sorted by load; the first upward crossing is located by
    linear interpolation between the bracketing points.  Returns ``None``
    when the curve never reaches the limit, and the first measured load
    when even that already exceeds it.
    """
    if len(loads) != len(reductions) or not loads:
        raise ValueError("loads and reductions must be equal-length and non-empty")
    order = np.argsort(loads)
    xs = np.asarray(loads, dtype=float)[order]
    ys = np.asarray(reductions, dtype=float)[order]
    if ys[0] > limit:
        return float(xs[0])
    for i in range(1, len(xs)):
        if ys[i] > limit >= ys[i - 1]:
            span = ys[i] - ys[i - 1]
            frac = 0.5 if span <= 0.0 else (limit - ys[i - 1]) / span
            return float(xs[i - 1] + frac * (xs[i] - xs[i - 1]))
    return None


@dataclass(frozen=True)
class ThresholdDerivation:
    """The derived thresholds plus per-group-size crossings for inspection."""

    th1: float
    th2: float
    slowdown_limit: float
    crossings_nice0: dict[int, float | None]
    crossings_nice19: dict[int, float | None]

    def as_thresholds(self) -> Thresholds:
        """Convert to the classifier's :class:`Thresholds` (clipped sane)."""
        th1 = min(max(self.th1, 0.01), 0.98)
        th2 = min(max(self.th2, th1 + 0.01), 0.99)
        return Thresholds(th1=th1, th2=th2, slowdown_limit=self.slowdown_limit)


def derive_thresholds(
    records: Iterable[ReductionRecord],
    *,
    slowdown_limit: float = 0.05,
) -> ThresholdDerivation:
    """Apply the paper's rule to a CPU-contention study's records.

    Records must contain nice-0 and nice-19 measurements.  A nice level
    whose curves never cross the limit contributes no crossing; if no
    group crosses at all for a level, the threshold defaults to 1.0
    (the guest never needs the corresponding action).
    """
    by_key: dict[tuple[int, int], list[ReductionRecord]] = defaultdict(list)
    for rec in records:
        if rec.guest_nice in (0, 19):
            by_key[(rec.guest_nice, rec.group_size)].append(rec)
    if not any(nice == 0 for nice, _ in by_key):
        raise ValueError("no nice-0 records: cannot derive Th1")
    if not any(nice == 19 for nice, _ in by_key):
        raise ValueError("no nice-19 records: cannot derive Th2")

    crossings: dict[int, dict[int, float | None]] = {0: {}, 19: {}}
    for (nice, size), recs in by_key.items():
        loads = [r.isolated_usage for r in recs]
        reds = [r.reduction for r in recs]
        crossings[nice][size] = crossing_load(loads, reds, slowdown_limit)

    def lowest(nice: int) -> float:
        vals = [c for c in crossings[nice].values() if c is not None]
        return min(vals) if vals else 1.0

    return ThresholdDerivation(
        th1=lowest(0),
        th2=lowest(19),
        slowdown_limit=slowdown_limit,
        crossings_nice0=crossings[0],
        crossings_nice19=crossings[19],
    )
