"""Core of the reproduction: the paper's availability model and predictor.

Public surface:

* :mod:`repro.core.states` — the five-state availability model.
* :mod:`repro.core.windows` — calendar/window arithmetic.
* :mod:`repro.core.classifier` — samples -> states.
* :mod:`repro.core.smp` — the semi-Markov kernel and the Eq.-3 solver.
* :mod:`repro.core.estimator` — windowed kernel estimation from history.
* :mod:`repro.core.predictor` — the temporal-reliability predictor.
* :mod:`repro.core.empirical` — ground-truth TR from test data.
* :mod:`repro.core.metrics` — the paper's evaluation metrics.
"""

from repro.core.classifier import ClassifierConfig, StateClassifier
from repro.core.ctsmp import ContinuousSmp, fit_phase_type
from repro.core.empirical import EmpiricalTR, empirical_tr
from repro.core.estimator import EstimatorConfig, WindowedKernelEstimator
from repro.core.metrics import (
    ErrorSummary,
    accuracy_from_error,
    prediction_discrepancy,
    relative_error,
)
from repro.core.predictor import PredictionResult, TemporalReliabilityPredictor
from repro.core.smp import (
    SmpKernel,
    estimate_kernel,
    failure_probabilities,
    temporal_reliability,
)
from repro.core.uncertainty import TrInterval, bootstrap_tr
from repro.core.states import (
    DEFAULT_THRESHOLDS,
    FAILURE_STATES,
    OPERATIONAL_STATES,
    State,
    Thresholds,
)
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType

__all__ = [
    "AbsoluteWindow",
    "ClassifierConfig",
    "ClockWindow",
    "ContinuousSmp",
    "TrInterval",
    "bootstrap_tr",
    "fit_phase_type",
    "DayType",
    "DEFAULT_THRESHOLDS",
    "EmpiricalTR",
    "ErrorSummary",
    "EstimatorConfig",
    "FAILURE_STATES",
    "OPERATIONAL_STATES",
    "PredictionResult",
    "SmpKernel",
    "State",
    "StateClassifier",
    "TemporalReliabilityPredictor",
    "Thresholds",
    "WindowedKernelEstimator",
    "accuracy_from_error",
    "empirical_tr",
    "estimate_kernel",
    "failure_probabilities",
    "prediction_discrepancy",
    "relative_error",
    "temporal_reliability",
]
