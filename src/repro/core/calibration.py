"""Probabilistic calibration of TR predictions.

The paper scores predictions with relative error against a per-window
empirical TR.  A complementary — and for a scheduler arguably more
actionable — question is *calibration*: among all windows predicted to
survive with probability ~0.8, do ~80% actually survive?  This module
provides the standard tooling:

* :func:`brier_score` — mean squared error of probabilistic predictions
  against binary outcomes (0 = failed, 1 = survived), with the
  Murphy decomposition into reliability / resolution / uncertainty;
* :func:`reliability_diagram` — binned predicted-probability vs
  observed-frequency pairs (the calibration curve);
* :func:`collect_outcomes` — pair per-day TR predictions with per-day
  survival outcomes over a testbed, the input to both.

The CAL bench uses these to show the SMP predictor is not just accurate
on average but *calibrated* — and that the linear baselines are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.empirical import observed_window_outcomes
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType

__all__ = [
    "BrierDecomposition",
    "brier_score",
    "reliability_diagram",
    "expected_calibration_error",
    "collect_outcomes",
]


@dataclass(frozen=True)
class BrierDecomposition:
    """Murphy decomposition: ``brier = reliability - resolution + uncertainty``."""

    brier: float
    reliability: float  #: calibration term, 0 = perfectly calibrated
    resolution: float  #: discrimination term, larger = better
    uncertainty: float  #: outcome base-rate variance (predictor-independent)

    def __post_init__(self) -> None:
        recomposed = self.reliability - self.resolution + self.uncertainty
        if abs(recomposed - self.brier) > 1e-9:
            raise ValueError(
                f"decomposition does not recompose: {recomposed} != {self.brier}"
            )


def _validate(predictions: Sequence[float], outcomes: Sequence[bool]) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(predictions, dtype=float)
    y = np.asarray(outcomes, dtype=float)
    if p.shape != y.shape or p.ndim != 1:
        raise ValueError(f"predictions and outcomes must be equal-length 1-D, got {p.shape}, {y.shape}")
    if p.size == 0:
        raise ValueError(
            "need at least one (prediction, outcome) pair; empty inputs have "
            "no Brier score, reliability diagram or ECE"
        )
    if np.any((p < 0.0) | (p > 1.0)):
        raise ValueError("predictions must be probabilities in [0, 1]")
    if np.any((y != 0.0) & (y != 1.0)):
        raise ValueError("outcomes must be binary")
    return p, y


def brier_score(
    predictions: Sequence[float],
    outcomes: Sequence[bool],
    *,
    n_bins: int = 10,
) -> BrierDecomposition:
    """Brier score with the Murphy (binned) decomposition.

    The decomposition uses equal-width probability bins; both the score
    and the terms are exact for the binned forecasts (the standard
    construction, replacing each prediction by its bin mean).
    """
    p, y = _validate(predictions, outcomes)
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    bins = np.clip((p * n_bins).astype(int), 0, n_bins - 1)
    base = float(y.mean())
    uncertainty = base * (1.0 - base)
    reliability = 0.0
    resolution = 0.0
    binned_p = p.copy()
    for b in range(n_bins):
        mask = bins == b
        if not np.any(mask):
            continue
        w = mask.mean()
        p_bar = float(p[mask].mean())
        y_bar = float(y[mask].mean())
        binned_p[mask] = p_bar
        reliability += w * (p_bar - y_bar) ** 2
        resolution += w * (y_bar - base) ** 2
    brier = float(np.mean((binned_p - y) ** 2))
    return BrierDecomposition(
        brier=brier,
        reliability=float(reliability),
        resolution=float(resolution),
        uncertainty=float(uncertainty),
    )


def reliability_diagram(
    predictions: Sequence[float],
    outcomes: Sequence[bool],
    *,
    n_bins: int = 10,
) -> list[tuple[float, float, int]]:
    """Calibration curve: ``(mean predicted, observed frequency, count)`` per bin.

    Bins with no predictions are omitted, so the result has between one
    point (every prediction in the same bin — e.g. a constant predictor)
    and ``n_bins`` points.  Outcomes that are all-True or all-False are
    fine: the observed frequency is then 1.0 or 0.0 in every populated
    bin.  A calibrated predictor's points lie on the diagonal.
    """
    p, y = _validate(predictions, outcomes)
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    bins = np.clip((p * n_bins).astype(int), 0, n_bins - 1)
    out = []
    for b in range(n_bins):
        mask = bins == b
        if not np.any(mask):
            continue
        out.append((float(p[mask].mean()), float(y[mask].mean()), int(mask.sum())))
    return out


def expected_calibration_error(
    predictions: Sequence[float],
    outcomes: Sequence[bool],
    *,
    n_bins: int = 10,
) -> float:
    """ECE: count-weighted mean |predicted - observed| over the bins.

    Empty bins carry zero weight; with every prediction in a single bin
    the ECE degenerates to that bin's |mean predicted - observed
    frequency|.  Inputs are validated by :func:`reliability_diagram`, so
    the diagram always has at least one populated bin here.
    """
    diagram = reliability_diagram(predictions, outcomes, n_bins=n_bins)
    total = sum(c for _p, _y, c in diagram)
    if total == 0:  # unreachable after _validate; kept as a hard guard
        raise ValueError("reliability diagram has no populated bins")
    return float(sum(c * abs(p - y) for p, y, c in diagram) / total)


def collect_outcomes(
    data,
    *,
    lengths: Sequence[float] = (1.0, 3.0, 5.0, 10.0),
    start_hours: Sequence[int] = (0, 4, 8, 11, 14, 17, 20),
    dtype: DayType = DayType.WEEKDAY,
) -> tuple[list[float], list[bool]]:
    """Per-day (TR prediction, survived?) pairs over a testbed.

    ``data`` is an :class:`repro.bench.data.EvaluationData` (duck-typed
    here to keep the core free of a bench dependency): it provides
    ``machine_ids``, ``train``/``test`` trace sets, a ``classifier``,
    an ``estimator_config`` and the ``step_multiple``.

    Each machine's predictor (built from its training half) predicts
    every (start hour, length) window; each *test day* of that window
    contributes one binary outcome paired with that prediction.  This is
    the per-event view behind the paper's per-window empirical TR.
    """
    predictions: list[float] = []
    outcomes: list[bool] = []
    for mid in data.machine_ids:
        predictor = TemporalReliabilityPredictor(
            data.train[mid], estimator_config=data.estimator_config
        )
        for T in lengths:
            for h in start_hours:
                cw = ClockWindow.from_hours(h, T)
                tr = predictor.predict(cw, dtype)
                rows = observed_window_outcomes(
                    data.test[mid], data.classifier, cw, dtype,
                    step_multiple=data.step_multiple,
                )
                for _day, _init, ok in rows:
                    predictions.append(tr)
                    outcomes.append(ok)
    return predictions, outcomes
