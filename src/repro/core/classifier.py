"""Map raw monitoring samples to the five-state availability model.

The classifier implements the state definitions of paper Section 3.3:

* down samples (stale heartbeat) are **S5**;
* samples with insufficient free memory for the guest working set are
  **S4** (memory thrashing is priority-insensitive, Section 3.2.2);
* samples with host CPU load steadily above ``Th2`` are **S3** — where
  *steadily* means an excursion lasting at least the transient tolerance
  (1 minute in the paper's testbed).  Shorter excursions are absorbed by
  the surrounding operational state: the guest is merely suspended and
  resumed, which the paper folds into S1/S2;
* remaining samples are **S2** when ``Th1 <= L_H <= Th2`` and **S1**
  when ``L_H < Th1``.

The precedence S5 > S4 > CPU-based states matches the model: a revoked
machine has no load to speak of, and thrashing kills the guest regardless
of CPU headroom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.segments import run_length_encode
from repro.core.states import State, Thresholds
from repro.traces.trace import MachineTrace, TraceWindow

__all__ = ["ClassifierConfig", "StateClassifier", "DEFAULT_CLASSIFIER"]


@dataclass(frozen=True)
class ClassifierConfig:
    """Configuration of the sample-to-state mapping.

    Attributes
    ----------
    thresholds:
        The ``Th1``/``Th2`` host-load thresholds.
    transient_tolerance:
        Maximum duration (seconds) of an ``L_H > Th2`` excursion that is
        still treated as transient (guest suspended, not killed).  The
        paper used 1 minute.
    guest_mem_requirement_mb:
        Free memory (MB) a guest working set needs; less free memory means
        thrashing (S4).  The paper's guest applications had working sets
        of 29-193 MB; the default is a mid-range 128 MB.
    """

    thresholds: Thresholds = field(default_factory=Thresholds)
    transient_tolerance: float = 60.0
    guest_mem_requirement_mb: float = 128.0

    def __post_init__(self) -> None:
        if self.transient_tolerance < 0.0:
            raise ValueError(
                f"transient_tolerance must be >= 0, got {self.transient_tolerance}"
            )
        if self.guest_mem_requirement_mb < 0.0:
            raise ValueError(
                f"guest_mem_requirement_mb must be >= 0, got {self.guest_mem_requirement_mb}"
            )


class StateClassifier:
    """Classify monitoring samples into the five availability states."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()

    # ------------------------------------------------------------------ #

    def classify_arrays(
        self,
        load: np.ndarray,
        free_mem_mb: np.ndarray,
        up: np.ndarray,
        sample_period: float,
    ) -> np.ndarray:
        """Classify parallel sample arrays; returns an int8 state array.

        ``sample_period`` converts the transient tolerance into a sample
        count.  An excursion above ``Th2`` is transient when it spans
        *fewer* samples than ``ceil(tolerance / period)`` — i.e. it lasted
        strictly less than the tolerance.
        """
        load = np.asarray(load, dtype=np.float64)
        free_mem_mb = np.asarray(free_mem_mb, dtype=np.float64)
        up = np.asarray(up, dtype=bool)
        if load.shape != free_mem_mb.shape or load.shape != up.shape:
            raise ValueError("sample arrays must have identical shapes")
        if sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")

        th = self.config.thresholds
        states = np.where(load < th.th1, np.int8(State.S1), np.int8(State.S2))
        states = np.where(load > th.th2, np.int8(State.S3), states).astype(np.int8)
        self._absorb_transient_spikes(states, sample_period)
        # Memory thrashing and revocation override CPU-based states.
        states[free_mem_mb < self.config.guest_mem_requirement_mb] = np.int8(State.S4)
        states[~up] = np.int8(State.S5)
        return states

    def classify_window(self, view: TraceWindow) -> np.ndarray:
        """Classify one :class:`~repro.traces.trace.TraceWindow`."""
        return self.classify_arrays(view.load, view.free_mem_mb, view.up, view.sample_period)

    def classify_trace(self, trace: MachineTrace) -> np.ndarray:
        """Classify a whole trace; returns one state per sample."""
        return self.classify_arrays(trace.load, trace.free_mem_mb, trace.up, trace.sample_period)

    # ------------------------------------------------------------------ #

    def transient_tolerance_samples(self, sample_period: float) -> int:
        """Number of samples at/above which an excursion is non-transient."""
        return max(1, int(np.ceil(self.config.transient_tolerance / sample_period)))

    def _absorb_transient_spikes(self, states: np.ndarray, sample_period: float) -> None:
        """Remap short S3 runs to the surrounding operational state, in place.

        A transient spike inherits the state of the preceding operational
        visit (the guest was running at that state's priority when it got
        suspended).  A spike at the very start of the sequence — or one
        preceded by a failure — inherits the following operational state;
        if neither neighbour is operational, S2 is used (the conservative
        choice: the host was busy).
        """
        tol = self.transient_tolerance_samples(sample_period)
        vals, starts, lengths = run_length_encode(states)
        n_runs = len(vals)
        for i in range(n_runs):
            if vals[i] != State.S3 or lengths[i] >= tol:
                continue
            replacement = np.int8(State.S2)
            if i > 0 and vals[i - 1] in (State.S1, State.S2):
                replacement = vals[i - 1]
            elif i + 1 < n_runs and vals[i + 1] in (State.S1, State.S2):
                replacement = vals[i + 1]
            states[starts[i] : starts[i] + lengths[i]] = replacement


#: A classifier with the paper's testbed parameters.
DEFAULT_CLASSIFIER = StateClassifier()
