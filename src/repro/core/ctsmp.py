"""Continuous-time SMP solution via phase-type approximation.

Paper Section 4.1 discusses the two classic routes to the interval
transition probabilities of a continuous-time semi-Markov process:
numerical solution of the backward Kolmogorov integral equations, and
*phase approximation* — replacing each holding-time distribution with a
phase-type (Markovian) distribution so the whole process becomes a
continuous-time Markov chain whose transient solution is a single
matrix exponential.  The paper chooses the discrete-time route for
"simplification and general applicability"; this module implements the
phase-approximation alternative so the trade-off can be measured (see
the ABL-CT ablation bench) rather than asserted.

Construction
------------
For each of the eight structurally non-zero transitions we have an
empirical kernel row ``K_{i,k}(l)`` (probability mass over discrete
holding times).  Per source state we:

1. split the row mass into the transition probability ``q_{ik}`` and the
   conditional holding pmf;
2. fit the *pooled* holding-time distribution of the source state with a
   two-moment phase-type distribution — an Erlang chain when the squared
   coefficient of variation (SCV) is below 1, a balanced two-branch
   hyperexponential when above (the standard Whitt/Tijms recipe);
3. expand S1 and S2 into their fitted phases, wire the phase-exit
   hazards to the destination states according to ``q_{ik}``, and add
   the three absorbing failure states.

Temporal reliability over a window of ``T`` seconds is then
``1 - P(absorbed by T)`` computed with ``scipy.linalg.expm``.

The approximation is exact for exponential/Erlang-like holding times
and degrades for strongly multimodal ones (a lab machine's "either a
quick blip or a long busy spell" pattern), which is precisely the
paper's argument for the empirical discrete-time kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.core.smp import SLOT_INDEX, SmpKernel
from repro.core.states import State

__all__ = ["PhaseFit", "fit_phase_type", "ContinuousSmp"]

#: Maximum Erlang stages used when SCV is very small.
_MAX_ERLANG_STAGES = 20


@dataclass(frozen=True)
class PhaseFit:
    """A fitted phase-type distribution (absorbing CTMC fragment).

    ``generator`` is the ``(n_phases, n_phases)`` sub-generator among
    transient phases; ``exit_rates`` the per-phase absorption rates
    (``-generator @ 1``); ``initial`` the initial phase distribution.
    """

    generator: np.ndarray
    exit_rates: np.ndarray
    initial: np.ndarray

    @property
    def n_phases(self) -> int:
        """Number of phases of the fitted distribution."""
        return self.generator.shape[0]

    def mean(self) -> float:
        """Mean of the fitted distribution (for validation)."""
        # E[T] = -initial @ inv(G) @ 1
        ones = np.ones(self.n_phases)
        return float(-self.initial @ np.linalg.solve(self.generator, ones))


def fit_phase_type(mean: float, scv: float) -> PhaseFit:
    """Two-moment phase-type fit (Erlang / exponential / hyperexponential).

    ``scv`` is the squared coefficient of variation ``var / mean^2``:

    * ``scv >= 1``  -> balanced-means two-branch hyperexponential;
    * ``1/k <= scv < 1`` -> Erlang-k (k chosen as ``ceil(1/scv)``, capped);
    * very small scv -> Erlang with the stage cap (nearly deterministic).
    """
    if mean <= 0.0:
        raise ValueError(f"mean must be positive, got {mean}")
    if scv < 0.0:
        raise ValueError(f"scv must be >= 0, got {scv}")
    if scv >= 1.0 - 1e-12:
        if abs(scv - 1.0) < 1e-9:
            rate = 1.0 / mean
            return PhaseFit(
                generator=np.array([[-rate]]),
                exit_rates=np.array([rate]),
                initial=np.array([1.0]),
            )
        # Balanced-means H2 (Whitt): p1/mu1 = p2/mu2 = mean/2.
        p1 = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        p2 = 1.0 - p1
        mu1 = 2.0 * p1 / mean
        mu2 = 2.0 * p2 / mean
        return PhaseFit(
            generator=np.diag([-mu1, -mu2]),
            exit_rates=np.array([mu1, mu2]),
            initial=np.array([p1, p2]),
        )
    k = min(_MAX_ERLANG_STAGES, max(1, math.ceil(1.0 / max(scv, 1e-6))))
    rate = k / mean
    gen = np.zeros((k, k))
    for i in range(k):
        gen[i, i] = -rate
        if i + 1 < k:
            gen[i, i + 1] = rate
    exit_rates = np.zeros(k)
    exit_rates[-1] = rate
    initial = np.zeros(k)
    initial[0] = 1.0
    return PhaseFit(generator=gen, exit_rates=exit_rates, initial=initial)


def _row_moments(kernel: SmpKernel, src: int) -> tuple[float, float, np.ndarray]:
    """Pooled holding-time mean/SCV (seconds) and per-target probabilities.

    Returns ``(mean_seconds, scv, q)`` where ``q`` maps the four possible
    destinations of ``src`` to their transition probabilities.  The
    residual mass (no transition within the horizon) is folded into the
    pooled distribution implicitly by ignoring it: the CTMC leaves the
    state eventually, which slightly *over*-estimates failure for long
    windows — one more reason the paper prefers the empirical kernel.
    """
    dests = [dst for (s, dst) in SLOT_INDEX if s == src]
    q = np.zeros(6)
    pooled = np.zeros(kernel.horizon + 1)
    for dst in dests:
        row = kernel.slot(src, dst)
        q[dst] = row.sum()
        pooled += row
    total = pooled.sum()
    if total <= 0.0:
        return float("inf"), 1.0, q
    pooled = pooled / total
    steps = np.arange(kernel.horizon + 1, dtype=float)
    mean_steps = float(pooled @ steps)
    var_steps = float(pooled @ (steps - mean_steps) ** 2)
    mean_s = max(mean_steps, 0.5) * kernel.step
    scv = var_steps / max(mean_steps, 0.5) ** 2
    return mean_s, scv, q


class ContinuousSmp:
    """Phase-type CTMC approximation of an estimated SMP kernel."""

    def __init__(self, kernel: SmpKernel) -> None:
        self.kernel = kernel
        self._build()

    def _build(self) -> None:
        fits: dict[int, PhaseFit | None] = {}
        qs: dict[int, np.ndarray] = {}
        for src in (1, 2):
            mean_s, scv, q = _row_moments(self.kernel, src)
            qs[src] = q
            if not math.isfinite(mean_s) or q.sum() <= 0.0:
                fits[src] = None  # state never transitions: absorbing-safe
            else:
                fits[src] = fit_phase_type(mean_s, scv)

        # Phase layout: S1 phases, then S2 phases, then S3, S4, S5.
        n1 = fits[1].n_phases if fits[1] else 1
        n2 = fits[2].n_phases if fits[2] else 1
        n = n1 + n2 + 3
        gen = np.zeros((n, n))
        off = {1: 0, 2: n1}
        fail_index = {3: n1 + n2, 4: n1 + n2 + 1, 5: n1 + n2 + 2}

        for src in (1, 2):
            fit = fits[src]
            if fit is None:
                continue
            o = off[src]
            k = fit.n_phases
            gen[o : o + k, o : o + k] = fit.generator
            q = qs[src]
            total_q = q.sum()
            other = 2 if src == 1 else 1
            for dst in (other, 3, 4, 5):
                frac = q[dst] / total_q
                if frac <= 0.0:
                    continue
                if dst in fail_index:
                    gen[o : o + k, fail_index[dst]] += fit.exit_rates * frac
                else:
                    tgt_fit = fits[dst]
                    to = off[dst]
                    if tgt_fit is None:
                        gen[o : o + k, to] += fit.exit_rates * frac
                    else:
                        for j, w in enumerate(tgt_fit.initial):
                            gen[o : o + k, to + j] += fit.exit_rates * frac * w
        self._generator = gen
        self._offsets = off
        self._fits = fits
        self._fail_index = fail_index
        self._n = n

    @property
    def n_phases(self) -> int:
        """Total number of CTMC states (phases + failures)."""
        return self._n

    def _initial_vector(self, init_state: State | int) -> np.ndarray:
        init = int(init_state)
        v = np.zeros(self._n)
        if init in self._fail_index:
            v[self._fail_index[init]] = 1.0
            return v
        if init not in (1, 2):
            raise ValueError(f"init_state must be S1..S5, got {init_state!r}")
        fit = self._fits[init]
        o = self._offsets[init]
        if fit is None:
            v[o] = 1.0
        else:
            v[o : o + fit.n_phases] = fit.initial
        return v

    def failure_probabilities(
        self, horizon_seconds: float, init_state: State | int
    ) -> np.ndarray:
        """``[P(absorbed in S3), P(S4), P(S5)]`` within ``horizon_seconds``."""
        if horizon_seconds < 0.0:
            raise ValueError(f"horizon must be >= 0, got {horizon_seconds}")
        v = self._initial_vector(init_state)
        probs = v @ expm(self._generator * horizon_seconds)
        out = np.array([probs[self._fail_index[j]] for j in (3, 4, 5)])
        return np.clip(out, 0.0, 1.0)

    def temporal_reliability(
        self, horizon_seconds: float | None = None, init_state: State | int = State.S1
    ) -> float:
        """TR over the kernel's window (or an explicit horizon in seconds)."""
        if horizon_seconds is None:
            horizon_seconds = self.kernel.horizon * self.kernel.step
        total = float(self.failure_probabilities(horizon_seconds, init_state).sum())
        return float(np.clip(1.0 - total, 0.0, 1.0))
