"""Empirical temporal reliability from held-out test data.

The paper evaluates prediction accuracy by comparing the predicted TR
against "the actual observations from the test data set" (Section 7.2).
The empirical TR of a clock window is the fraction of test days (of the
matching day type) on which the machine never entered a failure state
during that window.

Days on which the machine is already failed at the window start are
excluded by default: no scheduler would launch a guest job on a machine
that is currently unavailable, and the SMP prediction is likewise
conditioned on an operational initial state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import StateClassifier
from repro.core.estimator import coarsen_states
from repro.core.segments import failure_free
from repro.core.states import State
from repro.core.windows import ClockWindow, DayType
from repro.traces.trace import MachineTrace

__all__ = ["EmpiricalTR", "empirical_tr", "observed_window_outcomes"]


@dataclass(frozen=True)
class EmpiricalTR:
    """Empirical temporal reliability and its support.

    ``value`` is the fraction of counted days that stayed failure-free;
    ``n_days`` is the number of days counted; ``n_excluded`` the days
    skipped because the machine was already failed at the window start.
    """

    value: float
    n_days: int
    n_excluded: int = 0

    def __post_init__(self) -> None:
        if self.n_days > 0 and not 0.0 <= self.value <= 1.0:
            raise ValueError(f"empirical TR must be in [0, 1], got {self.value}")


def observed_window_outcomes(
    trace: MachineTrace,
    classifier: StateClassifier,
    clock: ClockWindow,
    dtype: DayType,
    *,
    condition_on_operational_start: bool = True,
    step_multiple: int = 1,
) -> list[tuple[int, State, bool]]:
    """Per-day window outcomes: ``(day, initial_state, failure_free)``.

    Only days of type ``dtype`` whose window lies inside the trace are
    listed.  With ``condition_on_operational_start`` days whose window
    starts in a failure state are omitted.
    """
    out: list[tuple[int, State, bool]] = []
    for day in trace.days(dtype):
        window = clock.on_day(day)
        if not trace.covers(window):
            continue
        states = classifier.classify_window(trace.window_view(window))
        states = coarsen_states(states, step_multiple)
        init = State(int(states[0]))
        if condition_on_operational_start and init.is_failure:
            continue
        out.append((day, init, failure_free(states)))
    return out


def empirical_tr(
    trace: MachineTrace,
    classifier: StateClassifier,
    clock: ClockWindow,
    dtype: DayType,
    *,
    condition_on_operational_start: bool = True,
    step_multiple: int = 1,
) -> EmpiricalTR:
    """Empirical TR of ``clock`` over the trace's days of type ``dtype``."""
    n_total = 0
    outcomes = []
    for day in trace.days(dtype):
        if trace.covers(clock.on_day(day)):
            n_total += 1
    rows = observed_window_outcomes(
        trace,
        classifier,
        clock,
        dtype,
        condition_on_operational_start=condition_on_operational_start,
        step_multiple=step_multiple,
    )
    if not rows:
        return EmpiricalTR(value=float("nan"), n_days=0, n_excluded=n_total)
    ok = np.array([r[2] for r in rows], dtype=float)
    return EmpiricalTR(value=float(ok.mean()), n_days=len(rows), n_excluded=n_total - len(rows))
