"""Windowed SMP-parameter estimation from history traces.

The paper computes the SMP parameters for a target window "via the
statistics on history logs ... from the data within the corresponding
time windows of the most recent N weekdays (weekends)" (Section 4.2).
This module performs exactly that extraction: given a training trace, a
classifier and a target window, it classifies the matching clock window
on each eligible history day and feeds the pooled state sequences to the
kernel estimator of :mod:`repro.core.smp`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.smp import (
    Censoring,
    SmpKernel,
    VisitObservation,
    collect_observations,
    kernel_from_observations,
)
from repro.core.states import State
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType
from repro.traces.trace import MachineTrace

__all__ = ["EstimatorConfig", "WindowedKernelEstimator", "HistoryWindowData"]


@dataclass(frozen=True)
class EstimatorConfig:
    """Tunables of the windowed estimator.

    Attributes
    ----------
    history_days:
        Use at most the ``N`` most recent same-type days of the training
        trace; ``None`` (default) uses all of them — the paper's setting
        when it splits the 3-month trace in half.
    lookback:
        Seconds of context classified *before* each history window.  The
        default 0 measures the first visit's holding time from the window
        start, which matches the prediction semantics: the SMP treats the
        window start as a renewal point, so the first sojourn it predicts
        is the *residual* life of the state in progress — exactly what a
        window-start-truncated observation estimates.  A positive
        lookback measures holding from the state's true entry instead
        (kept for ablation; it systematically over-predicts TR because
        long overnight sojourns then dominate the holding-time mass).
        ``None`` uses one window length.  Clipped to the data available
        before each window.
    censoring / laplace:
        Passed through to the kernel estimator; see
        :func:`repro.core.smp.estimate_kernel`.  The default ``"km"``
        (discrete competing-risks Kaplan-Meier) handles the visits still
        in progress at each history window's end exactly; the naive
        ``"beyond"`` counting estimator builds an artificial survival
        floor that inflates TR for long windows.
    step_multiple:
        Coarsen the discretization interval to ``step_multiple`` samples
        per step.  ``d`` stays tied to the monitoring period (the paper's
        choice) when 1; larger values trade accuracy for speed, the
        trade-off the paper discusses for discrete-time SMPs (Section
        4.1) and that our ablation bench quantifies.  Coarse steps take
        the *most severe* state within each group of samples, so short
        failures are never hidden by coarsening.
    day_type_split:
        ``True`` (default, the paper's Section 4.2 setting) trains only
        on history days of the requested type (weekday vs weekend).
        ``False`` pools every history day regardless of type — the right
        call when the host has no weekly rhythm (server rooms) and the
        per-type sample count is the accuracy bottleneck.  The adapt
        tier's retune search flips this switch per machine.
    """

    history_days: int | None = None
    lookback: float | None = 0.0
    censoring: Censoring = "km"
    laplace: float = 0.0
    step_multiple: int = 1
    day_type_split: bool = True

    def __post_init__(self) -> None:
        if self.history_days is not None and self.history_days < 1:
            raise ValueError(f"history_days must be >= 1 or None, got {self.history_days}")
        if self.lookback is not None and self.lookback < 0.0:
            raise ValueError(f"lookback must be >= 0 or None, got {self.lookback}")
        if self.step_multiple < 1:
            raise ValueError(f"step_multiple must be >= 1, got {self.step_multiple}")


@dataclass(frozen=True)
class HistoryWindowData:
    """One history day's classified window (diagnostic output)."""

    day: int
    states: np.ndarray
    lookback_steps: int


def coarsen_states(states: np.ndarray, multiple: int) -> np.ndarray:
    """Downsample a state sequence by taking the max (most severe) state.

    State severity coincides with the numeric ordering S1 < S2 < S3 < S4
    < S5 for the purpose of "does a failure occur in this step", which is
    all the TR computation observes.  A trailing partial group is kept.
    """
    if multiple == 1:
        return states
    n = states.shape[0]
    n_full = (n // multiple) * multiple
    out = states[:n_full].reshape(-1, multiple).max(axis=1)
    if n_full < n:
        out = np.concatenate([out, [states[n_full:].max()]])
    return out


class WindowedKernelEstimator:
    """Estimate the SMP kernel for a target window from a training trace."""

    def __init__(
        self,
        classifier: StateClassifier | None = None,
        config: EstimatorConfig | None = None,
    ) -> None:
        self.classifier = classifier or StateClassifier()
        self.config = config or EstimatorConfig()

    # ------------------------------------------------------------------ #

    def step(self, trace: MachineTrace) -> float:
        """Effective discretization interval ``d`` for this trace."""
        return trace.sample_period * self.config.step_multiple

    def history_days(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> list[int]:
        """Eligible history days, most recent first.

        A day is eligible when it has the requested type and the clock
        window instantiated on it lies entirely within the trace.  With
        ``day_type_split=False`` every covered day is eligible.
        """
        days: list[int] = []
        limit = self.config.history_days
        pool = trace.days(dtype) if self.config.day_type_split else trace.days(None)
        for d in reversed(pool):
            if trace.covers(clock.on_day(d)):
                days.append(d)
                if limit is not None and len(days) >= limit:
                    break
        return days

    def history_windows(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> list[HistoryWindowData]:
        """Classified state sequences (with lookback) per history day."""
        lookback = self.config.lookback if self.config.lookback is not None else clock.duration
        out: list[HistoryWindowData] = []
        for day in self.history_days(trace, clock, dtype):
            target = clock.on_day(day)
            lb = min(lookback, max(0.0, target.start - trace.start_time))
            lb_steps = int(round(lb / trace.sample_period))
            view = trace.window_view(
                AbsoluteWindow(target.start - lb_steps * trace.sample_period,
                               target.duration + lb_steps * trace.sample_period)
            )
            states = self.classifier.classify_window(view)
            out.append(HistoryWindowData(day=day, states=states, lookback_steps=lb_steps))
        return out

    # ------------------------------------------------------------------ #

    def observations(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> list[VisitObservation]:
        """Pooled sojourn observations across the history windows."""
        mult = self.config.step_multiple
        obs: list[VisitObservation] = []
        for hw in self.history_windows(trace, clock, dtype):
            # Trim the lookback prefix to a whole number of coarse steps so
            # the window start stays aligned after coarsening.
            trim = hw.lookback_steps % mult
            states = coarsen_states(hw.states[trim:], mult)
            lb = (hw.lookback_steps - trim) // mult
            obs.extend(collect_observations([states], lookback_steps=lb))
        return obs

    def estimate(
        self,
        trace: MachineTrace,
        target: AbsoluteWindow | ClockWindow,
        dtype: DayType | None = None,
    ) -> SmpKernel:
        """Estimate the kernel for a target window.

        ``target`` may be an absolute window (its own day type is used) or
        a recurring clock window plus an explicit ``dtype``.
        """
        if isinstance(target, AbsoluteWindow):
            clock = target.clock_window()
            dtype = dtype or target.day_type
        else:
            clock = target
            if dtype is None:
                raise ValueError("a ClockWindow target requires an explicit day type")
        step = self.step(trace)
        horizon = win.n_steps(clock.duration, step)
        obs = self.observations(trace, clock, dtype)
        return kernel_from_observations(
            obs,
            horizon,
            step,
            censoring=self.config.censoring,
            laplace=self.config.laplace,
        )

    # ------------------------------------------------------------------ #

    def typical_initial_state(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> State:
        """Most common state at the window's start time across history days.

        Used when no live monitor reading is available for ``S_init``.
        Falls back to S1 when no history day covers the start time.
        """
        counts = np.zeros(6, dtype=np.int64)
        for hw in self.history_windows(trace, clock, dtype):
            idx = hw.lookback_steps
            if idx < hw.states.shape[0]:
                counts[int(hw.states[idx])] += 1
        if counts.sum() == 0:
            return State.S1
        return State(int(np.argmax(counts[1:]) + 1))
