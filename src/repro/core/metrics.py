"""Evaluation metrics for availability prediction.

The paper's primary metric is the *relative error* of the predicted
temporal reliability, ``abs(TR_predicted - TR_empirical) / TR_empirical``
(Section 7.2); robustness is measured as the *prediction discrepancy*,
the relative difference between predictions with and without injected
noise (Section 7.3).  This module implements both plus the small summary
statistics (average / min / max over window start times) that the paper's
figures report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "relative_error",
    "prediction_discrepancy",
    "accuracy_from_error",
    "ErrorSummary",
    "summarize_errors",
]


def relative_error(predicted: float, empirical: float) -> float:
    """Relative error of a TR prediction against the empirical TR.

    Matches the paper's definition
    ``abs(TR_predicted - TR_empirical) / TR_empirical``.  When the
    empirical TR is zero the ratio is undefined; we return 0.0 when the
    prediction is also (near) zero and ``inf`` otherwise, so that a model
    predicting "certainly fails" for a window that always failed is
    scored as perfect rather than skipped.
    """
    if math.isnan(predicted) or math.isnan(empirical):
        return float("nan")
    diff = abs(predicted - empirical)
    if empirical == 0.0:
        return 0.0 if diff < 1e-12 else float("inf")
    return diff / empirical


def prediction_discrepancy(noisy: float, clean: float) -> float:
    """Relative difference between noisy- and clean-history predictions.

    The paper's robustness metric (Section 7.3): how much the injected
    noise disturbs the prediction, relative to the clean prediction.
    """
    if math.isnan(noisy) or math.isnan(clean):
        return float("nan")
    diff = abs(noisy - clean)
    if clean == 0.0:
        return 0.0 if diff < 1e-12 else float("inf")
    return diff / clean


def accuracy_from_error(rel_error: float) -> float:
    """Prediction accuracy as the paper reports it: ``1 - relative error``.

    Clamped below at 0 (a >100% relative error is "no accuracy", not
    negative accuracy).
    """
    if math.isnan(rel_error):
        return float("nan")
    return max(0.0, 1.0 - rel_error)


@dataclass(frozen=True)
class ErrorSummary:
    """Average / min / max of a set of relative errors (one figure point).

    Non-finite entries (``nan`` from empty test sets, ``inf`` from zero
    empirical TR with a non-zero prediction) are excluded from the
    summary but counted in ``n_dropped``.
    """

    mean: float
    minimum: float
    maximum: float
    n: int
    n_dropped: int = 0

    @classmethod
    def from_errors(cls, errors: Iterable[float]) -> "ErrorSummary":
        arr = np.asarray(list(errors), dtype=float)
        if arr.size == 0:
            raise ValueError(
                "cannot summarize an empty error sequence; pass at least one "
                "error value (non-finite values are counted as dropped, an "
                "all-non-finite input yields a NaN summary)"
            )
        finite = arr[np.isfinite(arr)]
        dropped = int(arr.size - finite.size)
        if finite.size == 0:
            # Every value was dropped: the summary is honest about having
            # seen inputs but kept none.
            return cls(float("nan"), float("nan"), float("nan"), 0, dropped)
        return cls(
            mean=float(finite.mean()),
            minimum=float(finite.min()),
            maximum=float(finite.max()),
            n=int(finite.size),
            n_dropped=dropped,
        )

    @property
    def mean_accuracy(self) -> float:
        """Average prediction accuracy, ``1 - mean error`` (clamped at 0)."""
        return accuracy_from_error(self.mean)

    @property
    def worst_accuracy(self) -> float:
        """Worst-case prediction accuracy, ``1 - max error`` (clamped at 0)."""
        return accuracy_from_error(self.maximum)


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Convenience wrapper over :meth:`ErrorSummary.from_errors`."""
    return ErrorSummary.from_errors(errors)
