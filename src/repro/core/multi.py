"""Multi-machine reliability and expected-completion-time models.

The paper's scheduler sketch says the predicted TR "can be used by the
scheduler to select the machine(s) with relatively high availability"
— note the plural.  This module supplies the arithmetic a multi-machine
scheduler needs on top of per-machine TR values:

* :func:`group_survival` — probability that *all* of a set of machines
  stay available (independent machines: the product), the quantity a
  gang-scheduled job group cares about;
* :func:`any_survival` — probability at least one machine survives
  (replicated execution);
* :func:`select_best_k` — the top-k machines by TR;
* :func:`replication_needed` — smallest replication factor reaching a
  target success probability;
* :func:`expected_completion_time` — expected wall-clock completion of
  a job under the restart model: attempts on a machine with failure
  rate lambda (from :func:`repro.sim.checkpoint.failure_rate_from_tr`)
  restart from scratch until one attempt survives the full execution
  window.  This is the classic ``E[T] = (e^{lambda R} - 1)/lambda``
  result, which lets a scheduler compare a slow-but-safe machine
  against a fast-but-flaky one on expected response time rather than
  raw TR.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = [
    "group_survival",
    "any_survival",
    "select_best_k",
    "replication_needed",
    "expected_completion_time",
    "expected_completion_with_checkpointing",
]


def _check_probs(trs: Sequence[float]) -> list[float]:
    out = []
    for tr in trs:
        if not 0.0 <= tr <= 1.0:
            raise ValueError(f"TR values must be in [0, 1], got {tr}")
        out.append(float(tr))
    if not out:
        raise ValueError("need at least one TR value")
    return out


def group_survival(trs: Sequence[float]) -> float:
    """P(all machines stay available) for independent machines."""
    result = 1.0
    for tr in _check_probs(trs):
        result *= tr
    return result


def any_survival(trs: Sequence[float]) -> float:
    """P(at least one machine stays available) for independent machines."""
    miss = 1.0
    for tr in _check_probs(trs):
        miss *= 1.0 - tr
    return 1.0 - miss


def select_best_k(machine_trs: Mapping[str, float], k: int) -> list[str]:
    """The ``k`` machine ids with the highest TR (ties broken by id).

    Raises when fewer than ``k`` machines are offered — a scheduler
    must know it cannot gang-schedule, not silently under-allocate.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(machine_trs) < k:
        raise ValueError(f"need at least {k} machines, got {len(machine_trs)}")
    _check_probs(list(machine_trs.values()))
    ranked = sorted(machine_trs.items(), key=lambda kv: (-kv[1], kv[0]))
    return [mid for mid, _tr in ranked[:k]]


def replication_needed(tr: float, target: float) -> int:
    """Smallest n with ``any_survival([tr] * n) >= target``.

    Raises for an impossible request (``tr == 0`` with ``target > 0``).
    """
    _check_probs([tr])
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    if tr >= target:
        return 1
    if tr <= 0.0:
        raise ValueError("a machine with TR 0 can never reach the target")
    # (1 - tr)^n <= 1 - target
    n = math.log(1.0 - target) / math.log(1.0 - tr)
    return max(1, math.ceil(n - 1e-12))


def expected_completion_time(
    work_seconds: float,
    failure_rate: float,
    *,
    restart_delay: float = 0.0,
) -> float:
    """Expected completion under exponential failures and full restarts.

    An attempt takes ``work_seconds``; failures arrive at ``failure_rate``
    per second; a failed attempt wastes its elapsed time plus
    ``restart_delay`` and starts over.  The classic renewal argument
    gives ``E[T] = (e^{lambda W} - 1) / lambda + (1/p - 1) * delay``
    with ``p = e^{-lambda W}`` the per-attempt success probability.
    """
    if work_seconds <= 0.0:
        raise ValueError(f"work_seconds must be positive, got {work_seconds}")
    if failure_rate < 0.0:
        raise ValueError(f"failure_rate must be >= 0, got {failure_rate}")
    if restart_delay < 0.0:
        raise ValueError(f"restart_delay must be >= 0, got {restart_delay}")
    if failure_rate == 0.0:
        return work_seconds
    lam_w = failure_rate * work_seconds
    if lam_w > 700.0:  # exp overflow guard: effectively never completes
        return math.inf
    p_success = math.exp(-lam_w)
    expected = (math.exp(lam_w) - 1.0) / failure_rate
    expected += (1.0 / p_success - 1.0) * restart_delay
    return expected


def expected_completion_with_checkpointing(
    work_seconds: float,
    failure_rate: float,
    checkpoint_interval: float,
    checkpoint_cost: float,
    *,
    restart_delay: float = 0.0,
) -> float:
    """Expected completion when progress is checkpointed every interval.

    The job is a chain of ``ceil(W / I)`` segments; each segment of
    length ``I + C`` (work plus checkpoint cost) is retried independently
    under the restart model.  Setting the interval with
    :func:`repro.sim.checkpoint.young_interval` approximately minimizes
    this expression — which is exactly what the E2E experiment's
    predictive-interval policy exploits.
    """
    if checkpoint_interval <= 0.0:
        raise ValueError(f"checkpoint_interval must be positive, got {checkpoint_interval}")
    if checkpoint_cost < 0.0:
        raise ValueError(f"checkpoint_cost must be >= 0, got {checkpoint_cost}")
    if work_seconds <= 0.0:
        raise ValueError(f"work_seconds must be positive, got {work_seconds}")
    n_segments = max(1, math.ceil(work_seconds / checkpoint_interval))
    last = work_seconds - (n_segments - 1) * checkpoint_interval
    total = 0.0
    for i in range(n_segments):
        seg_work = checkpoint_interval if i < n_segments - 1 else last
        seg_cost = checkpoint_cost if i < n_segments - 1 else 0.0
        total += expected_completion_time(
            seg_work + seg_cost, failure_rate, restart_delay=restart_delay
        )
    return total
