"""Incremental (online) kernel estimation for a live State Manager.

The batch estimator re-classifies every history window on every query.
That is fine for experiments but wasteful in deployment, where the
paper's State Manager answers a stream of queries for recurring windows
(a scheduler polls the same "next few hours" shape all day) while the
history grows one day at a time.

:class:`IncrementalPredictor` memoizes the expensive part — the pooled
per-day sojourn observations of each (clock window, day type) — keyed
by day index.  A query against a grown trace only classifies the *new*
days; everything else is reused.  Results are exactly equal to the
batch estimator's (verified by tests), because per-day observation
extraction is deterministic given the trace.

Cache invalidation: an entry is keyed by ``(machine, clock, day type,
day)``; re-synthesizing or replacing a trace object with different data
for the same machine id requires :meth:`invalidate`.

Bounding and concurrency: the cache is LRU-bounded at the
``(machine, clock window, day type)`` granularity (``max_cache_entries``,
default 512) so a stream of varied query windows cannot grow it without
limit, and every cache access is serialized by an internal lock so the
predictor can be shared by the worker threads of :mod:`repro.serve`.
Classification happens under the lock — correctness over parallel
classification of the same day — while the SMP solve itself runs
outside it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig, WindowedKernelEstimator, coarsen_states
from repro.core.smp import (
    SmpKernel,
    VisitObservation,
    collect_observations,
    kernel_from_observations,
    temporal_reliability,
)
from repro.core.states import State
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType
from repro.obs.instruments import instrument
from repro.obs.tracing import annotate
from repro.traces.trace import MachineTrace

__all__ = ["IncrementalPredictor"]


def _clock_key(clock: ClockWindow) -> tuple[float, float]:
    # Exact floats: rounding to whole seconds made distinct sub-second
    # windows (e.g. starts 0.2 s apart) share — and corrupt — one cache
    # entry.  Floats hash fine and day-observation extraction is a pure
    # function of the exact (start, duration) pair.
    return (clock.start, clock.duration)


@dataclass
class _WindowCache:
    per_day_obs: dict[int, list[VisitObservation]]
    per_day_init: dict[int, int]


class IncrementalPredictor:
    """A TR predictor with per-day observation memoization.

    Mirrors :class:`~repro.core.predictor.TemporalReliabilityPredictor`'s
    results while only paying classification cost for days not seen in
    earlier queries of the same clock window.
    """

    def __init__(
        self,
        classifier: StateClassifier | None = None,
        config: EstimatorConfig | None = None,
        *,
        max_cache_entries: int | None = 512,
    ) -> None:
        if max_cache_entries is not None and max_cache_entries < 1:
            raise ValueError(
                f"max_cache_entries must be positive or None, got {max_cache_entries}"
            )
        self.estimator = WindowedKernelEstimator(classifier, config)
        self.max_cache_entries = max_cache_entries
        self._caches: OrderedDict[tuple, _WindowCache] = OrderedDict()
        self._lock = threading.RLock()
        self.days_classified = 0
        self.days_reused = 0

    @property
    def config(self) -> EstimatorConfig:
        """The estimation configuration in force."""
        return self.estimator.config

    @property
    def classifier(self) -> StateClassifier:
        """The classifier in force."""
        return self.estimator.classifier

    def invalidate(self, machine_id: str | None = None) -> None:
        """Drop cached observations (for one machine, or all)."""
        with self._lock:
            if machine_id is None:
                dropped = len(self._caches)
                self._caches.clear()
            else:
                keys = [k for k in self._caches if k[0] == machine_id]
                dropped = len(keys)
                for key in keys:
                    del self._caches[key]
        if dropped:
            instrument("incremental_cache_invalidations_total").inc(dropped)

    def __len__(self) -> int:
        """Number of cached (machine, window, day-type) entries."""
        with self._lock:
            return len(self._caches)

    # ------------------------------------------------------------------ #

    def _day_entry(
        self, trace: MachineTrace, clock: ClockWindow, day: int
    ) -> tuple[list[VisitObservation], int]:
        """Observations and initial state for one history day (uncached)."""
        cfg = self.estimator.config
        lookback = cfg.lookback if cfg.lookback is not None else clock.duration
        target = clock.on_day(day)
        lb = min(lookback, max(0.0, target.start - trace.start_time))
        lb_steps = int(round(lb / trace.sample_period))
        view = trace.window_view(
            AbsoluteWindow(
                target.start - lb_steps * trace.sample_period,
                target.duration + lb_steps * trace.sample_period,
            )
        )
        states = self.estimator.classifier.classify_window(view)
        mult = cfg.step_multiple
        trim = lb_steps % mult
        coarse = coarsen_states(states[trim:], mult)
        coarse_lb = (lb_steps - trim) // mult
        obs = collect_observations([coarse], lookback_steps=coarse_lb)
        init = int(coarse[coarse_lb]) if coarse_lb < coarse.shape[0] else int(State.S1)
        return obs, init

    def _cache_for(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> tuple[_WindowCache, list[int]]:
        key = (trace.machine_id, _clock_key(clock), dtype)
        with self._lock:
            cache = self._caches.get(key)
            if cache is None:
                cache = self._caches[key] = _WindowCache(
                    per_day_obs={}, per_day_init={}
                )
                self._evict_lru(keep=key)
            else:
                self._caches.move_to_end(key)
            days = self.estimator.history_days(trace, clock, dtype)
            hits = misses = 0
            for day in days:
                if day in cache.per_day_obs:
                    hits += 1
                    continue
                obs, init = self._day_entry(trace, clock, day)
                cache.per_day_obs[day] = obs
                cache.per_day_init[day] = init
                misses += 1
            self.days_reused += hits
            self.days_classified += misses
        if hits:
            instrument("incremental_cache_hits_total").inc(hits)
        if misses:
            instrument("incremental_cache_misses_total").inc(misses)
            instrument("incremental_days_classified_total").inc(misses)
        # Enrich the enclosing predict.query span (no-op when untraced):
        # cold windows show up as misses, warm ones as pure hits.
        annotate(cache_hits=hits, cache_misses=misses)
        return cache, days

    def _evict_lru(self, *, keep: tuple) -> None:
        """Drop least-recently-used entries past the bound (lock held)."""
        if self.max_cache_entries is None:
            return
        evicted = 0
        while len(self._caches) > self.max_cache_entries:
            oldest = next(iter(self._caches))
            if oldest == keep:  # never evict the entry being filled
                self._caches.move_to_end(oldest)
                continue
            del self._caches[oldest]
            evicted += 1
        if evicted:
            instrument("incremental_cache_evictions_total").inc(evicted)

    # ------------------------------------------------------------------ #

    def _kernel_from_cache(
        self, trace: MachineTrace, clock: ClockWindow, cache: _WindowCache, days
    ) -> SmpKernel:
        obs = [o for day in days for o in cache.per_day_obs[day]]
        step = self.estimator.step(trace)
        horizon = win.n_steps(clock.duration, step)
        cfg = self.estimator.config
        return kernel_from_observations(
            obs, horizon, step, censoring=cfg.censoring, laplace=cfg.laplace
        )

    @staticmethod
    def _init_from_cache(cache: _WindowCache, days) -> State:
        counts = np.zeros(6, dtype=np.int64)
        for day in days:
            counts[cache.per_day_init[day]] += 1
        if counts.sum() == 0:
            return State.S1
        return State(int(np.argmax(counts[1:]) + 1))

    def kernel(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> SmpKernel:
        """Estimate the kernel, reusing cached per-day observations."""
        cache, days = self._cache_for(trace, clock, dtype)
        return self._kernel_from_cache(trace, clock, cache, days)

    def typical_initial_state(
        self, trace: MachineTrace, clock: ClockWindow, dtype: DayType
    ) -> State:
        """Most common cached window-start state (matches the batch rule)."""
        cache, days = self._cache_for(trace, clock, dtype)
        return self._init_from_cache(cache, days)

    def predict(
        self,
        trace: MachineTrace,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        init_state: State | None = None,
    ) -> float:
        """Predict TR; identical semantics to the batch predictor."""
        t0 = time.perf_counter()
        if isinstance(window, AbsoluteWindow):
            clock = window.clock_window()
            dtype = dtype or window.day_type
        else:
            clock = window
            if dtype is None:
                raise ValueError("a ClockWindow requires an explicit day type")
        cache, days = self._cache_for(trace, clock, dtype)
        kernel = self._kernel_from_cache(trace, clock, cache, days)
        if init_state is None:
            init_state = self._init_from_cache(cache, days)
        tr = temporal_reliability(kernel, init_state)
        instrument("tr_query_latency_seconds").labels(path="incremental").observe(
            time.perf_counter() - t0
        )
        return tr
