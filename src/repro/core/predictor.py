"""The public prediction entry point: temporal reliability of a window.

:class:`TemporalReliabilityPredictor` bundles the classifier, the
windowed kernel estimator and the Eq.-3 solver into the object a job
scheduler talks to (paper Fig. 2: the State Manager's prediction
function).  Given a training trace (the machine's history log) it
answers: *what is the probability that this machine stays available for
guest execution throughout a given future window?*

Typical use::

    predictor = TemporalReliabilityPredictor(history_trace)
    window = ClockWindow.from_hours(8.0, 5.0)       # 8:00 for 5 hours
    tr = predictor.predict(window, DayType.WEEKDAY) # e.g. 0.91
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.classifier import ClassifierConfig, StateClassifier
from repro.core.estimator import EstimatorConfig, WindowedKernelEstimator
from repro.core.smp import (
    SmpKernel,
    kernel_from_observations,
    temporal_reliability,
    temporal_reliability_profile,
)
from repro.core.states import State
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType
from repro.obs.instruments import instrument

__all__ = ["PredictionResult", "TemporalReliabilityPredictor", "max_reliable_horizon"]


@dataclass(frozen=True)
class PredictionResult:
    """A TR prediction plus its provenance and cost breakdown.

    ``estimation_seconds`` and ``solve_seconds`` split the wall-clock cost
    into the Q/H (kernel) estimation and the Eq.-3 recursion — the two
    curves of the paper's Figure 4.
    """

    tr: float
    init_state: State
    n_history_days: int
    n_observations: int
    horizon: int
    step: float
    estimation_seconds: float
    solve_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total prediction wall-clock cost."""
        return self.estimation_seconds + self.solve_seconds


class TemporalReliabilityPredictor:
    """Predict temporal reliability from a machine's monitoring history.

    Parameters
    ----------
    history:
        The machine's training trace (its history log).  May be replaced
        later via :meth:`update_history` as the monitor appends data.
    classifier_config / estimator_config:
        Optional overrides of the classification thresholds and the
        estimation tunables.
    """

    def __init__(
        self,
        history,
        classifier_config: ClassifierConfig | None = None,
        estimator_config: EstimatorConfig | None = None,
    ) -> None:
        self.classifier = StateClassifier(classifier_config)
        self.estimator = WindowedKernelEstimator(self.classifier, estimator_config)
        self.history = history

    def update_history(self, history) -> None:
        """Replace the history trace (e.g. after the monitor appended data)."""
        self.history = history

    # ------------------------------------------------------------------ #

    def _resolve(self, window, dtype: DayType | None) -> tuple[ClockWindow, DayType]:
        if isinstance(window, AbsoluteWindow):
            return window.clock_window(), (dtype or window.day_type)
        if dtype is None:
            raise ValueError("a ClockWindow requires an explicit day type")
        return window, dtype

    def kernel(self, window, dtype: DayType | None = None) -> SmpKernel:
        """Estimate the SMP kernel for a window without solving it."""
        clock, dt = self._resolve(window, dtype)
        return self.estimator.estimate(self.history, clock, dt)

    def predict_detailed(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        init_state: State | None = None,
    ) -> PredictionResult:
        """Predict TR with full provenance and cost accounting.

        ``init_state`` is the machine's current state as reported by the
        live monitor; when omitted, the most common state at the window's
        start time across the history is used (the scheduler-side
        fallback).  A failure initial state yields TR = 0.
        """
        clock, dt = self._resolve(window, dtype)
        t0 = time.perf_counter()
        obs = self.estimator.observations(self.history, clock, dt)
        step = self.estimator.step(self.history)
        horizon = win.n_steps(clock.duration, step)
        kernel = kernel_from_observations(
            obs,
            horizon,
            step,
            censoring=self.estimator.config.censoring,
            laplace=self.estimator.config.laplace,
        )
        t1 = time.perf_counter()
        if init_state is None:
            init_state = self.estimator.typical_initial_state(self.history, clock, dt)
        tr = temporal_reliability(kernel, init_state)
        t2 = time.perf_counter()
        instrument("tr_query_latency_seconds").labels(path="batch").observe(t2 - t0)
        n_days = len(self.estimator.history_days(self.history, clock, dt))
        return PredictionResult(
            tr=tr,
            init_state=State(init_state),
            n_history_days=n_days,
            n_observations=len(obs),
            horizon=horizon,
            step=step,
            estimation_seconds=t1 - t0,
            solve_seconds=t2 - t1,
        )

    def predict(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        init_state: State | None = None,
    ) -> float:
        """Predict the temporal reliability of a window (the headline API)."""
        return self.predict_detailed(window, dtype, init_state).tr

    def predict_profile(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        init_state: State | None = None,
    ):
        """``TR(m)`` for every sub-horizon of the window, plus the step.

        Returns ``(profile, step_seconds)``; ``profile[m]`` is the TR of
        the window truncated to ``m`` steps.  One kernel estimation and
        one recursion answer every job length up to the window — see
        :func:`repro.core.smp.temporal_reliability_profile`.
        """
        clock, dt = self._resolve(window, dtype)
        kernel = self.estimator.estimate(self.history, clock, dt)
        if init_state is None:
            init_state = self.estimator.typical_initial_state(self.history, clock, dt)
        return temporal_reliability_profile(kernel, init_state), kernel.step


def max_reliable_horizon(
    profile, step: float, tr_threshold: float
) -> float:
    """Longest window length (seconds) whose TR stays at/above a threshold.

    ``profile`` is the output of
    :func:`repro.core.smp.temporal_reliability_profile`; the function
    returns ``m* x step`` where ``m*`` is the largest index with
    ``profile[m] >= tr_threshold`` (0.0 when even the first step dips
    below).  A scheduler uses this to size the job it is willing to
    place on a machine.
    """
    import numpy as np

    if not 0.0 < tr_threshold <= 1.0:
        raise ValueError(f"tr_threshold must be in (0, 1], got {tr_threshold}")
    profile = np.asarray(profile, dtype=float)
    ok = np.flatnonzero(profile >= tr_threshold)
    if ok.size == 0:
        return 0.0
    return float(ok[-1] * step)
