"""Shared failure-cost model: checkpoint, migrate or restart a guest job.

The paper's proactive job management (Section 6 / refs [20, 31]) needs
two translations both the simulator's checkpointing policies and the
serving-tier scheduler perform:

* a **TR prediction → failure rate**: treating the window's failure
  process as locally Poisson, ``TR = exp(-lambda * T)`` inverts to
  ``lambda = -ln(TR) / T`` (:func:`failure_rate_from_tr`), from which
  Young's first-order optimal checkpoint interval follows
  (:func:`young_interval`);
* a **recovery-action choice** after (or ahead of) a host failure:
  resume from the last checkpoint, migrate the full job state, or
  restart from scratch — compared by the expected wall-clock each
  action needs to *finish* the job on the new host, under the failure
  rate implied by the new host's TR over the remaining-execution
  window (:func:`choose_recovery_action`), in the style of the
  checkpoint-vs-migration cost models of the post-petascale
  fault-tolerance literature.

This module is pure math on scalars — no simulator types, no serving
types — so ``repro.sim.checkpoint`` and ``repro.sched`` share one
implementation (the sim re-exports the first two functions unchanged).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ACTION_RESUME",
    "ACTION_MIGRATE",
    "ACTION_RESTART",
    "RECOVERY_ACTIONS",
    "RecoveryCosts",
    "RecoveryDecision",
    "failure_rate_from_tr",
    "young_interval",
    "expected_completion_seconds",
    "choose_recovery_action",
]

#: Resume from the job's last durable checkpoint on the new host.
ACTION_RESUME = "resume"
#: Move the full in-memory job state to the new host (only possible
#: while the old host is still reachable, i.e. proactive re-placement).
ACTION_MIGRATE = "migrate"
#: Re-run the job from scratch on the new host.
ACTION_RESTART = "restart"

RECOVERY_ACTIONS = (ACTION_RESUME, ACTION_MIGRATE, ACTION_RESTART)


def failure_rate_from_tr(tr: float, window_seconds: float) -> float:
    """Effective failure rate (per second) implied by a TR prediction.

    Treating the window's failure process as (locally) Poisson,
    ``TR = exp(-lambda * T)`` inverts to ``lambda = -ln(TR) / T``.  A TR
    of 0 maps to infinity; a TR of 1 to 0.
    """
    if not 0.0 <= tr <= 1.0:
        raise ValueError(f"tr must be in [0, 1], got {tr}")
    if window_seconds <= 0.0:
        raise ValueError(f"window must be positive, got {window_seconds}")
    if tr == 0.0:
        return math.inf
    return -math.log(tr) / window_seconds


def young_interval(checkpoint_cost_seconds: float, mtbf_seconds: float) -> float:
    """Young's first-order optimal checkpoint interval.

    ``t_opt = sqrt(2 * C * MTBF)`` — the classic result the follow-up
    failure-aware-checkpointing literature builds on.  An infinite MTBF
    yields an infinite interval (never checkpoint).
    """
    if checkpoint_cost_seconds <= 0.0:
        raise ValueError(f"checkpoint cost must be positive, got {checkpoint_cost_seconds}")
    if mtbf_seconds <= 0.0:
        raise ValueError(f"MTBF must be positive, got {mtbf_seconds}")
    if math.isinf(mtbf_seconds):
        return math.inf
    return math.sqrt(2.0 * checkpoint_cost_seconds * mtbf_seconds)


def expected_completion_seconds(work_seconds: float, failure_rate: float) -> float:
    """Expected wall-clock to finish ``work_seconds`` under restarts.

    Classic renewal result for a job needing ``L`` uninterrupted seconds
    on a host failing at Poisson rate ``lambda`` (each failure restarts
    the remaining work from its last stable point)::

        E[T] = (exp(lambda * L) - 1) / lambda

    which degrades gracefully to ``L`` as ``lambda -> 0`` and to
    infinity as ``lambda -> inf``.  The exponent is clamped so a very
    unreliable host yields a large finite cost instead of overflowing.
    """
    if work_seconds < 0.0:
        raise ValueError(f"work must be >= 0, got {work_seconds}")
    if failure_rate < 0.0:
        raise ValueError(f"failure rate must be >= 0, got {failure_rate}")
    if work_seconds == 0.0:
        return 0.0
    if failure_rate == 0.0:
        return work_seconds
    if math.isinf(failure_rate):
        return math.inf
    exponent = min(failure_rate * work_seconds, 700.0)
    return math.expm1(exponent) / failure_rate


@dataclass(frozen=True)
class RecoveryCosts:
    """Fixed per-action overheads (seconds) of one deployment."""

    #: Reading the checkpoint image back on the new host.
    resume_overhead_s: float = 30.0
    #: Shipping the full in-memory state to the new host.
    migrate_overhead_s: float = 90.0
    #: Launching from scratch (input staging, warm-up).
    restart_overhead_s: float = 5.0

    def __post_init__(self) -> None:
        for name in ("resume_overhead_s", "migrate_overhead_s", "restart_overhead_s"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")


@dataclass(frozen=True)
class RecoveryDecision:
    """The chosen action and the per-action expected completion costs."""

    action: str
    expected_seconds: float
    #: Action -> expected completion seconds (inf: action unavailable).
    costs: dict[str, float]

    @property
    def retained_seconds_for(self) -> dict[str, str]:  # pragma: no cover - doc aid
        return {
            ACTION_RESUME: "checkpointed progress",
            ACTION_MIGRATE: "all progress",
            ACTION_RESTART: "nothing",
        }


def choose_recovery_action(
    *,
    total_work_seconds: float,
    progress_seconds: float,
    checkpointed_seconds: float,
    new_host_tr: float,
    window_seconds: float,
    costs: RecoveryCosts | None = None,
    migratable: bool = False,
) -> RecoveryDecision:
    """Pick the cheapest way to finish a displaced job on a new host.

    Each action keeps a different amount of the job's progress —
    resume keeps ``checkpointed_seconds``, migrate keeps
    ``progress_seconds`` (only available while the old host is still
    reachable, ``migratable=True``), restart keeps nothing — and pays a
    fixed overhead before the remaining work runs under the failure
    rate implied by ``new_host_tr`` over ``window_seconds``
    (:func:`expected_completion_seconds`).  The cheapest expected total
    wins; ties break toward the action retaining the most progress
    (migrate > resume > restart).
    """
    if not 0.0 <= checkpointed_seconds <= progress_seconds <= total_work_seconds:
        raise ValueError(
            "need 0 <= checkpointed <= progress <= total work, got "
            f"{checkpointed_seconds} / {progress_seconds} / {total_work_seconds}"
        )
    costs = costs or RecoveryCosts()
    tr = min(max(new_host_tr, 1e-9), 1.0)
    rate = failure_rate_from_tr(tr, max(window_seconds, 1.0))

    def _total(retained: float, overhead: float) -> float:
        return overhead + expected_completion_seconds(
            total_work_seconds - retained, rate
        )

    options: dict[str, float] = {
        ACTION_RESTART: _total(0.0, costs.restart_overhead_s),
        ACTION_RESUME: (
            _total(checkpointed_seconds, costs.resume_overhead_s)
            if checkpointed_seconds > 0.0
            else math.inf
        ),
        ACTION_MIGRATE: (
            _total(progress_seconds, costs.migrate_overhead_s)
            if migratable
            else math.inf
        ),
    }
    preference = (ACTION_MIGRATE, ACTION_RESUME, ACTION_RESTART)
    action = min(preference, key=lambda a: (options[a], preference.index(a)))
    if math.isinf(options[action]):
        action = ACTION_RESTART  # everything unavailable: restart is always legal
    return RecoveryDecision(
        action=action, expected_seconds=options[action], costs=options
    )
