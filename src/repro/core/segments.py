"""Run-length utilities over classified state sequences.

The SMP estimator consumes *visits* (maximal runs of one state) and the
transitions between them, not raw per-sample states.  This module provides
the vectorized run-length encoding both it and the classifier's
transient-spike rule are built on.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import State
from repro.traces.events import StateVisit

__all__ = ["run_length_encode", "visits", "transition_pairs", "failure_free"]


def run_length_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode a 1-D array.

    Returns ``(run_values, run_starts, run_lengths)``; empty input yields
    three empty arrays.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"expected 1-D array, got shape {values.shape}")
    n = values.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.intp)
        return values[:0], empty, empty
    change = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate(([0], change))
    lengths = np.diff(np.concatenate((starts, [n])))
    return values[starts], starts.astype(np.intp), lengths.astype(np.intp)


def visits(states: np.ndarray) -> list[StateVisit]:
    """Decompose a per-sample state sequence into maximal state visits."""
    vals, starts, lengths = run_length_encode(np.asarray(states))
    return [
        StateVisit(state=State(int(v)), start_index=int(s), length=int(ln))
        for v, s, ln in zip(vals, starts, lengths)
    ]


def transition_pairs(states: np.ndarray) -> list[tuple[State, State, int]]:
    """List the observed transitions ``(from, to, holding_samples)``.

    ``holding_samples`` is the number of samples the sequence stayed in
    ``from`` before switching to ``to``.  The final (right-censored) visit
    produces no pair — the estimator accounts for censoring separately.
    """
    vals, _starts, lengths = run_length_encode(np.asarray(states))
    out: list[tuple[State, State, int]] = []
    for i in range(len(vals) - 1):
        out.append((State(int(vals[i])), State(int(vals[i + 1])), int(lengths[i])))
    return out


def failure_free(states: np.ndarray) -> bool:
    """True when a state sequence never enters S3/S4/S5.

    This is the per-day ingredient of the *empirical* temporal
    reliability used as ground truth in the paper's accuracy experiments.
    """
    states = np.asarray(states)
    return bool(np.all(states <= State.S2))
