"""The discrete-time semi-Markov process (SMP) at the heart of the paper.

Model
-----
The availability model has five states; S3/S4/S5 are absorbing failures
(paper Fig. 3), so the SMP kernel has exactly eight structurally non-zero
``(from, to)`` slots::

    (1,2) (1,3) (1,4) (1,5)   from S1
    (2,1) (2,3) (2,4) (2,5)   from S2

Rather than carrying the transition matrix ``Q`` and the holding-time mass
functions ``H`` separately, we estimate and store their product — the
*semi-Markov kernel* ::

    K_{i,k}(l) = Q_i(k) * H_{i,k}(l)
              = Pr{ next transition from S_i is to S_k, after exactly l steps }

which is the only combination the interval-transition recursion (paper
Eq. 3) ever uses.  ``Q`` and ``H`` are recoverable from ``K`` and exposed
as properties for inspection and tests.

Estimation
----------
:func:`estimate_kernel` counts state visits across the pooled history
windows (one state sequence per history day).  Each visit of S1/S2 whose
transition falls inside the window contributes one completed observation
``(holding, target)``; visits still in progress at the window end are
right-censored.  Two censoring treatments are provided:

``"beyond"`` (default)
    censored visits contribute survival mass beyond the horizon — they
    count in the visit total but never produce a transition within the
    window.  Slightly optimistic for visits censored early in the window.
``"km"``
    a discrete competing-risks Kaplan-Meier estimator: per-step cause-
    specific hazards ``h_k(l) = d_k(l) / n_at_risk(l)`` are converted to a
    kernel via the product-limit survival curve.  Handles censoring
    exactly at the cost of slightly noisier tails.
``"drop"``
    censored visits are discarded entirely (biased toward transitions;
    provided for ablation).

Solution
--------
:func:`failure_probabilities` implements paper Eq. 3: the mutual recursion
between ``P_{1,j}(m)`` and ``P_{2,j}(m)`` for the three failure targets
``j``, vectorized over ``j`` and over the convolution with NumPy dots.
The arithmetic cost is ``O((T/d)^2)`` — the paper observes the measured
superlinear growth (exponent ~1.85) in its Fig. 4, which our Fig. 4 bench
reproduces.  :func:`failure_probabilities_dense` is an intentionally
naive 5-state reference implementation used to validate the sparse
solver in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.core.segments import run_length_encode
from repro.core.states import FAILURE_STATES, N_STATES, State
from repro.obs.instruments import instrument

__all__ = [
    "SLOTS",
    "SLOT_INDEX",
    "SmpKernel",
    "VisitObservation",
    "collect_observations",
    "estimate_kernel",
    "kernel_from_observations",
    "failure_probabilities",
    "temporal_reliability",
    "temporal_reliability_profile",
    "failure_probabilities_dense",
]

#: The eight structurally non-zero (from, to) pairs, in storage order.
SLOTS: tuple[tuple[int, int], ...] = (
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 5),
    (2, 1),
    (2, 3),
    (2, 4),
    (2, 5),
)

#: Map (from, to) -> row index into the kernel array.
SLOT_INDEX: dict[tuple[int, int], int] = {pair: i for i, pair in enumerate(SLOTS)}

#: Failure-target column order used throughout: S3, S4, S5.
_FAILURE_TARGETS = (3, 4, 5)

Censoring = Literal["beyond", "km", "drop"]


@dataclass(frozen=True)
class VisitObservation:
    """One observed sojourn in an operational state.

    ``holding`` is in discretization steps; ``target`` is the next state
    (as an int) for completed visits and ``None`` for right-censored ones,
    in which case ``holding`` is the censoring time (steps survived).
    """

    state: int
    holding: int
    target: int | None

    @property
    def censored(self) -> bool:
        """True when the visit did not end within the observed window."""
        return self.target is None


class SmpKernel:
    """A sparse discrete-time semi-Markov kernel over the 8 slots.

    Parameters
    ----------
    k:
        Array of shape ``(8, horizon + 1)``; ``k[s, l]`` is the
        probability that a visit to the slot's source state ends with the
        slot's transition after exactly ``l`` steps.  Column 0 is always
        zero (transitions take at least one step).  Row groups (source 1:
        rows 0-3; source 2: rows 4-7) may sum to less than 1 — the
        remaining mass is "no transition within the horizon".
    step:
        The discretization interval ``d`` in seconds (kept for reporting).
    """

    __slots__ = ("k", "step")

    def __init__(self, k: np.ndarray, step: float) -> None:
        k = np.asarray(k, dtype=np.float64)
        if k.ndim != 2 or k.shape[0] != len(SLOTS):
            raise ValueError(f"kernel must have shape (8, horizon+1), got {k.shape}")
        if k.shape[1] < 2:
            raise ValueError("kernel horizon must be at least 1 step")
        if np.any(k < -1e-12):
            raise ValueError("kernel probabilities must be non-negative")
        if np.any(np.abs(k[:, 0]) > 1e-12):
            raise ValueError("kernel column 0 (zero holding time) must be zero")
        for src_rows in (slice(0, 4), slice(4, 8)):
            total = float(k[src_rows].sum())
            if total > 1.0 + 1e-9:
                raise ValueError(f"kernel mass for one source state exceeds 1 ({total})")
        if step <= 0.0:
            raise ValueError(f"step must be positive, got {step}")
        self.k = k
        self.step = float(step)

    # ------------------------------------------------------------------ #

    @property
    def horizon(self) -> int:
        """Number of discretization steps the kernel covers."""
        return self.k.shape[1] - 1

    def slot(self, src: int, dst: int) -> np.ndarray:
        """Return the pmf row ``K_{src,dst}(l)`` (a view)."""
        return self.k[SLOT_INDEX[(src, dst)]]

    @property
    def q(self) -> np.ndarray:
        """The within-horizon transition matrix ``Q`` as a dense (5,5) array.

        ``Q[i-1, j-1] = sum_l K_{i,j}(l)`` — the probability that a visit
        to ``S_i`` ends with a transition to ``S_j`` within the horizon.
        Rows of absorbing states are zero.
        """
        q = np.zeros((N_STATES, N_STATES))
        for (src, dst), row in SLOT_INDEX.items():
            q[src - 1, dst - 1] = self.k[row].sum()
        return q

    def holding_pmf(self, src: int, dst: int) -> np.ndarray:
        """The conditional holding-time pmf ``H_{src,dst}(l)``.

        Zero everywhere when the transition was never observed.
        """
        row = self.slot(src, dst)
        total = row.sum()
        if total <= 0.0:
            return np.zeros_like(row)
        return row / total

    def expected_holding(self, src: int, dst: int) -> float:
        """Mean holding time (steps) of the ``src -> dst`` transition."""
        pmf = self.holding_pmf(src, dst)
        return float(np.dot(pmf, np.arange(pmf.shape[0])))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SmpKernel(horizon={self.horizon}, step={self.step}s)"


# ---------------------------------------------------------------------- #
# estimation
# ---------------------------------------------------------------------- #


def collect_observations(
    sequences: Iterable[np.ndarray],
    *,
    lookback_steps: int = 0,
) -> list[VisitObservation]:
    """Extract sojourn observations from pooled history state sequences.

    Each sequence covers one history day's clock window, optionally with
    ``lookback_steps`` extra samples *preceding* the window so that the
    holding time of the visit in progress at the window start is measured
    from its true entry (visits older than the lookback remain
    left-truncated, a second-order effect).

    A visit of S1/S2 contributes when it overlaps the window proper
    (index >= ``lookback_steps``):

    * completed, if its transition occurs at or before the window end;
    * right-censored at the window end otherwise.

    Visits to failure states contribute nothing (absorbing).
    """
    obs: list[VisitObservation] = []
    for seq in sequences:
        seq = np.asarray(seq)
        if seq.ndim != 1:
            raise ValueError(f"state sequences must be 1-D, got shape {seq.shape}")
        if seq.shape[0] <= lookback_steps:
            raise ValueError(
                f"sequence of {seq.shape[0]} samples does not extend past the "
                f"lookback of {lookback_steps}"
            )
        vals, starts, lengths = run_length_encode(seq)
        n_runs = len(vals)
        for i in range(n_runs):
            state = int(vals[i])
            if state not in (State.S1, State.S2):
                continue
            end = int(starts[i] + lengths[i])
            if end <= lookback_steps:
                continue  # entirely within the lookback prefix
            if i + 1 < n_runs:
                obs.append(
                    VisitObservation(state=state, holding=int(lengths[i]), target=int(vals[i + 1]))
                )
            else:
                obs.append(VisitObservation(state=state, holding=int(lengths[i]), target=None))
    return obs


def estimate_kernel(
    sequences: Iterable[np.ndarray],
    horizon: int,
    step: float,
    *,
    lookback_steps: int = 0,
    censoring: Censoring = "beyond",
    laplace: float = 0.0,
) -> SmpKernel:
    """Estimate the sparse SMP kernel from pooled history windows.

    Parameters
    ----------
    sequences:
        Per-history-day state sequences (see :func:`collect_observations`).
    horizon:
        Number of discretization steps ``T/d`` of the prediction window.
    step:
        Discretization interval ``d`` (seconds); stored on the kernel.
    lookback_steps:
        Samples of context preceding each window (see above).
    censoring:
        Treatment of right-censored visits (module docstring).
    laplace:
        Optional smoothing: adds ``laplace`` pseudo-visits per source
        state that never transition (pure survival mass).  Damps the
        impact of isolated irregular events in small histories.
    """
    obs = collect_observations(sequences, lookback_steps=lookback_steps)
    return kernel_from_observations(obs, horizon, step, censoring=censoring, laplace=laplace)


def kernel_from_observations(
    obs: Sequence[VisitObservation],
    horizon: int,
    step: float,
    *,
    censoring: Censoring = "beyond",
    laplace: float = 0.0,
) -> SmpKernel:
    """Build a kernel from pre-collected sojourn observations.

    Used when observations are gathered with per-day lookbacks (the
    windowed estimator); otherwise identical to :func:`estimate_kernel`.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if laplace < 0.0:
        raise ValueError(f"laplace must be >= 0, got {laplace}")
    t0 = time.perf_counter()
    for o in obs:
        if o.state not in (1, 2):
            raise ValueError(f"observations must come from S1/S2 visits, got {o.state}")
        if o.target is not None and (o.state, o.target) not in SLOT_INDEX:
            raise ValueError(f"impossible transition {o.state} -> {o.target}")
    if censoring == "km":
        k = _kernel_km(obs, horizon, laplace)
    elif censoring in ("beyond", "drop"):
        k = _kernel_counting(obs, horizon, laplace, drop_censored=(censoring == "drop"))
    else:  # pragma: no cover - guarded by Literal type
        raise ValueError(f"unknown censoring mode {censoring!r}")
    kernel = SmpKernel(k, step)
    instrument("smp_kernel_estimation_seconds").observe(time.perf_counter() - t0)
    return kernel


def _slot_rows_for(src: int) -> list[tuple[int, int]]:
    """(row, dst) pairs of the kernel rows whose source is ``src``."""
    return [(row, dst) for (s, dst), row in SLOT_INDEX.items() if s == src]


def _kernel_counting(
    obs: Sequence[VisitObservation],
    horizon: int,
    laplace: float,
    *,
    drop_censored: bool,
) -> np.ndarray:
    """Direct counting estimator with beyond-horizon or dropped censoring."""
    counts = np.zeros((len(SLOTS), horizon + 1))
    visits = {1: laplace, 2: laplace}
    for o in obs:
        if o.censored or o.holding > horizon:
            # A censored visit, or a completed one whose transition falls
            # past the horizon, contributes survival mass only.
            if not (o.censored and drop_censored):
                visits[o.state] += 1.0
            continue
        visits[o.state] += 1.0
        counts[SLOT_INDEX[(o.state, o.target)], o.holding] += 1.0
    k = np.zeros_like(counts)
    for src in (1, 2):
        if visits[src] > 0.0:
            rows = [row for row, _dst in _slot_rows_for(src)]
            k[rows] = counts[rows] / visits[src]
    return k


def _kernel_km(obs: Sequence[VisitObservation], horizon: int, laplace: float) -> np.ndarray:
    """Discrete competing-risks Kaplan-Meier (product-limit) estimator.

    For each source state ``i`` and step ``l``: the cause-specific hazard
    of target ``k`` is ``h_k(l) = d_k(l) / n(l)`` with ``n(l)`` the number
    of visits still at risk just before ``l``.  The kernel follows as
    ``K_{i,k}(l) = h_k(l) * S(l-1)`` with ``S`` the all-cause survival
    product.  Censored visits leave the risk set after their censoring
    time; Laplace pseudo-visits are modelled as censored at the horizon.
    """
    k = np.zeros((len(SLOTS), horizon + 1))
    for src in (1, 2):
        rows = _slot_rows_for(src)
        dst_of = {dst: row for row, dst in rows}
        # events[dst][l] and censor counts per step
        d = {dst: np.zeros(horizon + 1) for _row, dst in rows}
        c = np.zeros(horizon + 2)
        n_total = laplace
        if laplace > 0.0:
            c[horizon + 1] += laplace
        for o in obs:
            if o.state != src:
                continue
            n_total += 1.0
            t = min(o.holding, horizon + 1)
            if o.censored or o.holding > horizon:
                c[t if o.censored else horizon + 1] += 1.0
            else:
                d[o.target][o.holding] += 1.0
        if n_total <= 0.0:
            continue
        at_risk = n_total
        survival = 1.0
        for l in range(1, horizon + 1):
            if at_risk <= 0.0:
                break
            events_l = sum(d[dst][l] for dst in d)
            for dst in d:
                if d[dst][l] > 0.0:
                    k[dst_of[dst], l] = survival * d[dst][l] / at_risk
            survival *= max(0.0, 1.0 - events_l / at_risk)
            at_risk -= events_l + c[l]
    return k


# ---------------------------------------------------------------------- #
# solution (paper Eq. 3)
# ---------------------------------------------------------------------- #


def failure_probabilities(kernel: SmpKernel, init_state: State | int) -> np.ndarray:
    """Interval failure probabilities ``P_{init,j}(horizon)`` for j = 3,4,5.

    Implements the sparse mutual recursion of paper Eq. 3.  Returns an
    array ``[P_{init,3}, P_{init,4}, P_{init,5}]`` evaluated at the
    kernel's horizon.  For a failure ``init_state`` the corresponding
    entry is 1 (the process is already there) per the boundary condition
    ``P_{i,j}(0) = delta_{ij}``.
    """
    init = int(init_state)
    n = kernel.horizon
    if init in (3, 4, 5):
        out = np.zeros(3)
        out[init - 3] = 1.0
        return out
    if init not in (1, 2):
        raise ValueError(f"init_state must be one of S1..S5, got {init_state!r}")

    t0 = time.perf_counter()
    k12 = kernel.slot(1, 2)
    k21 = kernel.slot(2, 1)
    # Direct-to-failure cumulative mass: C_i[j, m] = sum_{l<=m} K_{i,j}(l).
    c1 = np.cumsum(np.stack([kernel.slot(1, j) for j in _FAILURE_TARGETS]), axis=1)
    c2 = np.cumsum(np.stack([kernel.slot(2, j) for j in _FAILURE_TARGETS]), axis=1)

    # p1[m, j], p2[m, j] built stepwise; the convolution term couples them.
    p1 = np.zeros((n + 1, 3))
    p2 = np.zeros((n + 1, 3))
    for m in range(1, n + 1):
        if m > 1:
            # sum_{l=1}^{m-1} K_{1,2}(l) P_{2,j}(m-l)  — vectorized over j.
            conv1 = k12[1:m] @ p2[m - 1 : 0 : -1]
            conv2 = k21[1:m] @ p1[m - 1 : 0 : -1]
        else:
            conv1 = conv2 = 0.0
        p1[m] = c1[:, m] + conv1
        p2[m] = c2[:, m] + conv2
    result = p1[n] if init == 1 else p2[n]
    instrument("smp_solve_seconds").observe(time.perf_counter() - t0)
    # Probabilities of disjoint absorbing events; clip tiny FP excursions.
    return np.clip(result, 0.0, 1.0)


def temporal_reliability(kernel: SmpKernel, init_state: State | int) -> float:
    """Temporal reliability ``TR = 1 - sum_j P_{init,j}(T/d)`` (paper Eq. 2)."""
    total = float(failure_probabilities(kernel, init_state).sum())
    return float(np.clip(1.0 - total, 0.0, 1.0))


def temporal_reliability_profile(kernel: SmpKernel, init_state: State | int) -> np.ndarray:
    """``TR(m)`` for every sub-horizon ``m = 0..horizon``, from one solve.

    The Eq.-3 recursion computes all intermediate interval probabilities
    anyway; this exposes them, so a scheduler can read the survival
    probability of *any* job length up to the window in a single pass —
    e.g. "how long a job can I place here with TR >= 0.9?".  Entry 0 is
    1.0 by the boundary condition; the profile is non-increasing.

    For a failure ``init_state`` the profile is 0 beyond m = 0.
    """
    init = int(init_state)
    n = kernel.horizon
    if init in (3, 4, 5):
        out = np.zeros(n + 1)
        out[0] = 1.0
        return out
    if init not in (1, 2):
        raise ValueError(f"init_state must be one of S1..S5, got {init_state!r}")
    t0 = time.perf_counter()
    k12 = kernel.slot(1, 2)
    k21 = kernel.slot(2, 1)
    c1 = np.cumsum(np.stack([kernel.slot(1, j) for j in _FAILURE_TARGETS]), axis=1)
    c2 = np.cumsum(np.stack([kernel.slot(2, j) for j in _FAILURE_TARGETS]), axis=1)
    p1 = np.zeros((n + 1, 3))
    p2 = np.zeros((n + 1, 3))
    for m in range(1, n + 1):
        if m > 1:
            conv1 = k12[1:m] @ p2[m - 1 : 0 : -1]
            conv2 = k21[1:m] @ p1[m - 1 : 0 : -1]
        else:
            conv1 = conv2 = 0.0
        p1[m] = c1[:, m] + conv1
        p2[m] = c2[:, m] + conv2
    fail = (p1 if init == 1 else p2).sum(axis=1)
    instrument("smp_solve_seconds").observe(time.perf_counter() - t0)
    return np.clip(1.0 - fail, 0.0, 1.0)


# ---------------------------------------------------------------------- #
# dense reference solver (for validation)
# ---------------------------------------------------------------------- #


def failure_probabilities_dense(kernel: SmpKernel, init_state: State | int) -> np.ndarray:
    """Naive dense-solver for ``P_{init,j}(horizon)``; validates the sparse one.

    Expands the kernel to full ``(5, 5, horizon+1)`` form and runs the
    textbook recursion ``P_{i,j}(m) = delta_{ij} B_i(m) + sum_{k,l}
    K_{i,k}(l) P_{k,j}(m-l)`` over all states, where ``B_i(m)`` is the
    probability of no transition out of ``i`` by ``m``.  O(S^2 n^2) and
    Python-loop heavy on purpose — clarity over speed.
    """
    init = int(init_state)
    n = kernel.horizon
    kfull = np.zeros((N_STATES, N_STATES, n + 1))
    for (src, dst), row in SLOT_INDEX.items():
        kfull[src - 1, dst - 1] = kernel.k[row]
    # Absorbing states "transition to themselves" with certainty at l=1 so
    # that occupancy propagates in the dense recursion.
    for s in FAILURE_STATES:
        kfull[s - 1, s - 1, 1] = 1.0
    no_transition = 1.0 - np.cumsum(kfull.sum(axis=1), axis=1)  # B_i(m)
    p = np.zeros((N_STATES, N_STATES, n + 1))
    p[:, :, 0] = np.eye(N_STATES)
    for m in range(1, n + 1):
        for i in range(N_STATES):
            for j in range(N_STATES):
                acc = no_transition[i, m] if i == j else 0.0
                for kk in range(N_STATES):
                    for l in range(1, m + 1):
                        acc += kfull[i, kk, l] * p[kk, j, m - l]
                p[i, j, m] = acc
    return p[init - 1, [j - 1 for j in _FAILURE_TARGETS], n]
