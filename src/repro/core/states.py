"""The five-state resource availability model (paper Section 3.3, Fig. 1).

States
------
``S1``  full availability: host CPU load below ``Th1``; a guest process runs
        at default priority.
``S2``  constrained availability: host CPU load between ``Th1`` and ``Th2``;
        the guest must run at the lowest priority (``renice 19``) to keep
        host slowdown below the noticeable-slowdown limit (5%).
``S3``  CPU unavailability (UEC): host CPU load steadily above ``Th2``; any
        guest process must be terminated.
``S4``  memory thrashing (UEC): free memory cannot hold the guest working
        set; any guest process must be terminated.
``S5``  machine unavailability (URR): the machine was revoked by its owner
        or failed; detected by a stale monitoring heartbeat.

S3, S4 and S5 are *unrecoverable* for a guest job — the guest has been
killed or migrated and no state is left on the host — hence they are
absorbing states of the semi-Markov process (paper Fig. 3 sparsity).

S1 and S2 additionally absorb *transient* excursions of the load above
``Th2`` (shorter than the suspension tolerance, 1 minute in the paper):
the guest is briefly suspended and then resumed, which is not a failure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "State",
    "OPERATIONAL_STATES",
    "FAILURE_STATES",
    "N_STATES",
    "Thresholds",
    "DEFAULT_THRESHOLDS",
]


class State(enum.IntEnum):
    """One of the five availability states.  Values match the paper (1-5)."""

    S1 = 1  #: full availability for guest process
    S2 = 2  #: availability for guest process at lowest priority
    S3 = 3  #: CPU unavailability (UEC)
    S4 = 4  #: memory thrashing (UEC)
    S5 = 5  #: machine unavailability (URR)

    @property
    def is_operational(self) -> bool:
        """True for S1/S2 — a guest process can (still) run."""
        return self in OPERATIONAL_STATES

    @property
    def is_failure(self) -> bool:
        """True for the absorbing failure states S3/S4/S5."""
        return self in FAILURE_STATES

    @property
    def is_uec(self) -> bool:
        """True when the state is unavailability due to excessive contention."""
        return self in (State.S3, State.S4)

    @property
    def is_urr(self) -> bool:
        """True when the state is unavailability due to resource revocation."""
        return self is State.S5

    def describe(self) -> str:
        """A one-line human-readable description of the state."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    State.S1: "full resource availability for guest process",
    State.S2: "resource availability for guest process with lowest priority",
    State.S3: "CPU unavailability (UEC)",
    State.S4: "memory thrashing (UEC)",
    State.S5: "machine unavailability (URR)",
}

#: States in which a guest process keeps running.
OPERATIONAL_STATES = (State.S1, State.S2)

#: Absorbing failure states; entering any of these kills the guest job.
FAILURE_STATES = (State.S3, State.S4, State.S5)

#: Total number of states in the model.
N_STATES = 5


@dataclass(frozen=True)
class Thresholds:
    """Host-load thresholds that quantify "noticeable slowdown".

    ``th1`` and ``th2`` are the two host-CPU-load thresholds derived from
    the empirical contention studies (paper Section 3.2): below ``th1`` a
    default-priority guest is harmless; between ``th1`` and ``th2`` the
    guest must be reniced; steadily above ``th2`` the guest must be
    terminated.  ``slowdown_limit`` is the noticeable-slowdown criterion
    that defines the thresholds (reduction of host CPU usage > 5%).

    The paper's Linux testbed measured ``th1 = 0.20`` and ``th2 = 0.60``;
    these are the defaults.  :mod:`repro.contention` re-derives thresholds
    for the simulated testbed.
    """

    th1: float = 0.20
    th2: float = 0.60
    slowdown_limit: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.th1 < self.th2 <= 1.0:
            raise ValueError(
                f"thresholds must satisfy 0 < th1 < th2 <= 1, got th1={self.th1}, th2={self.th2}"
            )
        if not 0.0 < self.slowdown_limit < 1.0:
            raise ValueError(f"slowdown_limit must be in (0, 1), got {self.slowdown_limit}")

    def cpu_state(self, load: float) -> State:
        """Classify a (steady) host CPU load into S1/S2/S3.

        This is the raw threshold rule; the transient-spike tolerance and
        the S4/S5 conditions are applied by
        :class:`repro.core.classifier.StateClassifier`.
        """
        if load < self.th1:
            return State.S1
        if load <= self.th2:
            return State.S2
        return State.S3


#: Thresholds measured on the paper's Purdue Linux testbed.
DEFAULT_THRESHOLDS = Thresholds()
