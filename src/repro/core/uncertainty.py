"""Bootstrap confidence intervals for temporal-reliability predictions.

The related work the paper criticizes (software-rejuvenation prediction
[28]) suffered "prohibitively wide confidence intervals"; the paper
itself reports only point predictions.  A production FGCS scheduler,
however, benefits from knowing *how sure* the predictor is — a TR of
0.9 estimated from three history days is a different signal than the
same value from thirty.

:func:`bootstrap_tr` quantifies that: it resamples the history days
(the natural exchangeable unit — the SMP pools per-day windows) with
replacement, re-estimates the kernel and TR per resample, and returns
percentile intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.estimator import WindowedKernelEstimator, coarsen_states
from repro.core.smp import collect_observations, kernel_from_observations, temporal_reliability
from repro.core.states import State
from repro.core.windows import ClockWindow, DayType
from repro.traces.trace import MachineTrace

__all__ = ["TrInterval", "bootstrap_tr"]


@dataclass(frozen=True)
class TrInterval:
    """A TR point estimate with a bootstrap percentile interval."""

    point: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int
    n_history_days: int

    def __post_init__(self) -> None:
        if not self.lower - 1e-9 <= self.point <= self.upper + 1e-9:
            raise ValueError(
                f"point {self.point} outside interval [{self.lower}, {self.upper}]"
            )

    @property
    def width(self) -> float:
        """Width of the interval (0 = perfectly certain)."""
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pct = int(round(self.confidence * 100))
        return f"TR {self.point:.3f} [{self.lower:.3f}, {self.upper:.3f}] ({pct}% CI)"


def bootstrap_tr(
    estimator: WindowedKernelEstimator,
    trace: MachineTrace,
    clock: ClockWindow,
    dtype: DayType,
    *,
    init_state: State | None = None,
    n_resamples: int = 200,
    confidence: float = 0.90,
    rng: np.random.Generator | int = 0,
) -> TrInterval:
    """Bootstrap a confidence interval for the TR of one window.

    History days are resampled with replacement; each resample's pooled
    sojourn observations yield a kernel and a TR.  The point estimate
    uses the original (unresampled) history.  Raises when the trace has
    no eligible history days.
    """
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng)

    history = estimator.history_windows(trace, clock, dtype)
    if not history:
        raise ValueError(f"trace has no eligible {dtype} history days for this window")
    mult = estimator.config.step_multiple
    step = estimator.step(trace)
    horizon = win.n_steps(clock.duration, step)

    # Pre-compute per-day observation lists once; bootstrap reuses them.
    per_day = []
    for hw in history:
        trim = hw.lookback_steps % mult
        states = coarsen_states(hw.states[trim:], mult)
        lb = (hw.lookback_steps - trim) // mult
        per_day.append(collect_observations([states], lookback_steps=lb))

    if init_state is None:
        init_state = estimator.typical_initial_state(trace, clock, dtype)

    def tr_from(day_indices) -> float:
        obs = [o for i in day_indices for o in per_day[i]]
        kernel = kernel_from_observations(
            obs,
            horizon,
            step,
            censoring=estimator.config.censoring,
            laplace=estimator.config.laplace,
        )
        return temporal_reliability(kernel, init_state)

    n_days = len(per_day)
    point = tr_from(range(n_days))
    samples = np.empty(n_resamples)
    for b in range(n_resamples):
        samples[b] = tr_from(rng.integers(0, n_days, size=n_days))
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(samples, alpha))
    upper = float(np.quantile(samples, 1.0 - alpha))
    return TrInterval(
        point=point,
        lower=min(lower, point),
        upper=max(upper, point),
        confidence=confidence,
        n_resamples=n_resamples,
        n_history_days=n_days,
    )
