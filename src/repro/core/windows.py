"""Simulation calendar: days, day types, and clock windows.

The paper estimates SMP parameters from "the corresponding time windows of
the most recent N weekdays (weekends)" (Section 4.2).  This module provides
the small amount of calendar arithmetic that phrase requires: mapping an
absolute simulation time to a day index, classifying days as weekday or
weekend, and describing recurring *clock windows* (e.g. "8:00-18:00") that
can be instantiated on any concrete day.

Simulation time is a float number of seconds since the simulation epoch.
The epoch is defined to fall on a Monday at 00:00, so day indices 0-4 of
every week are weekdays and 5-6 are weekend days.  No real-world calendar
(time zones, DST, leap seconds) is involved; the paper's analysis only
needs the weekday/weekend periodicity.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "DAYS_PER_WEEK",
    "WEEKDAY_INDICES",
    "WEEKEND_INDICES",
    "DayType",
    "day_index",
    "day_start",
    "time_of_day",
    "day_of_week",
    "day_type",
    "day_type_of_time",
    "days_of_type",
    "ClockWindow",
    "AbsoluteWindow",
    "n_steps",
]

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
DAYS_PER_WEEK = 7

#: Days-of-week counted from the epoch Monday.
WEEKDAY_INDICES = (0, 1, 2, 3, 4)
WEEKEND_INDICES = (5, 6)

_DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


class DayType(enum.Enum):
    """Day classification used for pooling history windows.

    The paper pools statistics across days of the same type only: the load
    pattern of a Tuesday resembles other weekdays far more than it
    resembles a Saturday (Section 4.2, citing Mutka's observation [19]).
    """

    WEEKDAY = "weekday"
    WEEKEND = "weekend"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def day_index(t: float) -> int:
    """Return the zero-based day index containing absolute time ``t``."""
    return int(math.floor(t / SECONDS_PER_DAY))


def day_start(day: int) -> float:
    """Return the absolute time at which day ``day`` begins (00:00)."""
    return day * SECONDS_PER_DAY


def time_of_day(t: float) -> float:
    """Return seconds elapsed since midnight of the day containing ``t``."""
    return t - day_start(day_index(t))


def day_of_week(day: int) -> int:
    """Return the day-of-week (0 = Monday .. 6 = Sunday) of day ``day``."""
    return day % DAYS_PER_WEEK


def day_name(day: int) -> str:
    """Return a short human-readable weekday name for day ``day``."""
    return _DAY_NAMES[day_of_week(day)]


def day_type(day: int) -> DayType:
    """Classify day index ``day`` as weekday or weekend."""
    return DayType.WEEKDAY if day_of_week(day) in WEEKDAY_INDICES else DayType.WEEKEND


def day_type_of_time(t: float) -> DayType:
    """Classify the day containing absolute time ``t``."""
    return day_type(day_index(t))


def days_of_type(first_day: int, last_day: int, dtype: DayType) -> list[int]:
    """List day indices in ``[first_day, last_day)`` of the given type."""
    return [d for d in range(first_day, last_day) if day_type(d) is dtype]


@dataclass(frozen=True)
class ClockWindow:
    """A recurring time-of-day window, e.g. "8:00 for 2 hours".

    ``start`` is seconds after midnight; ``duration`` is the window length
    ``T`` in seconds.  A clock window is *abstract*: call :meth:`on_day`
    to obtain the concrete :class:`AbsoluteWindow` on a particular day.

    Windows may extend past midnight (``start + duration > 86400``); the
    day type of the window is defined by its start day, matching how the
    paper indexes windows by their start hour.
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < SECONDS_PER_DAY:
            raise ValueError(f"window start {self.start} outside [0, 86400)")
        if self.duration <= 0.0:
            raise ValueError(f"window duration must be positive, got {self.duration}")

    @classmethod
    def from_hours(cls, start_hour: float, duration_hours: float) -> "ClockWindow":
        """Build a window from a start hour and a duration in hours."""
        return cls(start=start_hour * SECONDS_PER_HOUR, duration=duration_hours * SECONDS_PER_HOUR)

    @property
    def start_hour(self) -> float:
        """Window start expressed in hours after midnight."""
        return self.start / SECONDS_PER_HOUR

    @property
    def duration_hours(self) -> float:
        """Window length expressed in hours."""
        return self.duration / SECONDS_PER_HOUR

    def on_day(self, day: int) -> "AbsoluteWindow":
        """Instantiate this clock window on concrete day ``day``."""
        t0 = day_start(day) + self.start
        return AbsoluteWindow(start=t0, duration=self.duration)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.start_hour:05.2f}h+{self.duration_hours:.2f}h"


@dataclass(frozen=True)
class AbsoluteWindow:
    """A concrete time interval ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ValueError(f"window duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        """Exclusive end time of the window."""
        return self.start + self.duration

    @property
    def day(self) -> int:
        """Day index of the window start (defines its day type)."""
        return day_index(self.start)

    @property
    def day_type(self) -> DayType:
        """Day type of the window start day."""
        return day_type(self.day)

    def clock_window(self) -> ClockWindow:
        """Return the recurring clock window this interval instantiates."""
        return ClockWindow(start=time_of_day(self.start), duration=self.duration)

    def contains(self, t: float) -> bool:
        """Return True when ``t`` lies within ``[start, end)``."""
        return self.start <= t < self.end

    def overlaps(self, other: "AbsoluteWindow") -> bool:
        """Return True when the two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end

    def iter_history_days(self, n_days: int, *, same_type_only: bool = True) -> Iterator[int]:
        """Yield up to ``n_days`` most recent prior days, newest first.

        With ``same_type_only`` (the default, matching the paper) only
        days of the same :class:`DayType` as the window's start day are
        yielded; e.g. for a Monday-morning window the history is the
        previous Friday, Thursday, ... never a Saturday.
        """
        want = self.day_type
        found = 0
        d = self.day - 1
        while found < n_days and d >= 0:
            if not same_type_only or day_type(d) is want:
                yield d
                found += 1
            d -= 1


def n_steps(duration: float, step: float) -> int:
    """Number of discretization intervals covering ``duration``.

    The paper's recursion runs over ``T/d`` steps (Eq. 2); durations that
    are not exact multiples of ``step`` are rounded to the nearest whole
    number of steps (at least one).
    """
    if step <= 0.0:
        raise ValueError(f"discretization step must be positive, got {step}")
    return max(1, int(round(duration / step)))
