"""Fleet-scale batched SMP prediction.

``repro.fleet`` answers availability questions for *every* machine in a
pool with one matrix pass instead of N scalar Eq.-3 recursions:

* :mod:`repro.fleet.kernel` — :class:`FleetKernel` stacks per-machine
  semi-Markov kernels into one ``(machine, slot, horizon)`` tensor and
  :func:`solve_fleet` runs the batched interval-transition recursion,
  numerically equivalent (<= 1e-9) to :func:`repro.core.smp.failure_probabilities`
  per machine.
* :mod:`repro.fleet.predictor` — :class:`FleetPredictor` builds and
  incrementally refreshes the stacked tensor from a service's trace
  registry, caching both per-machine kernels and whole solved scans.

The serving tier exposes this as the protocol v7 ``predict_batch`` and
``fleet_scan`` ops; ``rank``/``select`` and the scheduler's candidate
scoring ride the same path.
"""

from repro.fleet.kernel import (
    FleetKernel,
    FleetSolution,
    fleet_failure_probabilities,
    fleet_reliability_profiles,
    fleet_temporal_reliability,
    solve_fleet,
)
from repro.fleet.predictor import FleetPredictor, FleetScan

__all__ = [
    "FleetKernel",
    "FleetSolution",
    "FleetPredictor",
    "FleetScan",
    "fleet_failure_probabilities",
    "fleet_reliability_profiles",
    "fleet_temporal_reliability",
    "solve_fleet",
]
