"""Batched Eq.-3 solver over a stacked fleet of SMP kernels.

The scalar solver (:func:`repro.core.smp.failure_probabilities`) runs
the mutual recursion

    P_1(m) = C_1(m) + sum_{l=1}^{m-1} K_{1,2}(l) P_2(m-l)
    P_2(m) = C_2(m) + sum_{l=1}^{m-1} K_{2,1}(l) P_1(m-l)

one machine at a time — ``O(horizon^2)`` Python-loop iterations per
machine, times N machines for every rank/select/scheduler decision.

:class:`FleetKernel` stacks the per-machine kernels into a single
C-contiguous ``(M, 8, H+1)`` float64 tensor (zero-padded to the longest
horizon) and :func:`solve_fleet` runs the recursion once for the whole
fleet: substituting ``i = m - l`` turns the convolution into

    conv_1(m) = sum_{i=1}^{m-1} K_{1,2}(m - i) P_2(i)
              = K_{1,2}^rev[H-m+1 : H] . P_2[1 : m]

where ``K^rev[j] = K[H - j]`` is the *reversed* kernel row, precomputed
as a contiguous copy at construction.  Both slices are positive-stride
views, so each of the H time steps is exactly two batched ``matmul``
calls over all M machines — the Python loop cost is amortized M-fold,
and the inner products run in BLAS.

Padding is harmless: at step ``m <= h_i`` the recursion only reads
kernel entries ``l <= m``, all inside machine *i*'s real horizon, so the
per-machine result read out at its own horizon index is bit-for-bit
unaffected by the other machines' longer windows.  (Entries *beyond* a
machine's own horizon are meaningless and the reliability profile holds
its last real value there.)

Clipping parity with the scalar path is deliberate and tested:

* failure probabilities are clipped to [0, 1] elementwise;
* TR = ``clip(1 - clipped_fail.sum(), 0, 1)`` like
  :func:`~repro.core.smp.temporal_reliability`;
* the profile is ``clip(1 - unclipped_sum, 0, 1)`` like
  :func:`~repro.core.smp.temporal_reliability_profile`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.smp import SLOT_INDEX, SLOTS, SmpKernel
from repro.obs.instruments import instrument

__all__ = [
    "FleetKernel",
    "FleetSolution",
    "solve_fleet",
    "fleet_failure_probabilities",
    "fleet_temporal_reliability",
    "fleet_reliability_profiles",
]

#: Failure-target column order, matching core.smp: S3, S4, S5.
_FAILURE_TARGETS = (3, 4, 5)

_ROW_12 = SLOT_INDEX[(1, 2)]
_ROW_21 = SLOT_INDEX[(2, 1)]
_ROWS_1F = tuple(SLOT_INDEX[(1, j)] for j in _FAILURE_TARGETS)
_ROWS_2F = tuple(SLOT_INDEX[(2, j)] for j in _FAILURE_TARGETS)


class FleetKernel:
    """Per-machine SMP kernels stacked into one solvable tensor.

    Parameters
    ----------
    machine_ids:
        One id per kernel, unique, in stacking order.
    kernels:
        The per-machine :class:`~repro.core.smp.SmpKernel` objects.
        Horizons may differ ("ragged" fleets); shorter kernels are
        zero-padded to the longest horizon and their results read out at
        their own horizon index.

    All derived tensors (the stack, the reversed convolution rows, the
    cumulative direct-to-failure mass) are C-contiguous float64 copies
    built once here, so :func:`solve_fleet` performs no per-call copies.
    """

    __slots__ = (
        "machine_ids",
        "k",
        "horizons",
        "steps",
        "k12r",
        "k21r",
        "c1",
        "c2",
        "_index",
    )

    def __init__(
        self, machine_ids: Sequence[str], kernels: Sequence[SmpKernel]
    ) -> None:
        ids = tuple(str(m) for m in machine_ids)
        if len(ids) != len(kernels):
            raise ValueError(
                f"{len(ids)} machine ids but {len(kernels)} kernels"
            )
        if not ids:
            raise ValueError("a FleetKernel needs at least one machine")
        if len(set(ids)) != len(ids):
            raise ValueError("machine ids must be unique")
        for kern in kernels:
            if not isinstance(kern, SmpKernel):
                raise TypeError(f"expected SmpKernel, got {type(kern).__name__}")
        self.machine_ids = ids
        self._index = {mid: i for i, mid in enumerate(ids)}
        self.horizons = np.array([k.horizon for k in kernels], dtype=np.int64)
        self.steps = np.array([k.step for k in kernels], dtype=np.float64)
        m, h = len(ids), int(self.horizons.max())
        stack = np.zeros((m, len(SLOTS), h + 1), dtype=np.float64)
        for i, kern in enumerate(kernels):
            stack[i, :, : kern.horizon + 1] = kern.k
        self.k = np.ascontiguousarray(stack, dtype=np.float64)
        # Reversed convolution rows and cumulative failure mass, copied
        # contiguous once so the solve loop never re-materializes them.
        self.k12r = np.ascontiguousarray(self.k[:, _ROW_12, ::-1])
        self.k21r = np.ascontiguousarray(self.k[:, _ROW_21, ::-1])
        self.c1 = np.ascontiguousarray(
            np.cumsum(self.k[:, _ROWS_1F, :], axis=2)
        )
        self.c2 = np.ascontiguousarray(
            np.cumsum(self.k[:, _ROWS_2F, :], axis=2)
        )

    def __len__(self) -> int:
        return len(self.machine_ids)

    @property
    def max_horizon(self) -> int:
        """The padded (longest) horizon, in steps."""
        return self.k.shape[2] - 1

    def index(self, machine_id: str) -> int:
        """Stacking index of one machine."""
        try:
            return self._index[machine_id]
        except KeyError:
            raise KeyError(f"machine {machine_id!r} not in this fleet") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetKernel(machines={len(self)}, max_horizon={self.max_horizon})"
        )


@dataclass(frozen=True)
class FleetSolution:
    """Everything one batched solve yields, in stacking order.

    ``fail[i]`` are the clipped failure probabilities ``[P_3, P_4, P_5]``
    at machine *i*'s own horizon; ``tr[i]`` its temporal reliability; and
    ``profiles[i, m]`` is ``TR(m)`` for every sub-horizon, holding the
    last real value past the machine's own horizon (ragged fleets).
    """

    fail: np.ndarray  # (M, 3)
    tr: np.ndarray  # (M,)
    profiles: np.ndarray  # (M, max_horizon + 1)


def _validate_inits(fleet: FleetKernel, init_states) -> np.ndarray:
    inits = np.asarray([int(s) for s in init_states], dtype=np.int64)
    if inits.shape != (len(fleet),):
        raise ValueError(
            f"need one init state per machine ({len(fleet)}), got {inits.shape}"
        )
    if np.any((inits < 1) | (inits > 5)):
        bad = inits[(inits < 1) | (inits > 5)][0]
        raise ValueError(f"init states must be one of S1..S5, got {bad}")
    return inits


def solve_fleet(fleet: FleetKernel, init_states) -> FleetSolution:
    """Run the batched Eq.-3 recursion for the whole fleet at once.

    ``init_states`` is one :class:`~repro.core.states.State` (or int) per
    machine in stacking order.  Per machine the result equals the scalar
    :func:`~repro.core.smp.failure_probabilities` /
    :func:`~repro.core.smp.temporal_reliability_profile` pair to within
    1e-9 (the convolution is summed in reversed order, so the last ulp
    may differ; property tests pin the bound).
    """
    inits = _validate_inits(fleet, init_states)
    t0 = time.perf_counter()
    m_count, h = len(fleet), fleet.max_horizon
    p1 = np.zeros((m_count, h + 1, 3))
    p2 = np.zeros((m_count, h + 1, 3))
    operational = (inits == 1) | (inits == 2)
    if np.any(operational):
        k12r = fleet.k12r[:, None, :]
        k21r = fleet.k21r[:, None, :]
        c1 = fleet.c1
        c2 = fleet.c2
        for m in range(1, h + 1):
            if m > 1:
                # One batched matmul per source state: (M,1,m-1)@(M,m-1,3).
                conv1 = np.matmul(k12r[:, :, h - m + 1 : h], p2[:, 1:m, :])[:, 0, :]
                conv2 = np.matmul(k21r[:, :, h - m + 1 : h], p1[:, 1:m, :])[:, 0, :]
                p1[:, m, :] = c1[:, :, m] + conv1
                p2[:, m, :] = c2[:, :, m] + conv2
            else:
                p1[:, 1, :] = c1[:, :, 1]
                p2[:, 1, :] = c2[:, :, 1]
    p_own = np.where((inits == 1)[:, None, None], p1, p2)

    rows = np.arange(m_count)
    fail = p_own[rows, fleet.horizons, :]
    fail_sum = p_own.sum(axis=2)  # unclipped, as the scalar profile uses
    profiles = np.clip(1.0 - fail_sum, 0.0, 1.0)
    profiles[:, 0] = 1.0
    # Ragged fleets: beyond a machine's own horizon the padded recursion
    # keeps accumulating meaningless mass — hold the last real value so
    # any sub-horizon read (tr_at) stays well-defined and non-increasing.
    cols = np.arange(h + 1)[None, :]
    beyond = cols > fleet.horizons[:, None]
    profiles = np.where(beyond, profiles[rows, fleet.horizons][:, None], profiles)

    failed = ~operational
    if np.any(failed):
        # Boundary condition P_{i,j}(0) = delta_{ij}: already in a
        # failure state means that failure with certainty, TR(m>0) = 0.
        fail[failed] = 0.0
        fail[failed, inits[failed] - 3] = 1.0
        profiles[failed] = 0.0
        profiles[failed, 0] = 1.0

    fail = np.clip(fail, 0.0, 1.0)
    tr = np.clip(1.0 - fail.sum(axis=1), 0.0, 1.0)
    instrument("fleet_solve_seconds").observe(time.perf_counter() - t0)
    return FleetSolution(fail=fail, tr=tr, profiles=profiles)


def fleet_failure_probabilities(fleet: FleetKernel, init_states) -> np.ndarray:
    """``(M, 3)`` clipped failure probabilities at each machine's horizon."""
    return solve_fleet(fleet, init_states).fail


def fleet_temporal_reliability(fleet: FleetKernel, init_states) -> np.ndarray:
    """``(M,)`` temporal reliabilities, one batched solve."""
    return solve_fleet(fleet, init_states).tr


def fleet_reliability_profiles(fleet: FleetKernel, init_states) -> np.ndarray:
    """``(M, max_horizon + 1)`` TR-by-sub-horizon profiles."""
    return solve_fleet(fleet, init_states).profiles
