"""Incrementally maintained fleet tensors over a service's registry.

:class:`FleetPredictor` sits between :class:`~repro.service.AvailabilityService`
and the batched solver: for a query window it stacks every requested
machine's kernel into one :class:`~repro.fleet.kernel.FleetKernel`,
solves the whole fleet in one pass, and memoizes at two levels:

* **per-machine rows** — ``(n_samples fingerprint, kernel, init state)``
  per (window, machine).  A machine whose history has not grown since
  the last scan reuses its kernel; ingesting new samples changes
  ``n_samples`` and rebuilds just that row (through the service's
  :class:`~repro.core.online.IncrementalPredictor`, so only *new days*
  are re-classified).
* **whole scans** — if no row changed and the machine set is identical,
  the previous :class:`FleetScan` is returned as-is; a steady-state
  rank/select costs only the fingerprint sweep.

Replacing a history out-of-band (``register`` over an existing id) can
leave ``n_samples`` unchanged, so the service calls :meth:`invalidate`
on replace/unregister, mirroring the scalar predictor's contract.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import windows as win
from repro.core.smp import SmpKernel
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType
from repro.fleet.kernel import FleetKernel, solve_fleet
from repro.obs.instruments import instrument
from repro.obs.tracing import start_span

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.service import AvailabilityService

__all__ = ["FleetPredictor", "FleetScan"]


@dataclass(frozen=True)
class FleetScan:
    """One solved fleet snapshot for one (window, day-type) query.

    Arrays are in ``machine_ids`` order.  ``profiles[i, m]`` is TR for a
    job of ``m`` steps of ``steps[i]`` seconds; entries past
    ``horizons[i]`` hold the machine's last real value.
    """

    machine_ids: tuple[str, ...]
    clock: ClockWindow
    day_type: DayType
    tr: np.ndarray  # (M,)
    fail: np.ndarray  # (M, 3) clipped, targets S3/S4/S5
    profiles: np.ndarray  # (M, max_horizon + 1)
    horizons: np.ndarray  # (M,) int steps
    steps: np.ndarray  # (M,) seconds
    init_states: np.ndarray  # (M,) int 1..5

    @cached_property
    def _index(self) -> dict[str, int]:
        return {mid: i for i, mid in enumerate(self.machine_ids)}

    def index(self, machine_id: str) -> int:
        """Array index of one machine."""
        try:
            return self._index[machine_id]
        except KeyError:
            raise KeyError(f"machine {machine_id!r} not in this scan") from None

    def trs(self) -> dict[str, float]:
        """``{machine_id: TR}`` for every scanned machine."""
        return {mid: float(t) for mid, t in zip(self.machine_ids, self.tr)}

    def ranking(self) -> list[tuple[str, float]]:
        """Machines best-first (ties broken by id), as the service ranks."""
        return sorted(self.trs().items(), key=lambda kv: (-kv[1], kv[0]))

    def tr_at(self, machine_id: str, duration: float) -> float:
        """TR of one machine for a *shorter* job of ``duration`` seconds.

        Reads the solved profile at the sub-horizon step count — no new
        solve.  Durations beyond the scanned window saturate at the
        machine's own horizon.
        """
        i = self.index(machine_id)
        m = min(int(self.horizons[i]), win.n_steps(duration, float(self.steps[i])))
        return float(self.profiles[i, m])


@dataclass
class _FleetWindow:
    """Cache state for one (clock window, day type)."""

    rows: dict[str, tuple[int, SmpKernel, int]] = field(default_factory=dict)
    scan: FleetScan | None = None


def _clock_key(clock: ClockWindow, dtype: DayType) -> tuple:
    return (clock.start, clock.duration, dtype)


class FleetPredictor:
    """Builds, caches and incrementally refreshes stacked fleet scans."""

    def __init__(
        self, service: "AvailabilityService", *, max_windows: int = 8
    ) -> None:
        if max_windows < 1:
            raise ValueError(f"max_windows must be positive, got {max_windows}")
        self._service = service
        self.max_windows = max_windows
        self._windows: OrderedDict[tuple, _FleetWindow] = OrderedDict()
        self._lock = threading.RLock()

    def invalidate(self, machine_id: str | None = None) -> None:
        """Drop cached rows and scans (for one machine, or all).

        Any cached whole-fleet scan that includes the machine is stale,
        so scans are dropped unconditionally; other machines keep their
        kernel rows.
        """
        with self._lock:
            for entry in self._windows.values():
                if machine_id is None:
                    entry.rows.clear()
                else:
                    entry.rows.pop(machine_id, None)
                entry.scan = None

    def __len__(self) -> int:
        """Number of cached (window, day-type) entries."""
        with self._lock:
            return len(self._windows)

    # ------------------------------------------------------------------ #

    def scan(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        *,
        machines: Sequence[str] | None = None,
    ) -> FleetScan:
        """Solve (or reuse) the fleet tensor for one query window.

        ``machines`` restricts the scan (results come back in sorted id
        order regardless); ``None`` scans every registered machine.
        Unknown machines raise ``KeyError`` like the scalar path.
        """
        t0 = time.perf_counter()
        if isinstance(window, AbsoluteWindow):
            clock = window.clock_window()
            dtype = dtype or window.day_type
        else:
            clock = window
            if dtype is None:
                raise ValueError("a ClockWindow requires an explicit day type")
        histories = self._service._histories
        if machines is None:
            ids = sorted(histories)
        else:
            ids = sorted(str(m) for m in machines)
            for mid in ids:
                if mid not in histories:
                    raise KeyError(f"machine {mid!r} is not registered")
        if not ids:
            return FleetScan(
                machine_ids=(),
                clock=clock,
                day_type=dtype,
                tr=np.zeros(0),
                fail=np.zeros((0, 3)),
                profiles=np.zeros((0, 1)),
                horizons=np.zeros(0, dtype=np.int64),
                steps=np.zeros(0),
                init_states=np.zeros(0, dtype=np.int64),
            )
        with start_span("fleet.scan", "fleet", machines=len(ids)) as span:
            with self._lock:
                entry = self._entry(_clock_key(clock, dtype))
                rebuilt = reused = 0
                for mid in ids:
                    trace = histories.get(mid)
                    if trace is None:  # unregistered between snapshot and now
                        raise KeyError(f"machine {mid!r} is not registered")
                    row = entry.rows.get(mid)
                    if row is not None and row[0] == trace.n_samples:
                        reused += 1
                        continue
                    # Per-machine lookup: a promoted override must feed its
                    # own kernel into the fleet tensor (set_model_config
                    # invalidates the stale row to force this rebuild).
                    predictor = self._service.predictor_for(mid)
                    kernel = predictor.kernel(trace, clock, dtype)
                    init = int(predictor.typical_initial_state(trace, clock, dtype))
                    entry.rows[mid] = (trace.n_samples, kernel, init)
                    rebuilt += 1
                cached = entry.scan
                if rebuilt == 0 and cached is not None and cached.machine_ids == tuple(ids):
                    scan = cached
                else:
                    scan = self._solve(entry, ids, clock, dtype)
                    # Cache whole-registry scans only: subset queries
                    # (scheduler candidate pools vary per job) would
                    # otherwise thrash the one scan slot.
                    if machines is None or len(ids) == len(histories):
                        entry.scan = scan
            if span is not None:
                span.set(rebuilt=rebuilt, reused=reused)
        if rebuilt:
            instrument("fleet_kernels_rebuilt_total").inc(rebuilt)
        if reused:
            instrument("fleet_kernels_reused_total").inc(reused)
        instrument("fleet_scan_machines").observe(len(ids))
        instrument("fleet_scan_seconds").observe(time.perf_counter() - t0)
        return scan

    # ------------------------------------------------------------------ #

    def _entry(self, key: tuple) -> _FleetWindow:
        """Get-or-create one window's cache, LRU-bounding (lock held)."""
        entry = self._windows.get(key)
        if entry is None:
            entry = self._windows[key] = _FleetWindow()
            while len(self._windows) > self.max_windows:
                oldest = next(iter(self._windows))
                if oldest == key:
                    self._windows.move_to_end(oldest)
                    continue
                del self._windows[oldest]
        else:
            self._windows.move_to_end(key)
        return entry

    def _solve(
        self, entry: _FleetWindow, ids: list[str], clock: ClockWindow, dtype: DayType
    ) -> FleetScan:
        kernels = [entry.rows[mid][1] for mid in ids]
        inits = [entry.rows[mid][2] for mid in ids]
        fleet = FleetKernel(ids, kernels)
        solution = solve_fleet(fleet, inits)
        return FleetScan(
            machine_ids=tuple(ids),
            clock=clock,
            day_type=dtype,
            tr=solution.tr,
            fail=solution.fail,
            profiles=solution.profiles,
            horizons=fleet.horizons,
            steps=fleet.steps,
            init_states=np.asarray(inits, dtype=np.int64),
        )
