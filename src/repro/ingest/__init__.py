"""Real-telemetry ingestion tier: live monitor agent + trace adapters.

Two front doors feed the serving stack's v2 ``extend`` pipeline with
*measured* availability signals instead of synthetic ones:

* :mod:`repro.ingest.agent` — a live host monitor that samples the
  machine it runs on (via :mod:`repro.ingest.samplers`), quantizes onto
  the model grid, buffers durably, and streams seq-correct chunks to a
  server or cluster;
* :mod:`repro.ingest.adapters` — converters for foreign trace formats
  (generic timestamped CSV, spot-VM preemption logs) onto the same
  grid and calendar.

:mod:`repro.ingest.timebase` holds the wall-clock ↔ model-calendar
mapping both doors share, so live samples and imported history agree on
what a weekday is.
"""

from repro.ingest.agent import AgentConfig, MonitorAgent, SimulatedClock
from repro.ingest.adapters import ADAPTERS, AdapterStats, get_adapter, register_adapter
from repro.ingest.samplers import (
    SAMPLER_KINDS,
    HostSample,
    MissingDependencyError,
    ProcSampler,
    PsutilSampler,
    SyntheticSampler,
    make_sampler,
)
from repro.ingest.timebase import (
    UNIX_EPOCH_OFFSET_S,
    day_type_of_wall,
    model_to_wall,
    wall_to_model,
)

__all__ = [
    "ADAPTERS",
    "AdapterStats",
    "AgentConfig",
    "HostSample",
    "MissingDependencyError",
    "MonitorAgent",
    "ProcSampler",
    "PsutilSampler",
    "SAMPLER_KINDS",
    "SimulatedClock",
    "SyntheticSampler",
    "UNIX_EPOCH_OFFSET_S",
    "day_type_of_wall",
    "get_adapter",
    "make_sampler",
    "model_to_wall",
    "register_adapter",
    "wall_to_model",
]
