"""Foreign trace adapter registry.

Every adapter exposes one callable::

    convert(path, *, sample_period, machine_id=None, gap_policy="down",
            utc_offset_s=0.0, **format_kwargs)
        -> (list[MachineTrace], AdapterStats)

Built-ins: ``csv`` (generic timestamped samples) and ``preempt``
(spot/preemptible-VM lifetime logs).  Third-party formats register via
:func:`register_adapter` and immediately show up in
``repro-fgcs ingest import --format``.
"""

from __future__ import annotations

from typing import Callable

from repro.ingest.adapters import csvts, preempt
from repro.ingest.adapters.base import GAP_POLICIES, AdapterStats

__all__ = [
    "ADAPTERS",
    "AdapterStats",
    "GAP_POLICIES",
    "get_adapter",
    "register_adapter",
]

#: Adapter name -> convert callable.
ADAPTERS: dict[str, Callable] = {}


def register_adapter(name: str, convert: Callable) -> None:
    """Register (or replace) one adapter under ``name``."""
    if not name:
        raise ValueError("adapter name must be non-empty")
    ADAPTERS[name] = convert


def get_adapter(name: str) -> Callable:
    """Look up an adapter; KeyError lists what exists."""
    try:
        return ADAPTERS[name]
    except KeyError:
        raise KeyError(
            f"unknown adapter {name!r}; registered: {', '.join(sorted(ADAPTERS))}"
        ) from None


register_adapter(csvts.NAME, csvts.convert)
register_adapter(preempt.NAME, preempt.convert)
