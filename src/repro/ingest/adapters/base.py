"""Adapter plumbing: foreign observations onto the model grid.

A *trace adapter* turns some external measurement format — another
monitor's CSV dump, a cloud provider's preemption log — into
:class:`~repro.traces.trace.MachineTrace` arrays on the model's regular
grid, with the model's calendar.  The conversions all follow the same
shape, factored here:

1. **Epoch alignment** — foreign timestamps are wall-clock; they pass
   through :mod:`repro.ingest.timebase` so real Saturdays stay model
   weekend days.
2. **Native-grid binning** — observations are first binned at the
   format's own cadence with the resampling semantics of
   :mod:`repro.traces.resample` (mean load, min free memory, min up:
   a down moment marks its whole slot down).
3. **Gap policy** — native slots with no observation are either marked
   down (``"down"``, the heartbeat-absence reading) or rejected
   (``"reject"``, for formats where a hole means corruption).  Either
   way the count is surfaced in :class:`AdapterStats`, never silently
   absorbed.
4. **Regridding** — the native grid is then converted to the requested
   model ``sample_period`` (upsampled for coarser sources, downsampled
   for finer ones; non-integer ratios are an error, as in
   :func:`repro.traces.resample.align_periods`).

Conversion is pure and deterministic — the same input file yields
byte-identical arrays every time — which is what makes re-imports
idempotent: registering the result replaces the previous import
wholesale instead of appending a duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ingest.timebase import slot_index, slot_start
from repro.obs.instruments import instrument
from repro.traces.resample import resample_to_period
from repro.traces.trace import MachineTrace

__all__ = ["GAP_POLICIES", "AdapterStats", "bin_samples", "regrid", "observe_import"]

#: ``down``: an empty native slot is an absent heartbeat -> host down.
#: ``reject``: an empty native slot aborts the conversion.
GAP_POLICIES = ("down", "reject")


@dataclass
class AdapterStats:
    """What one conversion did — surfaced by the CLI and tests."""

    adapter: str
    rows_read: int = 0
    machines: int = 0
    samples_out: int = 0
    gap_slots: int = 0
    gap_policy: str = "down"
    native_period: float | None = None
    sample_period: float | None = None
    skipped_rows: int = 0
    notes: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "adapter": self.adapter,
            "rows_read": self.rows_read,
            "machines": self.machines,
            "samples_out": self.samples_out,
            "gap_slots": self.gap_slots,
            "gap_policy": self.gap_policy,
            "native_period": self.native_period,
            "sample_period": self.sample_period,
            "skipped_rows": self.skipped_rows,
            "notes": list(self.notes),
        }


def bin_samples(
    machine_id: str,
    times_model: np.ndarray,
    loads: np.ndarray,
    mems: np.ndarray,
    ups: np.ndarray,
    *,
    period: float,
    gap_policy: str,
    stats: AdapterStats,
) -> MachineTrace:
    """Bin irregular observations onto the regular ``period`` grid.

    Within one slot: mean load, min free memory, min up (the
    :mod:`repro.traces.resample` downsampling semantics).  Slots between
    the first and last observation with no row at all follow
    ``gap_policy``.
    """
    if gap_policy not in GAP_POLICIES:
        raise ValueError(
            f"unknown gap policy {gap_policy!r}; expected one of {GAP_POLICIES}"
        )
    if times_model.size == 0:
        raise ValueError(f"no observations for machine {machine_id!r}")
    order = np.argsort(times_model, kind="stable")
    times_model = times_model[order]
    loads, mems, ups = loads[order], mems[order], ups[order]
    first = slot_index(float(times_model[0]), period)
    last = slot_index(float(times_model[-1]), period)
    n_slots = last - first + 1
    slots = np.floor(times_model / period + 1e-9).astype(np.int64) - first

    load_sum = np.zeros(n_slots)
    counts = np.zeros(n_slots, dtype=np.int64)
    mem_min = np.full(n_slots, np.inf)
    up_min = np.ones(n_slots, dtype=bool)
    np.add.at(load_sum, slots, loads)
    np.add.at(counts, slots, 1)
    np.minimum.at(mem_min, slots, mems)
    # min(up): one down observation marks the whole slot down.
    np.logical_and.at(up_min, slots, ups.astype(bool))

    empty = counts == 0
    n_gaps = int(empty.sum())
    stats.gap_slots += n_gaps
    if n_gaps and gap_policy == "reject":
        first_gap = int(np.flatnonzero(empty)[0]) + first
        raise ValueError(
            f"{machine_id!r}: {n_gaps} empty slot(s) on the {period:g}s native "
            f"grid (first at model time {slot_start(first_gap, period):.0f}) "
            "and gap policy is 'reject'; re-run with --gap-policy down to "
            "record them as downtime"
        )
    load = np.where(empty, 0.0, load_sum / np.maximum(counts, 1))
    mem = np.where(empty, 0.0, mem_min)
    up = np.where(empty, False, up_min)
    return MachineTrace(
        machine_id=machine_id,
        start_time=slot_start(first, period),
        sample_period=period,
        load=load,
        free_mem_mb=mem,
        up=up,
    )


def regrid(trace: MachineTrace, sample_period: float, stats: AdapterStats) -> MachineTrace:
    """Convert a native-grid trace to the model ``sample_period``."""
    out = resample_to_period(trace, sample_period)
    stats.native_period = trace.sample_period
    stats.sample_period = sample_period
    return out


def observe_import(stats: AdapterStats) -> None:
    """Record one conversion's volume in the ingest instruments."""
    instrument("ingest_imported_samples_total").labels(adapter=stats.adapter).inc(
        stats.samples_out
    )
    if stats.gap_slots:
        instrument("ingest_import_gap_samples_total").labels(
            adapter=stats.adapter
        ).inc(stats.gap_slots)
