"""Generic timestamped-CSV adapter: any monitor's dump, one row per sample.

Accepted shape (header row required, extra columns ignored)::

    timestamp,load[,free_mem_mb][,up][,machine]

* ``timestamp`` — Unix seconds (float) or an ISO-8601 instant; naive
  ISO timestamps are read as UTC (the model calendar has no zones).
* ``load`` — CPU load in [0, 1]; a file whose loads exceed 1 is read as
  percentages (noted in the stats) so foreign 0-100 dumps import
  without a preprocessing step.
* ``free_mem_mb`` — optional; missing means memory-unconstrained
  (``inf``), matching the serving tier's convention for traces without
  a memory signal.
* ``up`` — optional 0/1 heartbeat; missing means up (the row exists).
* ``machine`` — optional; one file may carry several machines.  An
  explicit ``machine_id`` argument overrides (and requires a
  single-machine file).

Rows are binned on the source's *native* cadence first (inferred from
the median inter-sample spacing when not given), then regridded to the
requested model period — so a 30 s office-fleet dump imports onto the
paper's 6 s grid without manufacturing false gaps.
"""

from __future__ import annotations

import csv
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.ingest.adapters.base import AdapterStats, bin_samples, observe_import, regrid
from repro.ingest.timebase import wall_to_model
from repro.traces.trace import MachineTrace

__all__ = ["convert"]

NAME = "csv"


def _parse_timestamp(raw: str) -> float:
    """Unix seconds from a numeric or ISO-8601 field."""
    try:
        return float(raw)
    except ValueError:
        pass
    stamp = datetime.fromisoformat(raw)
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=timezone.utc)
    return stamp.timestamp()


def _infer_native_period(times: np.ndarray) -> float:
    deltas = np.diff(np.unique(times))
    deltas = deltas[deltas > 1e-9]
    if deltas.size == 0:
        raise ValueError("cannot infer a native period from a single timestamp")
    return float(np.median(deltas))


def convert(
    path: str | Path,
    *,
    sample_period: float,
    machine_id: str | None = None,
    gap_policy: str = "down",
    native_period: float | None = None,
    utc_offset_s: float = 0.0,
) -> tuple[list[MachineTrace], AdapterStats]:
    """Convert one timestamped CSV into model-grid traces."""
    path = Path(path)
    stats = AdapterStats(adapter=NAME, gap_policy=gap_policy)
    rows_by_machine: dict[str, list[tuple[float, float, float, bool]]] = {}
    file_machines: set[str] = set()
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or "timestamp" not in reader.fieldnames:
            raise ValueError(f"{path}: expected a header row with a 'timestamp' column")
        if "load" not in reader.fieldnames:
            raise ValueError(f"{path}: expected a 'load' column")
        for row in reader:
            if all(not (v or "").strip() for v in row.values()):
                stats.skipped_rows += 1
                continue  # blank line
            lineno = reader.line_num
            try:
                t = _parse_timestamp(row["timestamp"])
                load = float(row["load"])
                mem_raw = row.get("free_mem_mb")
                mem = float(mem_raw) if mem_raw not in (None, "") else float("inf")
                up_raw = row.get("up")
                up = bool(int(up_raw)) if up_raw not in (None, "") else True
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed row: {exc}") from None
            col = (row.get("machine") or "").strip()
            if col:
                file_machines.add(col)
            mid = machine_id or col or path.stem
            rows_by_machine.setdefault(mid, []).append((t, load, mem, up))
            stats.rows_read += 1
    if not rows_by_machine:
        raise ValueError(f"{path}: no data rows")
    if machine_id is not None and len(file_machines) > 1:
        raise ValueError(
            f"{path}: carries {len(file_machines)} machines but an explicit "
            f"machine id {machine_id!r} was given"
        )

    traces: list[MachineTrace] = []
    for mid in sorted(rows_by_machine):
        rows = rows_by_machine[mid]
        wall = np.array([r[0] for r in rows])
        loads = np.array([r[1] for r in rows])
        mems = np.array([r[2] for r in rows])
        ups = np.array([r[3] for r in rows], dtype=bool)
        if float(loads.max(initial=0.0)) > 1.0 + 1e-9:
            if float(loads.max(initial=0.0)) > 100.0 + 1e-6:
                raise ValueError(
                    f"{path}: load values exceed 100; neither a fraction nor "
                    "a percentage"
                )
            loads = loads / 100.0
            note = "loads read as percentages (max > 1)"
            if note not in stats.notes:
                stats.notes.append(note)
        times_model = wall_to_model(wall, utc_offset_s=utc_offset_s)
        native = native_period if native_period is not None else _infer_native_period(
            times_model
        )
        binned = bin_samples(
            mid, times_model, loads, mems, ups,
            period=native, gap_policy=gap_policy, stats=stats,
        )
        trace = regrid(binned, sample_period, stats)
        stats.samples_out += trace.n_samples
        traces.append(trace)
    stats.machines = len(traces)
    observe_import(stats)
    return traces, stats
