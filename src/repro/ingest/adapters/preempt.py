"""Spot/preemptible-VM preemption-trace adapter.

Transient cloud VMs are the modern face of the paper's fine-grained
cycle sharing: capacity is donated until the provider revokes it.
Preemption logs describe that availability signal as *instance
lifetimes*, not samples::

    instance,start,end[,cause]

* ``start``/``end`` — Unix seconds or ISO-8601 instants bounding one
  uptime interval; several rows may share an ``instance`` (the VM was
  re-acquired after a revocation).
* an empty ``end`` marks a **censored** lifetime: the instance was
  still running when the trace was cut, so it is up through the
  observation horizon (the latest timestamp in the file, unless an
  explicit ``horizon`` is given).
* ``cause`` — optional revocation reason, tallied into the stats.

Each instance becomes one machine whose grid runs from its first
acquisition to the horizon: a slot is **up** only if a lifetime covers
the *whole* slot (the min-up convention — a revocation mid-slot marks
the slot down), with zero load and unconstrained memory while up (a
lifetime log has neither signal), and down (zero memory, no heartbeat)
between revocation and re-acquisition.  The paper's model then reads
revocations exactly like host-departure unavailability (state S5).

Conversion is deterministic, so repeated imports of the same fixture
produce byte-identical arrays — re-importing is idempotent.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

import numpy as np

from repro.ingest.adapters.base import AdapterStats, observe_import
from repro.ingest.adapters.csvts import _parse_timestamp
from repro.ingest.timebase import slot_index, slot_start, wall_to_model
from repro.traces.trace import MachineTrace

__all__ = ["convert"]

NAME = "preempt"


def _read_lifetimes(
    path: Path, stats: AdapterStats, utc_offset_s: float
) -> tuple[dict[str, list[tuple[float, float | None]]], float]:
    """Per-instance (start, end-or-None) model-time intervals + horizon."""
    lifetimes: dict[str, list[tuple[float, float | None]]] = {}
    horizon = -np.inf
    causes: dict[str, int] = {}
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        need = {"instance", "start", "end"}
        if reader.fieldnames is None or not need.issubset(reader.fieldnames):
            raise ValueError(
                f"{path}: expected a header row with columns "
                f"{', '.join(sorted(need))}"
            )
        for row in reader:
            if all(v in (None, "") for v in row.values()):
                stats.skipped_rows += 1
                continue
            lineno = reader.line_num
            try:
                start = wall_to_model(
                    _parse_timestamp(row["start"]), utc_offset_s=utc_offset_s
                )
                end_raw = row["end"]
                end = (
                    None
                    if end_raw in (None, "")
                    else wall_to_model(
                        _parse_timestamp(end_raw), utc_offset_s=utc_offset_s
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed row: {exc}") from None
            if end is not None and end <= start:
                raise ValueError(
                    f"{path}:{lineno}: lifetime ends at {end} before it "
                    f"starts at {start}"
                )
            instance = (row.get("instance") or "").strip()
            if not instance:
                raise ValueError(f"{path}:{lineno}: empty instance id")
            lifetimes.setdefault(instance, []).append((start, end))
            horizon = max(horizon, start if end is None else end)
            cause = (row.get("cause") or "").strip()
            if cause:
                causes[cause] = causes.get(cause, 0) + 1
            stats.rows_read += 1
    if not lifetimes:
        raise ValueError(f"{path}: no lifetime rows")
    for cause, n in sorted(causes.items()):
        stats.notes.append(f"cause {cause}: {n}")
    return lifetimes, horizon


def convert(
    path: str | Path,
    *,
    sample_period: float,
    machine_id: str | None = None,
    gap_policy: str = "down",  # noqa: ARG001 - uniform adapter signature;
    # inter-lifetime time IS downtime here, never a data gap.
    horizon: float | None = None,
    utc_offset_s: float = 0.0,
) -> tuple[list[MachineTrace], AdapterStats]:
    """Convert one preemption log into model-grid up/down traces."""
    path = Path(path)
    stats = AdapterStats(
        adapter=NAME, gap_policy="down",
        native_period=sample_period, sample_period=sample_period,
    )
    lifetimes, inferred_horizon = _read_lifetimes(path, stats, utc_offset_s)
    if machine_id is not None and len(lifetimes) > 1:
        raise ValueError(
            f"{path}: carries {len(lifetimes)} instances but an explicit "
            f"machine id {machine_id!r} was given"
        )
    horizon_model = (
        wall_to_model(horizon, utc_offset_s=utc_offset_s)
        if horizon is not None
        else inferred_horizon
    )

    traces: list[MachineTrace] = []
    for instance in sorted(lifetimes):
        intervals = sorted(lifetimes[instance])
        for (s0, e0), (s1, _) in zip(intervals, intervals[1:]):
            end0 = horizon_model if e0 is None else e0
            if s1 < end0 - 1e-9:
                raise ValueError(
                    f"{path}: instance {instance!r} has overlapping lifetimes "
                    f"(one ends at {end0}, the next starts at {s1})"
                )
        first = slot_index(intervals[0][0], sample_period)
        # last slot starting strictly before the horizon — a horizon on a
        # slot boundary must not add an empty trailing slot.
        last = int(math.ceil(horizon_model / sample_period - 1e-9)) - 1
        if last < first:
            stats.skipped_rows += len(intervals)
            continue  # lifetime shorter than one slot at the very horizon
        n_slots = last - first + 1
        up = np.zeros(n_slots, dtype=bool)
        for start, end in intervals:
            end = horizon_model if end is None else end
            # min-up: only slots fully inside [start, end] count as up,
            # i.e. slot_start(k) >= start and slot_start(k + 1) <= end.
            lo = int(math.ceil((start - 1e-9) / sample_period))
            hi = int(math.floor((end + 1e-9) / sample_period))  # exclusive
            lo, hi = max(lo, first), min(hi, last + 1)
            if hi > lo:
                up[lo - first : hi - first] = True
        mid = machine_id or instance
        traces.append(
            MachineTrace(
                machine_id=mid,
                start_time=slot_start(first, sample_period),
                sample_period=sample_period,
                load=np.zeros(n_slots),
                free_mem_mb=np.where(up, np.inf, 0.0),
                up=up,
            )
        )
        stats.samples_out += n_slots
    stats.machines = len(traces)
    observe_import(stats)
    return traces, stats
