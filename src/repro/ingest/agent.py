"""Live host monitor agent: sample the machine we run on, stream it in.

The agent closes the loop the paper assumes but PRs 1-7 only simulated:
a daemon on each host measures (CPU load, free memory, heartbeat) every
``sample_period`` seconds and feeds the availability model.  Design
constraints, in the order they shaped the code:

**Grid quantization.**  The model needs a perfectly regular grid; wall
clocks drift, sampling has jitter, processes get paged out.  The agent
therefore never timestamps samples with "now" — it computes the next
*slot* of the global model grid (:mod:`repro.ingest.timebase`), sleeps
to the slot boundary, and assigns the measured sample to that slot.

**Gap-free by construction.**  The serving tier's ``extend`` op (and
the durable store underneath) reject chunks that would leave holes in
the history.  Slots the agent missed — it was stopped, the host slept,
sampling stalled past a boundary — are *down-filled*: ``up=False``,
zero load, zero memory.  Absence of a heartbeat is exactly how the
paper's model defines unavailability, so a killed agent reports its own
outage when it comes back.  A gap longer than ``max_gap_samples`` stops
being believable downtime (a laptop closed for a month); the agent then
starts a fresh grid instead of writing a mountain of fake samples.

**Local durability.**  Samples land in a bounded in-memory ring and,
when a ``spill_dir`` is configured, in an append-only on-disk journal
*before* any flush is attempted — a server outage (or an agent crash)
never loses samples.  The ring bounds memory during long outages; older
unacknowledged samples remain on disk and are re-read at flush time.
The journal is truncated only once everything in it was acknowledged.

**Idempotent streaming.**  Flushes go through
:meth:`repro.serve.client.ServeClient.extend` with the client's
retry/backoff; because ``extend`` trims overlap server-side, a retried
or replayed chunk is harmless and the agent only advances its acked
cursor on a positive acknowledgement.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.ingest.samplers import HostSample
from repro.ingest.timebase import (
    model_to_wall,
    slot_index,
    slot_start,
    wall_to_model,
)
from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.obs.tracing import start_span
from repro.serve.client import ServeRequestError
from repro.traces.trace import MachineTrace

__all__ = ["AgentConfig", "MonitorAgent", "SimulatedClock"]

_META_FILE = "agent.json"
_JOURNAL_FILE = "journal.jsonl"


@dataclass(frozen=True)
class AgentConfig:
    """Tuning knobs of one monitor agent."""

    #: Machine identity under which samples are registered.
    machine_id: str
    #: Grid period in seconds (the paper's testbed used 6 s).
    sample_period: float = 6.0
    #: Flush to the server once this many samples are unacknowledged.
    chunk_samples: int = 10
    #: Upper bound on samples shipped in one ``extend`` request.
    max_chunk_samples: int = 5000
    #: In-memory ring bound on unacknowledged samples; beyond it the
    #: oldest entries live only in the spill journal.
    ring_capacity: int = 4096
    #: Directory for the durability journal (None: memory-only).
    spill_dir: str | None = None
    #: Longest believable outage to down-fill, in samples; a larger gap
    #: restarts the grid instead (1 day at the 6 s period by default).
    max_gap_samples: int = 14400
    #: Shift applied to UTC time-of-day (deployments wanting local-time
    #: day boundaries).
    utc_offset_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.machine_id:
            raise ValueError("machine_id must be non-empty")
        if self.sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {self.sample_period}")
        if self.chunk_samples < 1 or self.max_chunk_samples < 1:
            raise ValueError("chunk_samples and max_chunk_samples must be >= 1")
        if self.ring_capacity < self.chunk_samples:
            raise ValueError(
                f"ring_capacity ({self.ring_capacity}) must hold at least one "
                f"flush chunk ({self.chunk_samples})"
            )
        if self.max_gap_samples < 0:
            raise ValueError(f"max_gap_samples must be >= 0, got {self.max_gap_samples}")


class SimulatedClock:
    """A controllable clock: ``sleep`` advances time instead of waiting.

    Drives the agent's exact production loop at full speed — the
    ``--simulate`` CLI mode and the SIGKILL round-trip test use it to
    produce multi-day live-ingested histories in seconds.
    """

    def __init__(self, start_unix_time: float) -> None:
        self.now_s = float(start_unix_time)

    def now(self) -> float:
        return self.now_s

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.now_s += seconds


class MonitorAgent:
    """Samples one host onto the model grid and streams it via extend.

    ``client`` is anything with an ``extend(chunk) -> dict`` method —
    a :class:`~repro.serve.client.ServeClient` in production, a fake in
    tests.  ``clock``/``sleep`` default to the real wall clock and are
    replaced together by a :class:`SimulatedClock` for simulation.
    """

    def __init__(
        self,
        sampler: Any,
        client: Any,
        config: AgentConfig,
        *,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.sampler = sampler
        self.client = client
        self.config = config
        self._clock = clock
        self._sleep = sleep
        #: Grid slot of sample seq 0 (fixed for the life of one grid).
        self._start_slot: int | None = None
        #: Samples generated since seq 0.
        self._n_generated = 0
        #: Samples acknowledged by the server.
        self._acked = 0
        #: Oldest seq still retained (journal truncation point).
        self._retained_from = 0
        #: Unacked tail cache: list of (seq, load, free_mem_mb, up).
        self._ring: list[tuple[int, float, float, bool]] = []
        self.gap_filled = 0
        self.flush_errors = 0
        self._journal_fh = None
        if config.spill_dir is not None:
            Path(config.spill_dir).mkdir(parents=True, exist_ok=True)
            self._recover_spill()

    # ------------------------------------------------------------------ #
    # spill journal
    # ------------------------------------------------------------------ #

    def _meta_path(self) -> Path:
        return Path(self.config.spill_dir) / _META_FILE

    def _journal_path(self) -> Path:
        return Path(self.config.spill_dir) / _JOURNAL_FILE

    def _recover_spill(self) -> None:
        """Resume grid/cursor state from a previous agent's journal."""
        meta_path = self._meta_path()
        if not meta_path.exists():
            return
        meta = json.loads(meta_path.read_text())
        if (
            meta.get("machine_id") != self.config.machine_id
            or abs(meta.get("sample_period", -1.0) - self.config.sample_period) > 1e-9
        ):
            raise ValueError(
                f"spill dir {self.config.spill_dir} belongs to machine "
                f"{meta.get('machine_id')!r} at period {meta.get('sample_period')}; "
                f"refusing to mix it with {self.config.machine_id!r} at "
                f"{self.config.sample_period} (use a fresh --spill-dir)"
            )
        self._start_slot = int(meta["start_slot"])
        self._acked = int(meta.get("acked", 0))
        self._retained_from = int(meta.get("retained_from", 0))
        self._n_generated = int(meta.get("n_generated", 0))
        recovered = 0
        journal = self._journal_path()
        if journal.exists():
            with journal.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    seq, load, mem, up = json.loads(line)
                    self._n_generated = max(self._n_generated, int(seq) + 1)
                    if int(seq) >= self._acked:
                        recovered += 1
        if recovered:
            instrument("ingest_spilled_samples_total").inc(recovered)
            get_event_log().emit(
                "ingest_spill_recovered",
                machine_id=self.config.machine_id,
                samples=recovered,
            )
        # The in-memory ring restarts empty; flushes below the ring floor
        # re-read the journal.  Cache nothing rather than guessing.

    def _write_meta(self) -> None:
        if self.config.spill_dir is None:
            return
        tmp = self._meta_path().with_suffix(".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "machine_id": self.config.machine_id,
                    "sample_period": self.config.sample_period,
                    "start_slot": self._start_slot,
                    "acked": self._acked,
                    "retained_from": self._retained_from,
                    "n_generated": self._n_generated,
                }
            )
        )
        os.replace(tmp, self._meta_path())

    def _journal_append(self, seq: int, sample: HostSample) -> None:
        if self.config.spill_dir is None:
            return
        if self._journal_fh is None:
            self._journal_fh = self._journal_path().open("a")
        self._journal_fh.write(
            json.dumps([seq, sample.load, sample.free_mem_mb, bool(sample.up)]) + "\n"
        )
        self._journal_fh.flush()

    def _journal_truncate_if_drained(self) -> None:
        """Once everything is acked, drop the journal and start it fresh."""
        if self.config.spill_dir is None or self._acked < self._n_generated:
            return
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
        journal = self._journal_path()
        if journal.exists():
            journal.unlink()
        self._retained_from = self._acked
        self._write_meta()

    def _journal_read(self, lo_seq: int, hi_seq: int) -> dict[int, tuple]:
        """Samples with ``lo_seq <= seq < hi_seq`` from the journal."""
        out: dict[int, tuple] = {}
        journal = self._journal_path()
        if self.config.spill_dir is None or not journal.exists():
            return out
        if self._journal_fh is not None:
            self._journal_fh.flush()
        with journal.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                seq, load, mem, up = json.loads(line)
                if lo_seq <= int(seq) < hi_seq:
                    out[int(seq)] = (float(load), float(mem), bool(up))
        return out

    # ------------------------------------------------------------------ #
    # sampling loop
    # ------------------------------------------------------------------ #

    @property
    def start_time(self) -> float:
        """Model time of sample seq 0 (None-safe only after first tick)."""
        assert self._start_slot is not None
        return slot_start(self._start_slot, self.config.sample_period)

    @property
    def n_generated(self) -> int:
        return self._n_generated

    @property
    def unacked(self) -> int:
        return self._n_generated - self._acked

    def run(
        self,
        *,
        max_samples: int | None = None,
        duration_s: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> int:
        """Sample until a bound is hit; returns samples generated.

        At least one of ``max_samples``/``duration_s``/``stop`` should
        bound the loop; with none given it runs forever (the daemon
        case — the CLI installs a signal-driven ``stop``).
        """
        deadline = None if duration_s is None else self._clock() + duration_s
        produced = 0
        while True:
            if max_samples is not None and produced >= max_samples:
                break
            if deadline is not None and self._clock() >= deadline:
                break
            if stop is not None and stop():
                break
            produced += self._tick()
        self.flush()
        self._write_meta()
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
        return produced

    def _tick(self) -> int:
        """Advance to the next grid slot and sample it; returns samples
        generated (1 + any down-filled gap)."""
        period = self.config.sample_period
        now_model = wall_to_model(self._clock(), utc_offset_s=self.config.utc_offset_s)
        if self._start_slot is None:
            # First tick of a fresh grid: the first full slot ahead.
            self._start_slot = slot_index(now_model, period) + 1
        generated = self._fill_gap(now_model)
        target_slot = self._start_slot + self._n_generated
        wait_s = model_to_wall(
            slot_start(target_slot, period), utc_offset_s=self.config.utc_offset_s
        ) - self._clock()
        if wait_s > 0:
            self._sleep(wait_s)
        t0 = time.perf_counter()
        with start_span(
            "ingest.sample", "ingest",
            machine=self.config.machine_id, seq=self._n_generated,
        ):
            sample = self.sampler.sample()
        instrument("ingest_sample_seconds").observe(time.perf_counter() - t0)
        instrument("ingest_samples_total").labels(
            sampler=getattr(self.sampler, "kind", "unknown")
        ).inc()
        self._append(sample)
        generated += 1
        if self.unacked >= self.config.chunk_samples:
            self.flush()
        return generated

    def _fill_gap(self, now_model: float) -> int:
        """Down-fill slots that fully elapsed while we were not looking."""
        period = self.config.sample_period
        next_slot_due = self._start_slot + self._n_generated
        current = slot_index(now_model, period)
        missed = current - next_slot_due
        if missed <= 0:
            return 0
        if missed > self.config.max_gap_samples:
            # Not a believable outage: restart the grid here and leave the
            # old history alone (the server keeps what was flushed).
            get_event_log().emit(
                "ingest_grid_restarted",
                severity="warning",
                machine_id=self.config.machine_id,
                missed_samples=missed,
                max_gap_samples=self.config.max_gap_samples,
            )
            self._start_slot = current + 1
            self._n_generated = 0
            self._acked = 0
            self._retained_from = 0
            self._ring.clear()
            if self.config.spill_dir is not None:
                if self._journal_fh is not None:
                    self._journal_fh.close()
                    self._journal_fh = None
                if self._journal_path().exists():
                    self._journal_path().unlink()
                self._write_meta()
            return 0
        down = HostSample(load=0.0, free_mem_mb=0.0, up=False)
        for _ in range(missed):
            self._append(down)
        self.gap_filled += missed
        instrument("ingest_gap_filled_samples_total").inc(missed)
        return missed

    def _append(self, sample: HostSample) -> None:
        seq = self._n_generated
        self._journal_append(seq, sample)
        self._ring.append((seq, sample.load, sample.free_mem_mb, bool(sample.up)))
        self._n_generated = seq + 1
        overflow = len(self._ring) - self.config.ring_capacity
        if overflow > 0:
            # The journal retains the evicted samples; memory stays bounded
            # through an arbitrarily long server outage.
            del self._ring[:overflow]
        instrument("ingest_buffered_samples").set(self.unacked)

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #

    def _chunk(self, lo_seq: int, n: int) -> MachineTrace | None:
        """A contiguous unacked chunk [lo_seq, lo_seq + n) as a trace."""
        period = self.config.sample_period
        hi_seq = min(lo_seq + n, self._n_generated)
        if hi_seq <= lo_seq:
            return None
        rows: list[tuple[float, float, bool]] = [None] * (hi_seq - lo_seq)  # type: ignore[list-item]
        ring_lo = self._ring[0][0] if self._ring else self._n_generated
        if lo_seq < ring_lo:
            from_journal = self._journal_read(lo_seq, min(hi_seq, ring_lo))
            for seq, row in from_journal.items():
                rows[seq - lo_seq] = row
        for seq, load, mem, up in self._ring:
            if lo_seq <= seq < hi_seq:
                rows[seq - lo_seq] = (load, mem, up)
        if any(r is None for r in rows):
            missing = sum(1 for r in rows if r is None)
            raise RuntimeError(
                f"{missing} unacked samples in [{lo_seq}, {hi_seq}) are neither "
                "in memory nor in the spill journal; the journal was removed "
                "out from under the agent"
            )
        return MachineTrace(
            machine_id=self.config.machine_id,
            start_time=slot_start(self._start_slot + lo_seq, period),
            sample_period=period,
            load=np.array([r[0] for r in rows]),
            free_mem_mb=np.array([r[1] for r in rows]),
            up=np.array([r[2] for r in rows], dtype=bool),
        )

    def flush(self) -> bool:
        """Ship every unacked sample; False if the server is unreachable.

        Samples stay buffered (ring + journal) on failure, so the next
        flush — or the next agent on this spill dir — retries them.
        """
        while self._acked < self._n_generated:
            chunk = self._chunk(self._acked, self.config.max_chunk_samples)
            if chunk is None:
                break
            t0 = time.perf_counter()
            try:
                with start_span(
                    "ingest.flush", "ingest",
                    machine=self.config.machine_id, samples=chunk.n_samples,
                ):
                    self.client.extend(chunk)
                outcome = "ok"
            except ServeRequestError as exc:
                if "samples were lost" in str(exc) and self._acked > self._retained_from:
                    # The server is behind our cursor (e.g. its store was
                    # reset).  Everything since the last truncation is
                    # still retained — rewind and resend; extend's
                    # overlap-trim makes the replay idempotent.
                    self._acked = self._retained_from
                    instrument("ingest_flushes_total").labels(outcome="resync").inc()
                    get_event_log().emit(
                        "ingest_resync",
                        severity="warning",
                        machine_id=self.config.machine_id,
                        resent_from=self._retained_from,
                        error=str(exc),
                    )
                    continue
                outcome = "error"
            except (ConnectionError, OSError):
                outcome = "error"
            instrument("ingest_flush_latency_seconds").observe(
                time.perf_counter() - t0
            )
            instrument("ingest_flushes_total").labels(outcome=outcome).inc()
            if outcome != "ok":
                self.flush_errors += 1
                return False
            self._acked += chunk.n_samples
            self._write_meta()
        instrument("ingest_buffered_samples").set(self.unacked)
        self._journal_truncate_if_drained()
        return True

    # ------------------------------------------------------------------ #

    def status(self) -> dict[str, Any]:
        """Agent state for the CLI's progress line."""
        return {
            "machine": self.config.machine_id,
            "sample_period": self.config.sample_period,
            "start_slot": self._start_slot,
            "generated": self._n_generated,
            "acked": self._acked,
            "unacked": self.unacked,
            "gap_filled": self.gap_filled,
            "flush_errors": self.flush_errors,
        }
