"""Host samplers: where the live monitor agent's numbers come from.

Three interchangeable backends produce the paper's per-sample signal
triple (CPU load in [0, 1], free memory in MB, host-up heartbeat):

* :class:`PsutilSampler` — the primary production backend, built on the
  optional ``psutil`` dependency (``pip install 'repro[ingest]'``).
  Per-core CPU utilisation is averaged into one host load, matching how
  the paper's monitor reports a single load figure per period.
* :class:`ProcSampler` — a zero-dependency Linux backend reading
  ``/proc/stat`` and ``/proc/meminfo`` directly; CI smokes the live
  agent with it so the pipeline is exercised without installing extras.
* :class:`SyntheticSampler` — a deterministic load/memory walk for
  tests, benchmarks and the agent's ``--simulate`` mode; no host access
  at all.

``up`` is True for every sample a sampler produces: a sample exists
because the host (and the agent on it) was alive to take it.  Downtime
is represented by the *absence* of samples, which the agent down-fills
as ``up=False`` grid slots — the same heartbeat semantics the paper's
multi-state model derives unavailability from.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "HostSample",
    "MissingDependencyError",
    "PsutilSampler",
    "ProcSampler",
    "SyntheticSampler",
    "make_sampler",
    "SAMPLER_KINDS",
]


@dataclass(frozen=True)
class HostSample:
    """One measured (load, free memory, up) triple."""

    load: float
    free_mem_mb: float
    up: bool = True


class MissingDependencyError(RuntimeError):
    """An optional dependency a sampler needs is not installed.

    The message carries the install hint so the CLI can surface it
    verbatim instead of a traceback.
    """


def _clamp01(value: float) -> float:
    return 0.0 if value < 0.0 else 1.0 if value > 1.0 else value


class PsutilSampler:
    """psutil-backed host sampler (the ``repro[ingest]`` extra)."""

    kind = "psutil"

    def __init__(self) -> None:
        try:
            import psutil
        except ImportError:
            raise MissingDependencyError(
                "the live monitor agent's default sampler needs psutil, "
                "which is not installed; run `pip install 'repro[ingest]'` "
                "(or use `--sampler proc` on Linux, which has no "
                "dependencies)"
            ) from None
        self._psutil = psutil
        # Prime the interval-based counters: the first cpu_percent call
        # after import returns a meaningless 0.0, so take it now and let
        # real samples measure utilisation since the previous sample.
        self._psutil.cpu_percent(interval=None, percpu=True)

    def sample(self) -> HostSample:
        percpu = self._psutil.cpu_percent(interval=None, percpu=True)
        load = sum(percpu) / (100.0 * max(len(percpu), 1))
        free_mb = self._psutil.virtual_memory().available / (1024.0 * 1024.0)
        return HostSample(load=_clamp01(load), free_mem_mb=free_mb)


class ProcSampler:
    """Linux ``/proc`` sampler: no dependencies beyond the kernel.

    CPU load is the busy fraction of aggregate jiffies since the
    previous sample (idle + iowait counted as idle); free memory is
    ``MemAvailable`` from ``/proc/meminfo``.
    """

    kind = "proc"

    def __init__(self, proc_root: str = "/proc") -> None:
        self._stat_path = os.path.join(proc_root, "stat")
        self._meminfo_path = os.path.join(proc_root, "meminfo")
        if not os.path.exists(self._stat_path):
            raise MissingDependencyError(
                f"{self._stat_path} does not exist; the proc sampler needs "
                "a Linux /proc filesystem (use `--sampler psutil` elsewhere)"
            )
        self._prev_busy, self._prev_total = self._read_cpu()

    def _read_cpu(self) -> tuple[int, int]:
        with open(self._stat_path) as fh:
            for line in fh:
                if line.startswith("cpu "):
                    fields = [int(v) for v in line.split()[1:]]
                    idle = fields[3] + (fields[4] if len(fields) > 4 else 0)
                    total = sum(fields)
                    return total - idle, total
        raise ValueError(f"no aggregate 'cpu' line in {self._stat_path}")

    def _read_available_mb(self) -> float:
        with open(self._meminfo_path) as fh:
            for line in fh:
                if line.startswith(("MemAvailable:", "MemFree:")):
                    return float(line.split()[1]) / 1024.0
        return float("inf")

    def sample(self) -> HostSample:
        busy, total = self._read_cpu()
        d_total = total - self._prev_total
        load = (busy - self._prev_busy) / d_total if d_total > 0 else 0.0
        self._prev_busy, self._prev_total = busy, total
        return HostSample(load=_clamp01(load), free_mem_mb=self._read_available_mb())


class SyntheticSampler:
    """Deterministic load/memory walk; no host access.

    A small linear-congruential generator drives a bounded random walk,
    so two samplers with the same seed produce the identical sample
    stream — which is what makes the agent's ``--simulate`` mode (and
    the SIGKILL round-trip test built on it) reproducible.
    """

    kind = "synthetic"

    def __init__(self, seed: int = 0, *, total_mem_mb: float = 4096.0) -> None:
        self._state = (seed * 2654435761 + 1) & 0xFFFFFFFF
        self._load = 0.1
        self._total_mem_mb = total_mem_mb

    def _rand(self) -> float:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state / 0x7FFFFFFF

    def sample(self) -> HostSample:
        self._load = _clamp01(self._load + (self._rand() - 0.5) * 0.2)
        free = self._total_mem_mb * (0.3 + 0.6 * (1.0 - self._load))
        return HostSample(load=self._load, free_mem_mb=free)


#: CLI-facing sampler kinds.  ``auto`` prefers psutil and reports the
#: install hint when it is missing.
SAMPLER_KINDS = ("auto", "psutil", "proc", "synthetic")


def make_sampler(kind: str = "auto", *, seed: int = 0):
    """Build a sampler by kind name (see :data:`SAMPLER_KINDS`)."""
    if kind in ("auto", "psutil"):
        return PsutilSampler()
    if kind == "proc":
        return ProcSampler()
    if kind == "synthetic":
        return SyntheticSampler(seed)
    raise ValueError(
        f"unknown sampler kind {kind!r}; expected one of {SAMPLER_KINDS}"
    )
