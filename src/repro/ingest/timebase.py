"""Wall-clock to model-calendar mapping for real-telemetry ingestion.

The model calendar of :mod:`repro.core.windows` defines its epoch (t=0)
to fall on a **Monday at 00:00** with no time zones, DST or leap
seconds — exactly the weekday/weekend periodicity the paper's pooling
needs.  The Unix epoch (1970-01-01 00:00 UTC) falls on a **Thursday**,
so feeding raw ``time.time()`` values into the model would classify
real Saturdays as model Tuesdays and corrupt the day-type pooling.

Shifting Unix time forward by three days aligns the two calendars:
``model_time = unix_time + 3 * 86400`` puts every UTC Monday-midnight
on a model-day boundary whose :func:`repro.core.windows.day_of_week`
is 0.  The mapping uses UTC time-of-day (the model has no zones); a
deployment that wants local-time day boundaries can pass an explicit
``utc_offset_s``.

All ingestion front doors — the live monitor agent and every foreign
trace adapter — go through these helpers, so a sample taken at a real
Saturday 14:00 UTC and a preemption-trace row stamped the same instant
land on the same model grid slot with the same day type.
"""

from __future__ import annotations

import math

from repro.core.windows import SECONDS_PER_DAY, DayType, day_type_of_time

__all__ = [
    "UNIX_EPOCH_OFFSET_S",
    "wall_to_model",
    "model_to_wall",
    "slot_index",
    "slot_start",
    "next_slot",
    "day_type_of_wall",
]

#: The Unix epoch is a Thursday; the model epoch is a Monday.  Adding
#: three days maps Unix weekdays onto the matching model weekdays.
UNIX_EPOCH_OFFSET_S = 3.0 * SECONDS_PER_DAY


def wall_to_model(unix_time: float, *, utc_offset_s: float = 0.0) -> float:
    """Model time of one wall-clock (Unix) timestamp."""
    return unix_time + UNIX_EPOCH_OFFSET_S + utc_offset_s


def model_to_wall(model_time: float, *, utc_offset_s: float = 0.0) -> float:
    """Wall-clock (Unix) timestamp of one model time."""
    return model_time - UNIX_EPOCH_OFFSET_S - utc_offset_s


def slot_index(model_time: float, sample_period: float) -> int:
    """The grid slot containing ``model_time``.

    Slots are global: slot ``k`` covers ``[k * period, (k + 1) * period)``
    in model time, so every agent and adapter using the same period
    lands samples on the same grid regardless of when it started.
    """
    if sample_period <= 0:
        raise ValueError(f"sample_period must be positive, got {sample_period}")
    return int(math.floor(model_time / sample_period + 1e-9))


def slot_start(slot: int, sample_period: float) -> float:
    """Model time at which grid slot ``slot`` begins."""
    return slot * sample_period


def next_slot(model_time: float, sample_period: float) -> int:
    """The first slot starting strictly after ``model_time``."""
    return slot_index(model_time, sample_period) + 1


def day_type_of_wall(unix_time: float, *, utc_offset_s: float = 0.0) -> DayType:
    """Day type (weekday/weekend) of one wall-clock timestamp."""
    return day_type_of_time(wall_to_model(unix_time, utc_offset_s=utc_offset_s))
