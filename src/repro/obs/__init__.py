"""Observability layer: metrics, spans, structured events, exposition.

The runtime counterpart of the paper's measured claims (see DESIGN.md,
"Observability"): every hot path in the service/simulation stack records
into a process-global :class:`MetricsRegistry`, discrete occurrences go
to the :class:`EventLog`, and :mod:`repro.obs.export` renders both the
Prometheus text format and a human table — surfaced on the CLI as
``repro obs`` and ``--metrics-out``.

:mod:`repro.obs.tracing` adds the causal dimension the aggregates lack:
a :class:`TraceContext` rides the wire protocol's ``trace`` field, spans
land in a process-global :class:`SpanRecorder`, and
:mod:`repro.obs.traceview` (surfaced as ``repro trace``) reconstructs
per-request span trees and critical-path breakdowns from exported JSONL.
"""

from repro.obs.events import (
    SEVERITIES,
    Event,
    EventLog,
    get_event_log,
    reset_event_log,
    scoped_event_log,
    set_event_log,
)
from repro.obs.export import (
    DEFAULT_SNAPSHOT_PATH,
    read_snapshot,
    render_prometheus,
    render_table,
    write_snapshot,
)
from repro.obs.instruments import CATALOG, ensure_all_registered, instrument
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    linear_buckets,
    reset_registry,
    scoped_registry,
    set_registry,
)
from repro.obs.timing import Timer, span
from repro.obs.tracing import (
    Span,
    SpanRecorder,
    TraceContext,
    annotate,
    current_context,
    get_recorder,
    record_span,
    reset_recorder,
    scoped_recorder,
    set_recorder,
    start_span,
    use_context,
)

__all__ = [
    "CATALOG",
    "DEFAULT_BUCKETS",
    "DEFAULT_SNAPSHOT_PATH",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "SEVERITIES",
    "Span",
    "SpanRecorder",
    "Timer",
    "TraceContext",
    "annotate",
    "current_context",
    "ensure_all_registered",
    "exponential_buckets",
    "get_event_log",
    "get_recorder",
    "get_registry",
    "instrument",
    "linear_buckets",
    "read_snapshot",
    "record_span",
    "render_prometheus",
    "render_table",
    "reset_event_log",
    "reset_recorder",
    "reset_registry",
    "scoped_event_log",
    "scoped_recorder",
    "scoped_registry",
    "set_event_log",
    "set_recorder",
    "set_registry",
    "span",
    "start_span",
    "use_context",
    "write_snapshot",
]
