"""Observability layer: metrics, spans, structured events, exposition.

The runtime counterpart of the paper's measured claims (see DESIGN.md,
"Observability"): every hot path in the service/simulation stack records
into a process-global :class:`MetricsRegistry`, discrete occurrences go
to the :class:`EventLog`, and :mod:`repro.obs.export` renders both the
Prometheus text format and a human table — surfaced on the CLI as
``repro obs`` and ``--metrics-out``.
"""

from repro.obs.events import (
    SEVERITIES,
    Event,
    EventLog,
    get_event_log,
    reset_event_log,
    scoped_event_log,
    set_event_log,
)
from repro.obs.export import (
    DEFAULT_SNAPSHOT_PATH,
    read_snapshot,
    render_prometheus,
    render_table,
    write_snapshot,
)
from repro.obs.instruments import CATALOG, ensure_all_registered, instrument
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    linear_buckets,
    reset_registry,
    scoped_registry,
    set_registry,
)
from repro.obs.timing import Timer, span

__all__ = [
    "CATALOG",
    "DEFAULT_BUCKETS",
    "DEFAULT_SNAPSHOT_PATH",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "SEVERITIES",
    "Timer",
    "ensure_all_registered",
    "exponential_buckets",
    "get_event_log",
    "get_registry",
    "instrument",
    "linear_buckets",
    "read_snapshot",
    "render_prometheus",
    "render_table",
    "reset_event_log",
    "reset_registry",
    "scoped_event_log",
    "scoped_registry",
    "set_event_log",
    "set_registry",
    "span",
    "write_snapshot",
]
