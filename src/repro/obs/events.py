"""Structured event log: bounded ring buffer plus optional JSONL sink.

Metrics answer "how much / how fast"; events answer "what happened".
:class:`EventLog` records discrete occurrences — a machine's history
being replaced, an experiment failing, a guest being killed — as
structured records with a severity, a wall-clock timestamp and free-form
fields.  The most recent ``capacity`` events stay queryable in memory
(a deque ring buffer); when a ``sink`` path is given every event is also
appended to that file as one JSON object per line, the format log
shippers ingest directly.

Like the metrics registry, a process-global default log is resolvable at
emit time (:func:`get_event_log`) and swappable for tests
(:func:`scoped_event_log`).  Every emit also increments the
``events_emitted_total{severity=...}`` counter in the current metrics
registry, so event volume is itself observable.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "SEVERITIES",
    "Event",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "reset_event_log",
    "scoped_event_log",
]

#: Valid severities, least to most severe.
SEVERITIES: tuple[str, ...] = ("debug", "info", "warning", "error")

_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    name: str
    severity: str
    time: float
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize as one JSONL line (without trailing newline)."""
        record = {"time": self.time, "severity": self.severity, "event": self.name}
        record.update(self.fields)
        return json.dumps(record, sort_keys=True, default=str)


class EventLog:
    """Severity-tagged structured events with a bounded memory footprint."""

    def __init__(
        self,
        *,
        capacity: int = 1024,
        sink: str | Path | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sink = Path(sink) if sink is not None else None
        self._registry = registry
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self._dropped = 0

    # ------------------------------------------------------------------ #

    def emit(self, name: str, *, severity: str = "info", **fields: Any) -> Event:
        """Record one event; returns it."""
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}; use one of {SEVERITIES}")
        event = Event(name=name, severity=severity, time=time.time(), fields=fields)
        if len(self._buffer) == self.capacity:
            self._dropped += 1
        self._buffer.append(event)
        if self.sink is not None:
            with self.sink.open("a") as fh:
                fh.write(event.to_json() + "\n")
        reg = self._registry if self._registry is not None else get_registry()
        reg.counter(
            "events_emitted_total",
            "Structured events emitted, by severity.",
            labelnames=("severity",),
        ).labels(severity).inc()
        return event

    # ------------------------------------------------------------------ #

    def events(
        self, name: str | None = None, *, min_severity: str = "debug"
    ) -> list[Event]:
        """Buffered events, optionally filtered by name and severity floor."""
        if min_severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {min_severity!r}; use one of {SEVERITIES}")
        floor = _SEVERITY_RANK[min_severity]
        return [
            e
            for e in self._buffer
            if (name is None or e.name == name) and _SEVERITY_RANK[e.severity] >= floor
        ]

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer so far (sink never drops)."""
        return self._dropped

    def clear(self) -> None:
        """Empty the in-memory buffer (the file sink is left alone)."""
        self._buffer.clear()
        self._dropped = 0


# ---------------------------------------------------------------------- #
# the process-global default log
# ---------------------------------------------------------------------- #

_default_log = EventLog()


def get_event_log() -> EventLog:
    """The current process-global event log."""
    return _default_log


def set_event_log(log: EventLog) -> EventLog:
    """Swap in ``log`` as the process-global default; returns the old one."""
    global _default_log
    old = _default_log
    _default_log = log
    return old


def reset_event_log() -> EventLog:
    """Replace the default log with a fresh empty one and return it."""
    fresh = EventLog()
    set_event_log(fresh)
    return fresh


@contextmanager
def scoped_event_log(log: EventLog | None = None) -> Iterator[EventLog]:
    """Temporarily make ``log`` (or a fresh one) the process default."""
    scoped = log if log is not None else EventLog()
    old = set_event_log(scoped)
    try:
        yield scoped
    finally:
        set_event_log(old)
