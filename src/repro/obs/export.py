"""Render and persist metrics: Prometheus text format, tables, snapshots.

:func:`render_prometheus` emits the classic Prometheus text exposition
format (version 0.0.4) — ``# HELP``/``# TYPE`` comments, escaped label
values, cumulative ``_bucket{le=...}`` series with the mandatory
``+Inf`` bucket, and ``_sum``/``_count`` lines — so the output of
``repro obs --format prometheus`` can be scraped, pushed to a
Pushgateway, or diffed in tests verbatim.

:func:`render_table` is the human-facing view the CLI prints by default.

Snapshots bridge CLI invocations: ``repro run``/``repro predict`` write
the registry to a JSON file as they exit and ``repro obs`` renders it —
the same registry state crossing a process boundary.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry

__all__ = [
    "render_prometheus",
    "render_table",
    "write_snapshot",
    "read_snapshot",
    "DEFAULT_SNAPSHOT_PATH",
]

#: Where the CLI persists metrics between invocations unless told otherwise.
DEFAULT_SNAPSHOT_PATH = ".repro-metrics.json"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value != value:  # nan
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    reg = registry if registry is not None else get_registry()
    lines: list[str] = []
    for metric in reg.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        children = metric.children
        if not children and not metric.labelnames:
            children = {(): metric._solo()}  # render an explicit zero sample
        for key, child in sorted(children.items()):
            if isinstance(metric, Histogram):
                bounds = [*child.bounds, float("inf")]
                for bound, cum in zip(bounds, child.cumulative_counts()):
                    le = f'le="{_format_value(bound)}"'
                    labels = _labels_text(metric.labelnames, key, le)
                    lines.append(f"{metric.name}_bucket{labels} {cum}")
                labels = _labels_text(metric.labelnames, key)
                lines.append(f"{metric.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{metric.name}_count{labels} {child.count}")
            else:
                labels = _labels_text(metric.labelnames, key)
                lines.append(f"{metric.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def render_table(registry: MetricsRegistry | None = None) -> str:
    """A human-readable metric table (one row per series)."""
    reg = registry if registry is not None else get_registry()
    rows: list[tuple[str, str, str]] = []
    for metric in reg.collect():
        children = metric.children
        if not children and not metric.labelnames:
            children = {(): metric._solo()}
        if not children:
            rows.append((metric.name, metric.kind, "(no series)"))
            continue
        for key, child in sorted(children.items()):
            name = metric.name + _labels_text(metric.labelnames, key)
            if isinstance(metric, Histogram):
                count = child.count
                mean = child.sum / count if count else float("nan")
                value = f"count={count} sum={child.sum:.6g} mean={mean:.6g}"
            else:
                value = _format_value(child.value)
            rows.append((name, metric.kind, value))
    if not rows:
        return "(no metrics recorded)\n"
    w_name = max(len(r[0]) for r in rows)
    w_kind = max(len(r[1]) for r in rows)
    lines = [f"{'metric'.ljust(w_name)}  {'type'.ljust(w_kind)}  value"]
    lines.append(f"{'-' * w_name}  {'-' * w_kind}  {'-' * 5}")
    for name, kind, value in rows:
        lines.append(f"{name.ljust(w_name)}  {kind.ljust(w_kind)}  {value}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# snapshots
# ---------------------------------------------------------------------- #


def write_snapshot(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Persist the registry as a JSON snapshot; returns the path written."""
    reg = registry if registry is not None else get_registry()
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(reg.to_state(), indent=None, sort_keys=True))
    return path


def read_snapshot(path: str | Path) -> MetricsRegistry:
    """Rebuild a registry from a :func:`write_snapshot` file."""
    return MetricsRegistry.from_state(json.loads(Path(path).read_text()))
