"""The catalog of well-known instruments across the service stack.

Every metric the repo's instrumented modules record is declared here
once — name, type, help text, labels, buckets — and resolved through
:func:`instrument` at the call site.  That gives three properties a
scattered get-or-create style cannot:

* call sites cannot drift apart on help strings or label sets (the
  registry would reject the mismatch, but only at runtime on the second
  caller);
* :func:`ensure_all_registered` can materialize the whole catalog into a
  registry, so an exposition snapshot always carries every known series
  (zero-valued where nothing happened yet) — the shape a scraper's
  dashboards and alerts key on;
* the catalog doubles as the documentation index mapping each metric to
  the paper claim it verifies (see DESIGN.md "Observability").

The catalog is data-only: importing this module pulls in no simulation
or numerics code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Metric,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
)

__all__ = ["CATALOG", "InstrumentSpec", "instrument", "ensure_all_registered"]

#: Latency buckets for the TR query path: 0.1 ms up to ~26 s, the span
#: between a cached coarse-step query and a paper-scale 6000-step solve.
_QUERY_BUCKETS = exponential_buckets(1e-4, 4.0, 9)

#: Fan-out buckets: powers of two up to a 4096-machine pool.
_FANOUT_BUCKETS = tuple(float(2**i) for i in range(13))

#: Experiment wall-time buckets: 10 ms to ~11 min.
_WALL_BUCKETS = exponential_buckets(0.01, 4.0, 8)


@dataclass(frozen=True)
class InstrumentSpec:
    """Declaration of one catalog metric."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labelnames: tuple[str, ...] = ()
    buckets: tuple[float, ...] = field(default=DEFAULT_BUCKETS)


_SPECS: tuple[InstrumentSpec, ...] = (
    # -- service front-end --------------------------------------------- #
    InstrumentSpec(
        "tr_query_latency_seconds",
        "histogram",
        "Wall-clock latency of one temporal-reliability query (paper Fig. 4 "
        "claims this stays cheap enough for online use).",
        ("path",),  # service | incremental | batch
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "service_registered_machines",
        "gauge",
        "Machines currently registered with the AvailabilityService.",
    ),
    InstrumentSpec(
        "service_query_fanout_machines",
        "histogram",
        "Machines touched by one fan-out query (predict_all/rank/select).",
        (),
        _FANOUT_BUCKETS,
    ),
    # -- incremental predictor cache ------------------------------------ #
    InstrumentSpec(
        "incremental_cache_hits_total",
        "counter",
        "Per-day observation cache hits in the IncrementalPredictor "
        "(days reused instead of re-classified).",
    ),
    InstrumentSpec(
        "incremental_cache_misses_total",
        "counter",
        "Per-day observation cache misses in the IncrementalPredictor.",
    ),
    InstrumentSpec(
        "incremental_cache_invalidations_total",
        "counter",
        "Cached (window, day) entries dropped by invalidate().",
    ),
    InstrumentSpec(
        "incremental_cache_evictions_total",
        "counter",
        "(machine, window, day-type) cache entries evicted by the "
        "IncrementalPredictor's LRU bound.",
    ),
    InstrumentSpec(
        "incremental_days_classified_total",
        "counter",
        "History days classified by the IncrementalPredictor; the runtime "
        "check of core/online.py's memoization claim.",
    ),
    # -- SMP math -------------------------------------------------------- #
    InstrumentSpec(
        "smp_kernel_estimation_seconds",
        "histogram",
        "Time to build one SMP kernel from pooled sojourn observations "
        "(the Q/H estimation curve of paper Fig. 4).",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "smp_solve_seconds",
        "histogram",
        "Time of one Eq.-3 interval-transition recursion (the prediction "
        "curve of paper Fig. 4).",
        (),
        _QUERY_BUCKETS,
    ),
    # -- fleet batch prediction ------------------------------------------ #
    InstrumentSpec(
        "fleet_solve_seconds",
        "histogram",
        "Time of one batched Eq.-3 recursion over a stacked fleet tensor "
        "(all machines in one pass; compare smp_solve_seconds x fleet size).",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "fleet_scan_seconds",
        "histogram",
        "End-to-end latency of one fleet scan (kernel refresh + batched "
        "solve, or a pure cache hit).",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "fleet_scan_machines",
        "histogram",
        "Machines covered by one fleet scan.",
        (),
        _FANOUT_BUCKETS,
    ),
    InstrumentSpec(
        "fleet_kernels_rebuilt_total",
        "counter",
        "Per-machine kernel rows rebuilt during fleet scans (history grew "
        "or caches were invalidated).",
    ),
    InstrumentSpec(
        "fleet_kernels_reused_total",
        "counter",
        "Per-machine kernel rows reused as-is during fleet scans.",
    ),
    # -- simulation ------------------------------------------------------ #
    InstrumentSpec(
        "monitor_samples_total",
        "counter",
        "Samples taken by simulated ResourceMonitor daemons.",
    ),
    InstrumentSpec(
        "monitor_cpu_cost_seconds_total",
        "counter",
        "Modeled CPU-seconds consumed by monitoring; divided by simulated "
        "time this is the paper Sec. 5.2 '< 1% CPU' overhead claim.",
    ),
    InstrumentSpec(
        "sim_events_fired_total",
        "counter",
        "Events executed by SimulationEngine runs.",
    ),
    InstrumentSpec(
        "gateway_guest_kills_total",
        "counter",
        "Guest jobs killed by gateways, by failure cause (uec: excessive "
        "contention S3/S4; urr: resource revocation S5).",
        ("cause",),
    ),
    InstrumentSpec(
        "gateway_guests_started_total",
        "counter",
        "Guest jobs launched by gateways.",
    ),
    InstrumentSpec(
        "gateway_guests_completed_total",
        "counter",
        "Guest jobs completed by gateways.",
    ),
    InstrumentSpec(
        "state_transitions_total",
        "counter",
        "Live availability-state transitions observed by StateManagers "
        "(raw threshold classification; transient spikes not absorbed).",
        ("from_state", "to_state"),
    ),
    InstrumentSpec(
        "state_manager_predictions_total",
        "counter",
        "TR predictions served by StateManagers.",
    ),
    # -- serving tier ----------------------------------------------------- #
    InstrumentSpec(
        "serve_requests_total",
        "counter",
        "Requests handled by the repro.serve dispatcher, by operation and "
        "outcome (ok | error | shed | deadline_exceeded | shutting_down).",
        ("op", "status"),
    ),
    InstrumentSpec(
        "serve_request_latency_seconds",
        "histogram",
        "End-to-end dispatcher latency of one serving request (admission "
        "to response), by operation.",
        ("op",),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "serve_queue_depth",
        "gauge",
        "Requests admitted but not yet answered (queued + executing); "
        "admission control sheds when this reaches the configured depth.",
    ),
    InstrumentSpec(
        "serve_coalesced_requests_total",
        "counter",
        "Requests that piggybacked on an identical in-flight computation "
        "instead of enqueueing their own.",
    ),
    InstrumentSpec(
        "serve_shed_total",
        "counter",
        "Requests refused by admission control (503-style shed responses).",
    ),
    InstrumentSpec(
        "serve_connections_open",
        "gauge",
        "Client connections currently open on the serving socket.",
    ),
    # -- cluster tier ------------------------------------------------------ #
    InstrumentSpec(
        "cluster_requests_routed_total",
        "counter",
        "Requests routed by the cluster router, by operation and outcome "
        "(ok | error | shed | deadline_exceeded | shutting_down).",
        ("op", "outcome"),
    ),
    InstrumentSpec(
        "cluster_failovers_total",
        "counter",
        "Transparent failovers: a replica was unreachable or refused, and "
        "the router retried the request on the next owner.",
    ),
    InstrumentSpec(
        "cluster_quorum_degraded_total",
        "counter",
        "Writes that met the write quorum with fewer than R replica acks "
        "(data is durable but under-replicated until the node returns).",
    ),
    InstrumentSpec(
        "cluster_shard_latency_seconds",
        "histogram",
        "Latency of one proxied backend call, by node (the per-shard view "
        "of serve_request_latency_seconds).",
        ("node",),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "cluster_node_up",
        "gauge",
        "Health-probe verdict per backend node (1 up, 0 marked down).",
        ("node",),
    ),
    InstrumentSpec(
        "cluster_probe_failures_total",
        "counter",
        "Failed health probes (and proxied-request connection errors "
        "counted as probe evidence), by node.",
        ("node",),
    ),
    # -- durable trace store ---------------------------------------------- #
    InstrumentSpec(
        "store_appends_total",
        "counter",
        "Sample batches appended to the trace store's write-ahead log.",
    ),
    InstrumentSpec(
        "store_appended_samples_total",
        "counter",
        "Samples appended to the trace store (after overlap trimming).",
    ),
    InstrumentSpec(
        "store_fsync_seconds",
        "histogram",
        "Latency of one fsync of an active WAL segment; the per-append "
        "durability price of fsync=always vs interval/never.",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "store_recovery_seconds",
        "histogram",
        "Duration of one full store recovery (snapshot load + WAL "
        "suffix replay across machines); compaction exists to bound this.",
        (),
        _WALL_BUCKETS,
    ),
    InstrumentSpec(
        "store_segments_per_machine",
        "histogram",
        "WAL segments per machine, observed at recovery and after "
        "compaction.",
        (),
        _FANOUT_BUCKETS,
    ),
    InstrumentSpec(
        "store_compactions_total",
        "counter",
        "Machine logs folded into NPZ snapshots (segments deleted).",
    ),
    InstrumentSpec(
        "store_torn_tail_truncations_total",
        "counter",
        "Torn WAL tails truncated during recovery (expected after a "
        "crash mid-append; anything else is corruption).",
    ),
    # -- prediction audit ------------------------------------------------ #
    InstrumentSpec(
        "audit_predictions_journaled_total",
        "counter",
        "Served predict/horizon responses recorded by the prediction "
        "journal, by op.",
        ("op",),  # predict | horizon
    ),
    InstrumentSpec(
        "audit_resolutions_total",
        "counter",
        "Journaled predictions resolved against ingested samples, by "
        "realized outcome.",
        ("outcome",),  # available | failed | excluded
    ),
    InstrumentSpec(
        "audit_pending_predictions",
        "gauge",
        "Journaled predictions whose target window has not elapsed yet.",
    ),
    InstrumentSpec(
        "audit_windowed_brier",
        "gauge",
        "Sliding-window Brier score (mean squared error) of resolved "
        "predictions — the live counterpart of paper Section 5's "
        "after-the-fact validation.",
    ),
    InstrumentSpec(
        "audit_windowed_ece",
        "gauge",
        "Sliding-window expected calibration error of resolved predictions.",
    ),
    InstrumentSpec(
        "audit_model_degraded",
        "gauge",
        "1 while the drift detector holds a model-degraded alarm, else 0.",
    ),
    InstrumentSpec(
        "audit_drift_alarms_total",
        "counter",
        "model_degraded alarms raised, by trigger.",
        ("reason",),  # brier | ece | page_hinkley
    ),
    # -- self-healing adapt tier ------------------------------------------ #
    InstrumentSpec(
        "adapt_retunes_total",
        "counter",
        "Retune searches run by the adapt controller, by trigger "
        "(alarm: auto on drift; manual: the adapt_retune op).",
        ("trigger",),
    ),
    InstrumentSpec(
        "adapt_retune_seconds",
        "histogram",
        "Wall-clock time of one retune search (walk-forward backtest of "
        "the candidate grid).",
        (),
        _WALL_BUCKETS,
    ),
    InstrumentSpec(
        "adapt_promotions_total",
        "counter",
        "Shadow-trial conclusions, by outcome (margin: challenger won the "
        "scoreboard margin; forced: adapt_promote --force; abandoned: the "
        "trial expired without a win).",
        ("outcome",),
    ),
    InstrumentSpec(
        "adapt_shadow_predictions_total",
        "counter",
        "Challenger shadow predictions journaled alongside served ones.",
    ),
    InstrumentSpec(
        "adapt_machines_shadowing",
        "gauge",
        "Machines currently running a champion/challenger shadow trial.",
    ),
    InstrumentSpec(
        "adapt_fallback_active",
        "gauge",
        "Machines currently answered by the calibrated empirical fallback "
        "instead of the SMP (trial in flight and ECE above the floor).",
    ),
    InstrumentSpec(
        "adapt_fallback_served_total",
        "counter",
        "predict responses served from the empirical fallback baseline.",
    ),
    # -- serving-tier scheduler ------------------------------------------ #
    InstrumentSpec(
        "sched_jobs_submitted_total",
        "counter",
        "Guest jobs submitted to the serving-tier JobManager.",
    ),
    InstrumentSpec(
        "sched_placements_total",
        "counter",
        "Placement decisions by the PlacementEngine, by outcome "
        "(placed | refused).",
        ("outcome",),
    ),
    InstrumentSpec(
        "sched_placement_latency_seconds",
        "histogram",
        "Wall-clock latency of one placement decision (TR queries over "
        "candidate machines plus scoring).",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "sched_replacements_total",
        "counter",
        "Jobs re-placed after node-death or drain evidence, by recovery "
        "action (resume | migrate | restart).",
        ("action",),
    ),
    InstrumentSpec(
        "sched_jobs_running",
        "gauge",
        "Jobs currently placed or running under this JobManager.",
    ),
    InstrumentSpec(
        "sched_jobs_completed_total",
        "counter",
        "Jobs that reached the completed state.",
    ),
    InstrumentSpec(
        "sched_wasted_cpu_seconds_total",
        "counter",
        "Guest CPU-seconds of progress lost to failures (work done but "
        "not retained by the chosen recovery action).",
    ),
    # -- bench harness --------------------------------------------------- #
    InstrumentSpec(
        "experiment_runs_total",
        "counter",
        "Experiment harness runs, by outcome.",
        ("experiment", "status"),  # status: ok | error
    ),
    InstrumentSpec(
        "experiment_wall_seconds",
        "histogram",
        "Wall-clock time of one experiment run.",
        ("experiment",),
        _WALL_BUCKETS,
    ),
    InstrumentSpec(
        "experiment_result_rows",
        "gauge",
        "Result-table rows produced by the most recent run of an experiment.",
        ("experiment",),
    ),
    # -- ingestion tier --------------------------------------------------- #
    InstrumentSpec(
        "ingest_samples_total",
        "counter",
        "Host samples taken by live monitor agents, by sampler backend.",
        ("sampler",),  # psutil | proc | synthetic
    ),
    InstrumentSpec(
        "ingest_sample_seconds",
        "histogram",
        "Cost of taking one host sample; the live counterpart of the "
        "paper Sec. 5.2 '< 1% CPU' monitoring-overhead claim.",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "ingest_gap_filled_samples_total",
        "counter",
        "Grid slots the agent missed (suspend, overload, clock jump) and "
        "filled as down before resuming, keeping extend gap-free.",
    ),
    InstrumentSpec(
        "ingest_buffered_samples",
        "gauge",
        "Samples generated but not yet acknowledged by the server "
        "(ring + spill journal backlog).",
    ),
    InstrumentSpec(
        "ingest_spilled_samples_total",
        "counter",
        "Unacknowledged samples recovered from the spill journal at agent "
        "start (evidence of a previous crash or server outage).",
    ),
    InstrumentSpec(
        "ingest_flushes_total",
        "counter",
        "Agent flush attempts, by outcome (ok | error | resync).",
        ("outcome",),
    ),
    InstrumentSpec(
        "ingest_flush_latency_seconds",
        "histogram",
        "Wall-clock latency of shipping one chunk through extend.",
        (),
        _QUERY_BUCKETS,
    ),
    InstrumentSpec(
        "ingest_imported_samples_total",
        "counter",
        "Model-grid samples produced by foreign trace adapters, by adapter.",
        ("adapter",),
    ),
    InstrumentSpec(
        "ingest_import_gap_samples_total",
        "counter",
        "Native-grid slots with no source data encountered during import "
        "(marked down or rejected per the gap policy), by adapter.",
        ("adapter",),
    ),
    # -- the event log's own volume -------------------------------------- #
    InstrumentSpec(
        "events_emitted_total",
        "counter",
        "Structured events emitted, by severity.",
        ("severity",),
    ),
)

#: Name -> spec for every well-known instrument.
CATALOG: dict[str, InstrumentSpec] = {spec.name: spec for spec in _SPECS}


def instrument(name: str, registry: MetricsRegistry | None = None) -> Metric:
    """Resolve a catalog instrument in ``registry`` (default: global).

    Get-or-create with the cataloged type/help/labels/buckets, so every
    call site observes into the same, consistently declared series.
    """
    spec = CATALOG.get(name)
    if spec is None:
        raise KeyError(f"unknown instrument {name!r}; add it to the catalog first")
    reg = registry if registry is not None else get_registry()
    if spec.kind == "counter":
        return reg.counter(spec.name, spec.help, spec.labelnames)
    if spec.kind == "gauge":
        return reg.gauge(spec.name, spec.help, spec.labelnames)
    return reg.histogram(spec.name, spec.help, spec.labelnames, buckets=spec.buckets)


def ensure_all_registered(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Materialize the full catalog into ``registry`` (default: global).

    Called before writing an exposition snapshot so dashboards always see
    the complete metric set, zero-valued where nothing was recorded.
    """
    reg = registry if registry is not None else get_registry()
    for name in CATALOG:
        instrument(name, reg)
    return reg
