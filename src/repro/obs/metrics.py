"""Dependency-free metrics primitives and the process-global registry.

The three instrument types mirror the Prometheus data model, which is
also what a production cycle-sharing deployment would scrape:

:class:`Counter`
    a monotonically increasing total (queries served, cache hits,
    modeled CPU-seconds burned by the monitor daemon);
:class:`Gauge`
    a value that moves both ways (registered machines);
:class:`Histogram`
    a bucketed distribution with ``sum`` and ``count`` (query latency,
    rank fan-out width).  Bucket upper bounds are *inclusive* (the
    Prometheus ``le`` convention) and an implicit ``+Inf`` overflow
    bucket always exists.

Each metric may declare label names; :meth:`Metric.labels` returns the
child time series for one label-value combination.  A metric with no
labels is used directly — it owns a single anonymous child.

Metrics live in a :class:`MetricsRegistry`.  Instrumented code resolves
its instruments through :func:`get_registry` at call time, so tests (and
embedders that want scoped telemetry) can swap the process-global
registry via :func:`set_registry` / :func:`reset_registry` or the
:func:`scoped_registry` context manager without touching the
instrumented modules.

Everything here is plain stdlib: the repo's hard no-new-dependencies
rule is part of the design (the renderers in :mod:`repro.obs.export`
speak the Prometheus text format, so a real scrape endpoint is one
``http.server`` handler away).
"""

from __future__ import annotations

import bisect
import re
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "exponential_buckets",
    "linear_buckets",
    "get_registry",
    "set_registry",
    "reset_registry",
    "scoped_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds), matching the Prometheus client
#: defaults — adequate for the sub-second to tens-of-seconds range the
#: TR query path spans.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket bounds starting at ``start``, each ``factor`` larger."""
    if start <= 0.0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` bucket bounds starting at ``start``, spaced ``width`` apart."""
    if width <= 0.0:
        raise ValueError(f"width must be positive, got {width}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start + width * i for i in range(count))


def _check_label_values(values: Sequence[Any]) -> tuple[str, ...]:
    return tuple(str(v) for v in values)


class Metric:
    """Base class of one named metric family (all its labeled children)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for ln in labelnames:
            if not _LABEL_RE.match(ln) or ln.startswith("__") or ln == "le":
                raise ValueError(f"invalid label name {ln!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names in {labelnames}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def _new_child(self) -> Any:
        raise NotImplementedError

    def labels(self, *values: Any, **kwvalues: Any):
        """The child time series for one label-value combination."""
        if values and kwvalues:
            raise ValueError("pass label values positionally or by keyword, not both")
        if kwvalues:
            if set(kwvalues) != set(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} has labels {self.labelnames}, got {sorted(kwvalues)}"
                )
            values = tuple(kwvalues[ln] for ln in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} label value(s), "
                f"got {len(values)}"
            )
        key = _check_label_values(values)
        # Lock-free fast path: dict reads are atomic under the GIL and
        # children are never removed, so only creation needs the lock.
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._new_child()
        return child

    @property
    def children(self) -> dict[tuple[str, ...], Any]:
        """Snapshot of label-values -> child, in creation order."""
        with self._lock:
            return dict(self._children)

    def _solo(self):
        """The anonymous child of an unlabeled metric."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled by {self.labelnames}; call .labels() first"
            )
        return self.labels()

    # -- serialization -------------------------------------------------- #

    def _state(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": list(key), **child._state()}
                for key, child in self.children.items()
            ],
        }

    def _load_series(self, series: list[dict[str, Any]]) -> None:
        for entry in series:
            self.labels(*entry["labels"])._load_state(entry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, labels={self.labelnames})"


class _CounterChild:
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _state(self) -> dict[str, Any]:
        return {"value": self._value}

    def _load_state(self, state: Mapping[str, Any]) -> None:
        self._value = float(state["value"])


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) counter."""
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        """Current value of the (unlabeled) counter."""
        return self._solo().value


class _GaugeChild:
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _state(self) -> dict[str, Any]:
        return {"value": self._value}

    def _load_state(self, state: Mapping[str, Any]) -> None:
        self._value = float(state["value"])


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the (unlabeled) gauge."""
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) gauge."""
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the (unlabeled) gauge."""
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        """Current value of the (unlabeled) gauge."""
        return self._solo().value


class _HistogramChild:
    __slots__ = ("_bounds", "_counts", "_sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        # One slot per finite bucket plus the +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left finds the first bound >= value, so a value equal to
        # a bound lands in that bound's bucket (inclusive upper bounds).
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._sum += value

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        return tuple(self._counts)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Cumulative counts per bucket (the Prometheus wire form)."""
        out, acc = [], 0
        for c in self._counts:
            acc += c
            out.append(acc)
        return tuple(out)

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, interpolated within buckets.

        Follows the ``histogram_quantile`` convention: linear
        interpolation between a bucket's lower and upper bound; values
        in the +Inf overflow bucket clamp to the last finite bound.
        When every observation landed in one bucket, interpolating from
        the bucket's lower bound would fabricate a spread the data never
        showed, so the exact (inclusive) upper bound is returned for
        every quantile instead.  Returns NaN when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return float("nan")
        occupied = [i for i, c in enumerate(self._counts) if c > 0]
        if len(occupied) == 1:
            # All mass in one bucket: the tightest honest answer is its
            # upper bound (or the last finite bound for the +Inf bucket).
            return self._bounds[min(occupied[0], len(self._bounds) - 1)]
        rank = q * total
        acc, lower = 0, 0.0
        for bound, c in zip(self._bounds, self._counts):
            if c > 0 and acc + c >= rank:
                return lower + (bound - lower) * ((rank - acc) / c)
            acc += c
            lower = bound
        return self._bounds[-1]

    def _state(self) -> dict[str, Any]:
        return {"counts": list(self._counts), "sum": self._sum}

    def _load_state(self, state: Mapping[str, Any]) -> None:
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(self._counts):
            raise ValueError(
                f"snapshot has {len(counts)} buckets, histogram has {len(self._counts)}"
            )
        self._counts = counts
        self._sum = float(state["sum"])


class Histogram(Metric):
    """A bucketed distribution with inclusive upper bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histograms need at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        if bounds[-1] == float("inf"):
            raise ValueError("+Inf is implicit; pass finite bounds only")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Observe a value on the (unlabeled) histogram."""
        self._solo().observe(value)

    @property
    def count(self) -> int:
        """Observation count of the (unlabeled) histogram."""
        return self._solo().count

    @property
    def sum(self) -> float:
        """Observation sum of the (unlabeled) histogram."""
        return self._solo().sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the (unlabeled) histogram."""
        return self._solo().quantile(q)

    def _state(self) -> dict[str, Any]:
        state = super()._state()
        state["buckets"] = list(self.buckets)
        return state


_METRIC_TYPES: dict[str, type[Metric]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    ``counter()``/``gauge()``/``histogram()`` return the existing metric
    when one with the same name is already registered — after verifying
    that its type and label names match, so two call sites cannot
    silently disagree about what a name means.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def _get_or_create(
        self, cls: type[Metric], name: str, help: str, labelnames: Sequence[str], **kwargs: Any
    ) -> Any:
        labelnames = tuple(labelnames)
        # Lock-free fast path: instrumented hot loops resolve their metric
        # on every call, and dict reads are atomic under the GIL.  Metrics
        # are only ever added (clear() swaps the whole dict), so a non-None
        # read is always a fully constructed metric.
        existing = self._metrics.get(name)
        if existing is None:
            with self._lock:
                existing = self._metrics.get(name)
                if existing is None:
                    metric = cls(name, help, labelnames, **kwargs)
                    self._metrics[name] = metric
                    return metric
        if type(existing) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}, "
                f"requested {cls.kind}"
            )
        if existing.labelnames != labelnames:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.labelnames}, requested {labelnames}"
            )
        return existing

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram (bucket bounds fixed at creation)."""
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    # ------------------------------------------------------------------ #

    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(list(self._metrics.values()))

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def collect(self) -> list[Metric]:
        """All metrics, sorted by name (the exposition order)."""
        return [self._metrics[n] for n in self.names()]

    def clear(self) -> None:
        """Drop every metric (including their recorded values)."""
        with self._lock:
            self._metrics = {}  # swap, so lock-free readers see old-or-new

    # -- serialization -------------------------------------------------- #

    def to_state(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of every metric and series."""
        return {"version": 1, "metrics": [m._state() for m in self.collect()]}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_state` output."""
        if state.get("version") != 1:
            raise ValueError(f"unsupported snapshot version {state.get('version')!r}")
        reg = cls()
        for mstate in state["metrics"]:
            kind = mstate["kind"]
            if kind not in _METRIC_TYPES:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")
            kwargs: dict[str, Any] = {}
            if kind == "histogram":
                kwargs["buckets"] = tuple(mstate["buckets"])
            metric = reg._get_or_create(
                _METRIC_TYPES[kind],
                mstate["name"],
                mstate.get("help", ""),
                tuple(mstate.get("labelnames", ())),
                **kwargs,
            )
            metric._load_series(mstate.get("series", []))
        return reg


# ---------------------------------------------------------------------- #
# the process-global default registry
# ---------------------------------------------------------------------- #

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current process-global registry (instrumented code's default)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap in ``registry`` as the process-global default; returns the old one."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old


def reset_registry() -> MetricsRegistry:
    """Replace the default registry with a fresh empty one and return it."""
    fresh = MetricsRegistry()
    set_registry(fresh)
    return fresh


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Temporarily make ``registry`` (or a fresh one) the default.

    The test-isolation primitive: metrics recorded inside the ``with``
    block land in the scoped registry and the previous default is
    restored on exit, even on error.
    """
    reg = registry if registry is not None else MetricsRegistry()
    old = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(old)
