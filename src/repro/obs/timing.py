"""Wall-clock instrumentation: :class:`Timer` and the :func:`span` manager.

Both are thin wrappers over :func:`time.perf_counter` — the highest
resolution monotonic clock the stdlib offers — so instrumented hot paths
pay two clock reads and one histogram observation per span.

::

    with span("tr_query_latency_seconds", labels={"path": "service"}):
        ... answer the query ...

    t = Timer().start()
    ...
    histogram.observe(t.stop())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry, get_registry

__all__ = ["Timer", "span"]


class Timer:
    """A restartable perf_counter stopwatch."""

    __slots__ = ("_started", "_elapsed")

    def __init__(self) -> None:
        self._started: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Timer":
        """Start (or restart) the clock; returns self for chaining."""
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the clock and return the seconds elapsed since start."""
        if self._started is None:
            raise RuntimeError("timer was never started")
        self._elapsed = time.perf_counter() - self._started
        self._started = None
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._started is not None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed: live while running, final after stop()."""
        if self._started is not None:
            return time.perf_counter() - self._started
        return self._elapsed


@contextmanager
def span(
    metric: Histogram | str,
    *,
    labels: Mapping[str, str] | None = None,
    registry: MetricsRegistry | None = None,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> Iterator[Timer]:
    """Time a block and observe its duration into a latency histogram.

    ``metric`` is either a :class:`Histogram` (or histogram child) or a
    metric name resolved — get-or-create — against ``registry`` (default:
    the process-global registry).  The duration is recorded even when the
    block raises, so error paths stay visible in the latency data.
    """
    if isinstance(metric, str):
        reg = registry if registry is not None else get_registry()
        labelnames = tuple(sorted(labels)) if labels else ()
        hist = reg.histogram(metric, labelnames=labelnames, buckets=buckets)
        target = hist.labels(**dict(labels)) if labels else hist
    else:
        if labels:
            target = metric.labels(**dict(labels))
        else:
            target = metric
    timer = Timer().start()
    try:
        yield timer
    finally:
        target.observe(timer.stop())
