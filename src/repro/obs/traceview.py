"""Reconstruct span trees from exported JSONL and break down latency.

The tracing module (:mod:`repro.obs.tracing`) writes flat JSONL span
records, possibly spread across several files — one per node plus one
for the router/client side.  This module is the read path behind the
``repro trace`` CLI:

* :func:`load_spans` merges any number of JSONL files;
* :func:`build_traces` groups spans by ``trace_id`` and links children
  to parents into :class:`TraceTree` objects;
* :func:`critical_path` walks a tree root-to-leaf following, at each
  step, the child that finished last — the chain of operations that
  actually bounded the trace's latency;
* :func:`summarize` aggregates many traces into per-tier and per-name
  p50/p99 tables plus slowest-trace exemplars — the numbers the bench
  snapshots persist as the per-tier breakdown.

Everything here is pure data-in/data-out so tests can drive it with
hand-built spans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.obs.tracing import Span

__all__ = [
    "TraceTree",
    "TraceSummary",
    "build_traces",
    "critical_path",
    "load_spans",
    "render_tree",
    "render_summary",
    "summarize",
]


def load_spans(paths: Iterable[str | Path]) -> list[Span]:
    """Read span records from JSONL files; bad lines are skipped.

    Skipping (rather than raising) matters because a SIGKILLed node can
    leave a torn final line; the rest of the file is still a valid
    record of what that node saw.
    """
    spans: list[Span] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(Span.from_wire(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue
    return spans


@dataclass
class TraceTree:
    """All spans of one trace, linked parent → children."""

    trace_id: str
    spans: list[Span]
    children: dict[str, list[Span]] = field(default_factory=dict)

    @property
    def roots(self) -> list[Span]:
        """Spans with no parent *present in this trace* (orphans count:
        a killed node's parent span may never have been recorded)."""
        ids = {s.span_id for s in self.spans}
        return [s for s in self.spans if s.parent_id is None or s.parent_id not in ids]

    @property
    def duration_s(self) -> float:
        """Wall-clock extent of the trace (earliest start → latest end)."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def tiers(self) -> set[str]:
        return {s.tier for s in self.spans}

    def names(self) -> set[str]:
        return {s.name for s in self.spans}


def build_traces(spans: Sequence[Span]) -> dict[str, TraceTree]:
    """Group spans into :class:`TraceTree` objects keyed by trace_id.

    Duplicate span ids (an eager sink plus a drain export of the same
    buffer, say) are collapsed to one record.
    """
    by_trace: dict[str, dict[str, Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, {})[span.span_id] = span
    trees: dict[str, TraceTree] = {}
    for trace_id, unique in by_trace.items():
        members = sorted(unique.values(), key=lambda s: s.start)
        children: dict[str, list[Span]] = {}
        for span in members:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        trees[trace_id] = TraceTree(trace_id=trace_id, spans=members, children=children)
    return trees


def critical_path(tree: TraceTree) -> list[Span]:
    """Root-to-leaf chain of spans that bounded the trace's latency.

    From the longest root downward, each step follows the child that
    *finished last* — the operation the parent was still waiting on when
    everything else was already done.  With multiple roots (partial
    traces from a killed node) the longest root wins.
    """
    roots = tree.roots
    if not roots:
        return []
    path: list[Span] = []
    node = max(roots, key=lambda s: s.duration_s)
    seen: set[str] = set()
    while node is not None and node.span_id not in seen:
        seen.add(node.span_id)
        path.append(node)
        kids = tree.children.get(node.span_id, [])
        node = max(kids, key=lambda s: s.end) if kids else None
    return path


# ---------------------------------------------------------------------- #
# aggregation
# ---------------------------------------------------------------------- #


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate view over many traces."""

    n_traces: int
    n_spans: int
    trace_p50_ms: float
    trace_p99_ms: float
    by_tier: Mapping[str, Mapping[str, float]]  # tier -> {p50_ms, p99_ms, count}
    by_name: Mapping[str, Mapping[str, float]]  # span name -> {p50_ms, p99_ms, count}
    slowest: Sequence[tuple[str, float]]  # (trace_id, duration_ms), slowest first

    def tier_breakdown_ms(self) -> dict[str, float]:
        """tier -> p50 ms, the compact per-tier breakdown BENCH files keep."""
        return {tier: stats["p50_ms"] for tier, stats in sorted(self.by_tier.items())}


def summarize(trees: Mapping[str, TraceTree], *, exemplars: int = 3) -> TraceSummary:
    """Per-tier / per-name latency quantiles plus slowest exemplars."""
    durations = sorted(t.duration_s for t in trees.values())
    tier_samples: dict[str, list[float]] = {}
    name_samples: dict[str, list[float]] = {}
    n_spans = 0
    for tree in trees.values():
        for span in tree.spans:
            n_spans += 1
            tier_samples.setdefault(span.tier or "?", []).append(span.duration_s)
            name_samples.setdefault(span.name, []).append(span.duration_s)

    def stats(samples: dict[str, list[float]]) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for key, values in samples.items():
            values.sort()
            out[key] = {
                "p50_ms": _quantile(values, 0.50) * 1e3,
                "p99_ms": _quantile(values, 0.99) * 1e3,
                "count": float(len(values)),
            }
        return out

    slowest = sorted(
        ((t.trace_id, t.duration_s * 1e3) for t in trees.values()),
        key=lambda pair: -pair[1],
    )[:exemplars]
    return TraceSummary(
        n_traces=len(trees),
        n_spans=n_spans,
        trace_p50_ms=_quantile(durations, 0.50) * 1e3,
        trace_p99_ms=_quantile(durations, 0.99) * 1e3,
        by_tier=stats(tier_samples),
        by_name=stats(name_samples),
        slowest=slowest,
    )


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #


def render_tree(tree: TraceTree) -> str:
    """One trace as an indented span tree with durations and attrs."""
    lines = [f"trace {tree.trace_id}  ({tree.duration_s * 1e3:.2f} ms, "
             f"{len(tree.spans)} spans)"]
    on_path = {s.span_id for s in critical_path(tree)}

    def walk(span: Span, depth: int) -> None:
        mark = "*" if span.span_id in on_path else " "
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        status = "" if span.status == "ok" else f"  [{span.status}]"
        lines.append(
            f" {mark} {'  ' * depth}{span.name} ({span.tier}) "
            f"{span.duration_s * 1e3:.2f} ms{status}{attrs}"
        )
        for child in sorted(tree.children.get(span.span_id, []), key=lambda s: s.start):
            walk(child, depth + 1)

    for root in sorted(tree.roots, key=lambda s: s.start):
        walk(root, 0)
    lines.append("  (* = critical path)")
    return "\n".join(lines)


def render_summary(summary: TraceSummary) -> str:
    """The aggregate breakdown as an aligned text report."""
    lines = [
        f"traces: {summary.n_traces}   spans: {summary.n_spans}   "
        f"trace p50: {summary.trace_p50_ms:.2f} ms   "
        f"p99: {summary.trace_p99_ms:.2f} ms",
        "",
        f"{'tier':<10} {'count':>7} {'p50 ms':>10} {'p99 ms':>10}",
    ]
    for tier, stats in sorted(summary.by_tier.items()):
        lines.append(
            f"{tier:<10} {int(stats['count']):>7} "
            f"{stats['p50_ms']:>10.2f} {stats['p99_ms']:>10.2f}"
        )
    lines.append("")
    lines.append(f"{'span':<26} {'count':>7} {'p50 ms':>10} {'p99 ms':>10}")
    for name, stats in sorted(summary.by_name.items()):
        lines.append(
            f"{name:<26} {int(stats['count']):>7} "
            f"{stats['p50_ms']:>10.2f} {stats['p99_ms']:>10.2f}"
        )
    if summary.slowest:
        lines.append("")
        lines.append("slowest traces:")
        for trace_id, ms in summary.slowest:
            lines.append(f"  {trace_id}  {ms:.2f} ms")
    return "\n".join(lines)
