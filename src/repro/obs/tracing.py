"""Causal, end-to-end request tracing: contexts, spans, JSONL export.

One *trace* is the journey of one request through the whole service
stack — client → router → backend node → dispatcher → predictor /
store / audit — stitched together across process boundaries by a
:class:`TraceContext` carried in the wire protocol's optional ``trace``
envelope field (protocol v4; older peers simply ignore the field).

The design splits cleanly into three parts:

:class:`TraceContext`
    the (trace_id, span_id, parent_id) triple that crosses the wire.
    Inside a process it propagates through a :mod:`contextvars` variable
    — natural for asyncio tasks; thread pools must activate it
    explicitly (see :meth:`~repro.serve.dispatch.Dispatcher`).

:class:`Span` / :func:`start_span`
    one timed operation.  ``start_span`` is the instrumentation
    primitive: when no context is active it yields ``None`` and records
    nothing, so instrumented hot paths pay exactly one context-variable
    read per call when tracing is off — the zero-cost-when-disabled
    property the serving bench asserts.

:class:`SpanRecorder`
    a bounded in-process buffer of finished spans with an optional
    JSONL sink.  When a sink path is configured every span is appended
    (and flushed) as it finishes, so even a SIGKILLed node leaves its
    spans on disk for ``repro trace`` to reconstruct.

Like the metrics registry and the event log, the recorder is a swappable
process-global (:func:`get_recorder` / :func:`scoped_recorder`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "TraceContext",
    "Span",
    "SpanHandle",
    "SpanRecorder",
    "annotate",
    "current_context",
    "get_recorder",
    "record_span",
    "reset_recorder",
    "scoped_recorder",
    "set_recorder",
    "start_span",
    "use_context",
]

#: Service tiers a span may belong to (the DESIGN.md span taxonomy).
TIERS = ("client", "router", "serve", "predict", "store", "audit")

#: Default bound on buffered finished spans per process.
DEFAULT_CAPACITY = 4096


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """The identity triple that ties spans into one causal tree.

    ``trace_id`` names the whole request journey; ``span_id`` names the
    current operation; ``parent_id`` is the operation that caused it
    (None for the root).
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new_root(cls) -> "TraceContext":
        """A fresh root context (new trace, no parent)."""
        return cls(trace_id=_new_id(16), span_id=_new_id(8), parent_id=None)

    def child(self) -> "TraceContext":
        """A child context: same trace, new span, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_new_id(8), parent_id=self.span_id
        )

    def to_wire(self) -> dict[str, str]:
        """The JSON-serializable wire form (protocol ``trace`` field)."""
        obj = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            obj["parent_id"] = self.parent_id
        return obj

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "TraceContext":
        """Validate and build a context from a decoded wire object."""
        trace_id = obj.get("trace_id")
        span_id = obj.get("span_id")
        if not trace_id or not span_id:
            raise ValueError(f"trace envelope needs trace_id and span_id, got {obj!r}")
        parent = obj.get("parent_id")
        return cls(
            trace_id=str(trace_id),
            span_id=str(span_id),
            parent_id=None if parent is None else str(parent),
        )


@dataclass(frozen=True)
class Span:
    """One finished, timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    tier: str
    start: float  # epoch seconds (wall clock, for cross-process ordering)
    duration_s: float
    status: str = "ok"  # ok | error
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Epoch seconds at which the span finished."""
        return self.start + self.duration_s

    def to_wire(self) -> dict[str, Any]:
        """The JSONL record form."""
        obj: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "tier": self.tier,
            "start": self.start,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.parent_id is not None:
            obj["parent_id"] = self.parent_id
        if self.attrs:
            obj["attrs"] = dict(self.attrs)
        return obj

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "Span":
        """Build a span from a decoded JSONL record."""
        return cls(
            trace_id=str(obj["trace_id"]),
            span_id=str(obj["span_id"]),
            parent_id=(None if obj.get("parent_id") is None else str(obj["parent_id"])),
            name=str(obj["name"]),
            tier=str(obj.get("tier", "")),
            start=float(obj["start"]),
            duration_s=float(obj["duration_s"]),
            status=str(obj.get("status", "ok")),
            attrs=dict(obj.get("attrs", {})),
        )


class SpanRecorder:
    """Bounded buffer of finished spans with an optional JSONL sink.

    ``record`` is thread-safe.  With a sink configured, each span is
    appended to the file and flushed immediately — traced requests are
    rare relative to total traffic, and eager flushing is what makes the
    trail survive a SIGKILLed node (the cluster failover tests rely on
    this).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        export_path: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._fh = None
        self.export_path: Path | None = None
        if export_path is not None:
            self.open_sink(export_path)

    # ------------------------------------------------------------------ #

    def open_sink(self, path: str | Path) -> Path:
        """Start appending every recorded span to ``path`` (JSONL)."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            if self._fh is not None:
                self._fh.close()
            self._fh = open(path, "a", encoding="utf-8")
            self.export_path = path
        return path

    def record(self, span: Span) -> None:
        """Buffer one finished span (and append it to the sink, if any)."""
        with self._lock:
            self._buffer.append(span)
            if self._fh is not None:
                self._fh.write(json.dumps(span.to_wire(), separators=(",", ":")) + "\n")
                self._fh.flush()

    def spans(self) -> list[Span]:
        """Snapshot of the buffered spans, oldest first."""
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        """Drop the buffered spans (the sink file is left untouched)."""
        with self._lock:
            self._buffer.clear()

    def export(self, path: str | Path) -> Path:
        """Append every *buffered* span to ``path`` as JSONL.

        Used by the CLI drain path when no eager sink was configured;
        with a sink this would duplicate records, so it skips spans the
        sink already holds by comparing against the sink path.
        """
        path = Path(path)
        if self.export_path is not None and path.resolve() == self.export_path.resolve():
            with self._lock:
                if self._fh is not None:
                    self._fh.flush()
            return path
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self._buffer)
        with open(path, "a", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_wire(), separators=(",", ":")) + "\n")
        return path

    def close(self) -> None:
        """Flush and close the sink (the buffer stays readable)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


# ---------------------------------------------------------------------- #
# the process-global recorder and current context
# ---------------------------------------------------------------------- #

_default_recorder = SpanRecorder()

_current_context: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)
_current_handle: ContextVar["SpanHandle | None"] = ContextVar(
    "repro_span_handle", default=None
)


def get_recorder() -> SpanRecorder:
    """The current process-global span recorder."""
    return _default_recorder


def set_recorder(recorder: SpanRecorder) -> SpanRecorder:
    """Swap in ``recorder`` as the process-global default; returns the old one."""
    global _default_recorder
    old = _default_recorder
    _default_recorder = recorder
    return old


def reset_recorder() -> SpanRecorder:
    """Replace the default recorder with a fresh empty one and return it."""
    fresh = SpanRecorder()
    set_recorder(fresh)
    return fresh


@contextmanager
def scoped_recorder(recorder: SpanRecorder | None = None) -> Iterator[SpanRecorder]:
    """Temporarily make ``recorder`` (or a fresh one) the default."""
    rec = recorder if recorder is not None else SpanRecorder()
    old = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(old)


def current_context() -> TraceContext | None:
    """The active trace context of this task/thread, or None (untraced)."""
    return _current_context.get()


@contextmanager
def use_context(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``context`` the active trace context for the block.

    Passing None explicitly deactivates tracing inside the block.  This
    is how code at a process/thread boundary (a server handling a wire
    request, a dispatcher worker) adopts a remotely-created context.
    """
    token = _current_context.set(context)
    try:
        yield context
    finally:
        _current_context.reset(token)


class SpanHandle:
    """Mutable view of an in-flight span (set attributes mid-span)."""

    __slots__ = ("context", "attrs")

    def __init__(self, context: TraceContext) -> None:
        self.context = context
        self.attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.attrs.update(attrs)


@contextmanager
def start_span(
    name: str,
    tier: str,
    *,
    context: TraceContext | None = None,
    **attrs: Any,
) -> Iterator[SpanHandle | None]:
    """Open a child span under the active (or given) context.

    Yields a :class:`SpanHandle` — or **None when tracing is inactive**,
    in which case nothing is timed or recorded; callers on hot paths
    guard attribute writes with ``if sp is not None``.  The span is
    recorded even when the block raises (status ``error``), so failure
    paths stay visible in the trace tree.
    """
    ctx = context if context is not None else _current_context.get()
    if ctx is None:
        yield None
        return
    child = ctx.child()
    handle = SpanHandle(child)
    if attrs:
        handle.attrs.update(attrs)
    ctx_token = _current_context.set(child)
    handle_token = _current_handle.set(handle)
    start = time.time()
    t0 = time.perf_counter()
    status = "ok"
    try:
        yield handle
    except BaseException:
        status = "error"
        raise
    finally:
        duration = time.perf_counter() - t0
        _current_handle.reset(handle_token)
        _current_context.reset(ctx_token)
        get_recorder().record(
            Span(
                trace_id=child.trace_id,
                span_id=child.span_id,
                parent_id=child.parent_id,
                name=name,
                tier=tier,
                start=start,
                duration_s=duration,
                status=status,
                attrs=dict(handle.attrs),
            )
        )


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost active span, if any.

    Lets deep code (the predictor's day cache, say) enrich the span its
    caller opened without threading a handle through every signature.
    No-op when untraced.
    """
    handle = _current_handle.get()
    if handle is not None:
        handle.set(**attrs)


def record_span(
    name: str,
    tier: str,
    *,
    context: TraceContext,
    start: float,
    duration_s: float,
    status: str = "ok",
    **attrs: Any,
) -> Span:
    """Record an already-measured span under ``context``'s own span id.

    For retroactive measurements — queue wait, coalesced joins — where
    the interval was timed before a context could be activated.  Unlike
    :func:`start_span` this does *not* mint a child id: the span IS the
    operation the context names.
    """
    span = Span(
        trace_id=context.trace_id,
        span_id=context.span_id,
        parent_id=context.parent_id,
        name=name,
        tier=tier,
        start=start,
        duration_s=duration_s,
        status=status,
        attrs=dict(attrs),
    )
    get_recorder().record(span)
    return span
