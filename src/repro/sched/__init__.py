"""Serving-tier job placement: TR predictions turned into decisions.

``repro.sched`` closes the loop the paper motivates: the serving stack
predicts which machines survive a window; this subsystem *acts* on
those predictions, placing guest jobs (paper Section 5.1's client Job
Scheduler), keeping their state durable, and re-placing them with a
cost-modeled recovery action when hosts die.

* :mod:`repro.sched.engine` — pure placement scoring (TR × DRR packing);
* :mod:`repro.sched.jobs` — the replicated, WAL-durable job record with
  lazy clock-driven execution;
* :mod:`repro.sched.manager` — lifecycles, the scheduler WAL, and
  TR-driven failure recovery.
"""

from repro.sched.engine import (
    Candidate,
    JobDemand,
    Placement,
    PlacementEngine,
    PlacementRefusal,
    REFUSAL_NO_FEASIBLE_MACHINE,
)
from repro.sched.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_FAILED,
    STATE_PENDING,
    STATE_PLACED,
    STATE_RUNNING,
    TERMINAL_STATES,
    Attempt,
    JobRecord,
)
from repro.sched.manager import JobManager, SchedConfig, UnknownJob

__all__ = [
    "Candidate",
    "JobDemand",
    "Placement",
    "PlacementEngine",
    "PlacementRefusal",
    "REFUSAL_NO_FEASIBLE_MACHINE",
    "Attempt",
    "JobRecord",
    "JobManager",
    "SchedConfig",
    "UnknownJob",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ACTIVE_STATES",
    "STATE_PENDING",
    "STATE_PLACED",
    "STATE_RUNNING",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "STATE_CANCELLED",
]
