"""Availability-aware placement: TR × dominant-remaining-resource packing.

The engine scores one (machine, job) pair from two ingredients:

* **temporal reliability** — the probability the machine stays
  available to the guest over the job's remaining-execution window,
  exactly the quantity the paper's predictor serves (Section 5.1's
  client Job Scheduler is the intended consumer);
* **DRR packing** — an Elasecutor-style dominant-remaining-resource
  term: after tentatively placing the job, how balanced are the
  machine's leftover CPU and memory fractions?  Placements that leave
  one resource stranded (lots of CPU, no memory headroom) fragment the
  pool; balanced leftovers keep future jobs placeable.

The combined score is ``tr * (tr_weight + (1 - tr_weight) * balance)``
— multiplicative in TR, so among candidates with identical resource
shapes the ordering is *exactly* the TR ordering (a property test pins
this).  A TR-blind baseline (``predictive=False``) replaces TR with a
constant and scores by remaining headroom alone — classic least-loaded
— which is the control arm of the SCHED bench.

The engine is pure: it never mutates candidates, performs no I/O, and
an empty or infeasible candidate set yields a structured
:class:`PlacementRefusal` (never an exception) so the serving tier can
return it to the client as data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Candidate",
    "JobDemand",
    "Placement",
    "PlacementRefusal",
    "PlacementEngine",
    "REFUSAL_NO_FEASIBLE_MACHINE",
]

REFUSAL_NO_FEASIBLE_MACHINE = "no_feasible_machine"

#: Feasibility slack for float accumulation of commitments.
_EPS = 1e-9


@dataclass(frozen=True)
class JobDemand:
    """The resources one job asks for."""

    job_id: str
    #: CPU share demanded (1.0: a whole core's worth of guest cycles).
    cpu: float = 1.0
    #: Resident working set the guest needs (paper Sec. 3.2.2: less free
    #: memory than this means thrashing regardless of CPU headroom).
    mem_mb: float = 64.0

    def __post_init__(self) -> None:
        if self.cpu <= 0.0:
            raise ValueError(f"cpu demand must be positive, got {self.cpu}")
        if self.mem_mb < 0.0:
            raise ValueError(f"mem demand must be >= 0, got {self.mem_mb}")


@dataclass(frozen=True)
class Candidate:
    """One machine offered to the engine, with its current commitments."""

    machine_id: str
    #: TR of this machine over the job's remaining-execution window.
    tr: float
    cpu_capacity: float = 1.0
    mem_capacity_mb: float = math.inf
    cpu_committed: float = 0.0
    mem_committed_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0.0:
            raise ValueError(f"cpu capacity must be positive, got {self.cpu_capacity}")
        if self.mem_capacity_mb <= 0.0:
            raise ValueError(
                f"mem capacity must be positive, got {self.mem_capacity_mb}"
            )

    def fits(self, job: JobDemand) -> bool:
        """Whether the job fits in this machine's remaining capacity."""
        return (
            self.cpu_committed + job.cpu <= self.cpu_capacity + _EPS
            and self.mem_committed_mb + job.mem_mb <= self.mem_capacity_mb + _EPS
        )


@dataclass(frozen=True)
class Placement:
    """A successful decision: where the job goes and why."""

    job_id: str
    machine_id: str
    score: float
    tr: float
    #: Leftover fraction of the dominant remaining resource after placing.
    headroom: float
    #: 1 - |cpu leftover - mem leftover|: how balanced the leftovers are.
    balance: float


@dataclass(frozen=True)
class PlacementRefusal:
    """A structured non-answer: no machine can take the job right now."""

    job_id: str
    reason: str
    detail: str
    candidates_considered: int

    def to_dict(self) -> dict[str, object]:
        return {
            "job": self.job_id,
            "reason": self.reason,
            "detail": self.detail,
            "candidates_considered": self.candidates_considered,
        }


class PlacementEngine:
    """Scores candidates and picks the best feasible machine for a job.

    ``tr_weight`` in [0, 1] sets how much of the score is pure TR versus
    packing balance (1.0: ignore packing).  ``predictive=False`` builds
    the TR-blind least-loaded baseline: every candidate's TR is treated
    as 1.0 and the score is its remaining dominant-resource headroom.
    """

    def __init__(self, *, tr_weight: float = 0.7, predictive: bool = True) -> None:
        if not 0.0 <= tr_weight <= 1.0:
            raise ValueError(f"tr_weight must be in [0, 1], got {tr_weight}")
        self.tr_weight = tr_weight
        self.predictive = predictive

    # ------------------------------------------------------------------ #

    def score(self, candidate: Candidate, job: JobDemand) -> Placement | None:
        """The placement this candidate would yield, or None if infeasible."""
        if not candidate.fits(job):
            return None
        cpu_left = (
            candidate.cpu_capacity - candidate.cpu_committed - job.cpu
        ) / candidate.cpu_capacity
        if math.isinf(candidate.mem_capacity_mb):
            # Memory-unconstrained machine: its memory leftover mirrors
            # CPU so it neither helps nor hurts the balance term.
            mem_left = cpu_left
        else:
            mem_left = (
                candidate.mem_capacity_mb - candidate.mem_committed_mb - job.mem_mb
            ) / candidate.mem_capacity_mb
        cpu_left = min(max(cpu_left, 0.0), 1.0)
        mem_left = min(max(mem_left, 0.0), 1.0)
        balance = 1.0 - abs(cpu_left - mem_left)
        headroom = max(cpu_left, mem_left)
        if self.predictive:
            tr = min(max(candidate.tr, 0.0), 1.0)
            score = tr * (self.tr_weight + (1.0 - self.tr_weight) * balance)
        else:
            tr = min(max(candidate.tr, 0.0), 1.0)
            score = headroom  # least-loaded: most free capacity wins
        return Placement(
            job_id=job.job_id,
            machine_id=candidate.machine_id,
            score=score,
            tr=tr,
            headroom=headroom,
            balance=balance,
        )

    def rank(self, job: JobDemand, candidates: list[Candidate]) -> list[Placement]:
        """Feasible placements, best first (ties broken by machine id)."""
        scored = [p for p in (self.score(c, job) for c in candidates) if p is not None]
        return sorted(scored, key=lambda p: (-p.score, p.machine_id))

    def place(
        self, job: JobDemand, candidates: list[Candidate]
    ) -> Placement | PlacementRefusal:
        """The best feasible placement, or a structured refusal."""
        ranked = self.rank(job, candidates)
        if ranked:
            return ranked[0]
        if not candidates:
            detail = "no candidate machines offered"
        else:
            detail = (
                f"none of {len(candidates)} machines has "
                f"cpu>={job.cpu:g} and mem>={job.mem_mb:g}MB free"
            )
        return PlacementRefusal(
            job_id=job.job_id,
            reason=REFUSAL_NO_FEASIBLE_MACHINE,
            detail=detail,
            candidates_considered=len(candidates),
        )
