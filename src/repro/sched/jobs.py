"""Job records: the replicated, WAL-durable unit of scheduler state.

A :class:`JobRecord` is everything the scheduler knows about one guest
job, in plain scalars so it serializes to one JSON object — the same
object travels over the wire (``submit`` responses, ``job_put``
replication, ``jobs`` listings) and into the scheduler WAL.

Execution is *lazy and clock-driven*: nothing advances jobs in the
background.  Progress is a pure function of wall clock —
``carried + (now - attempt_start) * speedup`` capped at the total work —
recomputed whenever anyone looks (:meth:`JobRecord.progress_at`).
Checkpoints are equally deterministic: the guest durably saves its state
every ``checkpoint_interval_s`` CPU-seconds of new progress.  Because
both are pure functions of the record's scalars and the clock, every
replica holding the same record derives the same progress without
coordination, and a restarted scheduler recovers exact state from the
WAL snapshot alone.

Every mutation bumps the monotonic ``version``; replication and WAL
recovery keep the highest version per job, so stale copies never
overwrite newer state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "STATE_PENDING",
    "STATE_PLACED",
    "STATE_RUNNING",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "STATE_CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ACTIVE_STATES",
    "Attempt",
    "JobRecord",
]

STATE_PENDING = "pending"
STATE_PLACED = "placed"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

JOB_STATES = (
    STATE_PENDING,
    STATE_PLACED,
    STATE_RUNNING,
    STATE_COMPLETED,
    STATE_FAILED,
    STATE_CANCELLED,
)
TERMINAL_STATES = (STATE_COMPLETED, STATE_FAILED, STATE_CANCELLED)
#: States in which the job occupies capacity on its machine.
ACTIVE_STATES = (STATE_PLACED, STATE_RUNNING)

#: Listing merges prefer later lifecycle stages at equal version.
STATE_RANK = {state: i for i, state in enumerate(JOB_STATES)}


@dataclass(frozen=True)
class Attempt:
    """One try at running the job on one machine."""

    machine: str
    started_at: float
    #: CPU-seconds of progress carried into this attempt (checkpoint
    #: resume or migration; 0.0 for a fresh start).
    carried_seconds: float
    #: Why this attempt exists: "submit" | "retry" | recovery action.
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "started_at": self.started_at,
            "carried_seconds": self.carried_seconds,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "Attempt":
        return cls(
            machine=str(obj["machine"]),
            started_at=float(obj["started_at"]),
            carried_seconds=float(obj["carried_seconds"]),
            reason=str(obj.get("reason", "submit")),
        )


@dataclass(frozen=True)
class JobRecord:
    """Full scheduler-visible state of one guest job."""

    job_id: str
    #: Total guest work, in CPU-seconds.
    total_cpu_seconds: float
    #: CPU share demanded while running (1.0 = a full core).
    cpu: float
    #: Resident memory demanded while running.
    mem_mb: float
    state: str
    submitted_at: float
    #: CPU-seconds between the guest's durable checkpoints.
    checkpoint_interval_s: float
    version: int = 1
    machine: str | None = None
    attempts: tuple[Attempt, ...] = field(default_factory=tuple)
    #: Progress carried into the current attempt (checkpoint/migrate).
    carried_seconds: float = 0.0
    #: CPU-seconds of progress lost across all failures so far.
    wasted_cpu_seconds: float = 0.0
    completed_at: float | None = None
    #: Why the job sits in a non-running state (refusal detail, cancel
    #: reason, node-death note); purely informational.
    note: str = ""

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}")
        if self.total_cpu_seconds <= 0.0:
            raise ValueError(
                f"total work must be positive, got {self.total_cpu_seconds}"
            )
        if self.checkpoint_interval_s <= 0.0:
            raise ValueError(
                f"checkpoint interval must be positive, got {self.checkpoint_interval_s}"
            )

    # ------------------------------------------------------------------ #
    # derived, clock-driven quantities
    # ------------------------------------------------------------------ #

    @property
    def attempt(self) -> Attempt | None:
        return self.attempts[-1] if self.attempts else None

    def progress_at(self, now: float, speedup: float) -> float:
        """CPU-seconds of completed work at wall-clock ``now``.

        ``speedup`` converts wall seconds into guest CPU-seconds (the
        bench and tests use large values to compress simulated hours
        into real milliseconds).
        """
        if self.state == STATE_COMPLETED:
            return self.total_cpu_seconds
        if self.state not in ACTIVE_STATES or not self.attempts:
            return self.carried_seconds
        active = max(0.0, now - self.attempts[-1].started_at) * speedup
        return min(self.total_cpu_seconds, self.carried_seconds + active)

    def checkpointed_at(self, now: float, speedup: float) -> float:
        """CPU-seconds durably checkpointed at wall-clock ``now``.

        The carried base is always durable (it came from a checkpoint or
        migration image); on top of it the guest saves every
        ``checkpoint_interval_s`` CPU-seconds of new progress.
        """
        progress = self.progress_at(now, speedup)
        fresh = progress - self.carried_seconds
        intervals = math.floor(fresh / self.checkpoint_interval_s)
        return min(
            progress, self.carried_seconds + intervals * self.checkpoint_interval_s
        )

    def remaining_at(self, now: float, speedup: float) -> float:
        return max(0.0, self.total_cpu_seconds - self.progress_at(now, speedup))

    def eta_at(self, now: float, speedup: float) -> float | None:
        """Wall-clock time the current attempt will finish, if running."""
        if self.state not in ACTIVE_STATES or not self.attempts:
            return None
        return now + self.remaining_at(now, speedup) / speedup

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------ #
    # transitions (functional: each returns a new, version-bumped record)
    # ------------------------------------------------------------------ #

    def with_state(self, state: str, **changes: Any) -> "JobRecord":
        return replace(self, state=state, version=self.version + 1, **changes)

    def placed_on(
        self, machine: str, now: float, carried: float, reason: str
    ) -> "JobRecord":
        attempt = Attempt(
            machine=machine, started_at=now, carried_seconds=carried, reason=reason
        )
        return self.with_state(
            STATE_PLACED,
            machine=machine,
            carried_seconds=carried,
            attempts=self.attempts + (attempt,),
            note="",
        )

    # ------------------------------------------------------------------ #
    # wire / WAL form
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "job": self.job_id,
            "total_cpu_seconds": self.total_cpu_seconds,
            "cpu": self.cpu,
            "mem_mb": self.mem_mb,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "checkpoint_interval_s": self.checkpoint_interval_s,
            "version": self.version,
            "machine": self.machine,
            "attempts": [a.to_dict() for a in self.attempts],
            "carried_seconds": self.carried_seconds,
            "wasted_cpu_seconds": self.wasted_cpu_seconds,
            "completed_at": self.completed_at,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(obj["job"]),
            total_cpu_seconds=float(obj["total_cpu_seconds"]),
            cpu=float(obj["cpu"]),
            mem_mb=float(obj["mem_mb"]),
            state=str(obj["state"]),
            submitted_at=float(obj["submitted_at"]),
            checkpoint_interval_s=float(obj["checkpoint_interval_s"]),
            version=int(obj["version"]),
            machine=obj.get("machine"),
            attempts=tuple(Attempt.from_dict(a) for a in obj.get("attempts", ())),
            carried_seconds=float(obj.get("carried_seconds", 0.0)),
            wasted_cpu_seconds=float(obj.get("wasted_cpu_seconds", 0.0)),
            completed_at=obj.get("completed_at"),
            note=str(obj.get("note", "")),
        )
