"""JobManager: job lifecycles, durable state, and TR-driven recovery.

The manager owns every :class:`~repro.sched.jobs.JobRecord` on this
node, gluing together the three ingredients of the scheduling tier:

* the :class:`~repro.sched.engine.PlacementEngine` picks machines by TR
  over the job's remaining-execution window × DRR packing, with the TR
  queries answered by the node's own :class:`AvailabilityService`;
* a **scheduler WAL** (the store tier's ``SegmentWriter`` framing, same
  as the audit journal) makes every state transition durable: a full
  JSON snapshot of the record per transition, recovered by keeping the
  highest ``version`` per job — a restarted scheduler reconstructs its
  queue exactly, and jobs that finished while it was down are
  discovered as completed on the first read;
* on node-death evidence (the membership prober, via the router's
  ``replace`` broadcast) affected jobs are re-placed, choosing
  checkpoint-resume vs. migrate vs. restart-from-scratch by the
  expected-cost comparison of :mod:`repro.core.recovery` under the TR
  of the *new* window.

Execution is lazy and clock-driven (see :mod:`repro.sched.jobs`): no
threads, no timers.  ``refresh()`` — called on every read and mutation
— promotes placed→running, discovers completions, and retries pending
jobs.  The clock is injectable so the bench and tests drive simulated
time deterministically.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.recovery import (
    ACTION_MIGRATE,
    ACTION_RESTART,
    ACTION_RESUME,
    RecoveryCosts,
    choose_recovery_action,
)
from repro.core.windows import AbsoluteWindow
from repro.obs.instruments import instrument
from repro.obs.tracing import start_span
from repro.sched.engine import (
    Candidate,
    JobDemand,
    Placement,
    PlacementEngine,
    PlacementRefusal,
)
from repro.sched.jobs import (
    ACTIVE_STATES,
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_PLACED,
    STATE_RANK,
    STATE_RUNNING,
    JobRecord,
)
from repro.store.wal import FsyncPolicy, SegmentWriter, recover_segment

__all__ = ["SchedConfig", "JobManager", "UnknownJob"]

#: Roll to a fresh WAL segment past this size (same bound as the audit
#: journal) so recovery replays bounded files.
_MAX_SEGMENT_BYTES = 4 * 1024 * 1024


class UnknownJob(KeyError):
    """A job id this manager has never seen."""


@dataclass(frozen=True)
class SchedConfig:
    """Tuning knobs of one JobManager."""

    #: Guest CPU-seconds completed per wall-clock second (tests and the
    #: bench use large values to compress hours into milliseconds).
    speedup: float = 1.0
    #: Engine blend between TR and packing balance (see PlacementEngine).
    tr_weight: float = 0.7
    #: False builds the TR-blind least-loaded baseline (the bench's
    #: control arm); production serving always runs predictive.
    predictive: bool = True
    #: Default CPU-seconds between guest checkpoints (per-job override
    #: via submit).
    checkpoint_interval_s: float = 600.0
    #: Modeled capacity of every candidate machine.
    cpu_capacity: float = 1.0
    mem_capacity_mb: float = 1024.0
    #: Floor on the TR prediction window (very short remaining work
    #: still asks about a meaningful horizon).
    min_window_s: float = 60.0
    #: TR assumed for a machine whose prediction fails (no history yet).
    fallback_tr: float = 0.5
    #: Score candidates with one batched ``predict_batch`` call instead
    #: of N scalar predicts (False keeps the scalar reference path; the
    #: bench asserts both arms place jobs identically).
    batch_predict: bool = True
    costs: RecoveryCosts = RecoveryCosts()

    def __post_init__(self) -> None:
        if self.speedup <= 0.0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")
        if self.checkpoint_interval_s <= 0.0:
            raise ValueError(
                f"checkpoint interval must be positive, got {self.checkpoint_interval_s}"
            )
        if not 0.0 < self.fallback_tr <= 1.0:
            raise ValueError(f"fallback_tr must be in (0, 1], got {self.fallback_tr}")


class JobManager:
    """Owns job lifecycles on one serving node.

    ``directory=None`` keeps the same state machine purely in memory
    (what ``repro serve`` without ``--sched-dir`` runs); with a
    directory every transition is WAL-durable and ``__init__`` recovers
    the full job table before serving.
    """

    def __init__(
        self,
        service: Any,
        *,
        config: SchedConfig | None = None,
        directory: str | Path | None = None,
        fsync: FsyncPolicy | str = "always",
        clock: Callable[[], float] = time.time,
        node: str = "",
    ) -> None:
        self.service = service
        self.config = config or SchedConfig()
        self.clock = clock
        self.node = node
        self.engine = PlacementEngine(
            tr_weight=self.config.tr_weight, predictive=self.config.predictive
        )
        self.directory = None if directory is None else Path(directory)
        self._fsync = FsyncPolicy.parse(fsync)
        self._writer: SegmentWriter | None = None
        self._segment_index = 0
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._down: set[str] = set()
        self.recovered_jobs = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._recover()
            self._open_writer()
        self._set_running_gauge()

    # ------------------------------------------------------------------ #
    # WAL: full-record snapshots, highest version wins on recovery
    # ------------------------------------------------------------------ #

    def _segments(self) -> list[Path]:
        assert self.directory is not None
        return sorted(self.directory.glob("sched-*.wal"))

    def _recover(self) -> None:
        for path in self._segments():
            recovered = recover_segment(path)
            for payload in recovered.payloads:
                record = self._decode(payload)
                if record is None:
                    continue
                current = self._jobs.get(record.job_id)
                if current is None or record.version >= current.version:
                    self._jobs[record.job_id] = record
        self.recovered_jobs = len(self._jobs)

    @staticmethod
    def _decode(payload: bytes) -> JobRecord | None:
        try:
            obj = json.loads(payload)
            if obj.pop("kind", None) != "job":
                return None
            return JobRecord.from_dict(obj)
        except (ValueError, TypeError, KeyError):
            return None  # garbled record: skip, don't poison recovery

    def _open_writer(self) -> None:
        assert self.directory is not None
        segments = self._segments()
        if segments:
            last = segments[-1]
            self._segment_index = int(last.stem.split("-")[1])
            if last.stat().st_size < _MAX_SEGMENT_BYTES:
                self._writer = SegmentWriter(last, self._fsync)
                return
            self._segment_index += 1
        self._writer = SegmentWriter(
            self.directory / f"sched-{self._segment_index:08d}.wal", self._fsync
        )

    def _log(self, record: JobRecord) -> None:
        if self._writer is None:
            return
        if self._writer.size >= _MAX_SEGMENT_BYTES:
            self._writer.close()
            self._segment_index += 1
            assert self.directory is not None
            self._writer = SegmentWriter(
                self.directory / f"sched-{self._segment_index:08d}.wal", self._fsync
            )
        payload = json.dumps(
            {"kind": "job", **record.to_dict()}, separators=(",", ":")
        ).encode("utf-8")
        self._writer.append(payload)

    def _store(self, record: JobRecord) -> JobRecord:
        """Commit one record: in-memory table + WAL, single source of truth."""
        self._jobs[record.job_id] = record
        self._log(record)
        return record

    # ------------------------------------------------------------------ #
    # lazy clock-driven lifecycle
    # ------------------------------------------------------------------ #

    def refresh(self, now: float | None = None) -> None:
        """Advance every job to its clock-implied state; retry pending."""
        with self._lock:
            self._refresh_locked(self.clock() if now is None else now)

    def _refresh_locked(self, now: float) -> None:
        cfg = self.config
        for job_id in list(self._jobs):
            record = self._jobs[job_id]
            if record.terminal or record.state == STATE_PENDING:
                continue
            attempt = record.attempt
            if attempt is None:  # defensive: active without an attempt
                self._store(record.with_state(STATE_PENDING, machine=None))
                continue
            if record.progress_at(now, cfg.speedup) >= record.total_cpu_seconds:
                finished = (
                    attempt.started_at
                    + (record.total_cpu_seconds - record.carried_seconds) / cfg.speedup
                )
                self._store(
                    record.with_state(STATE_COMPLETED, completed_at=finished)
                )
                instrument("sched_jobs_completed_total").inc()
            elif record.state == STATE_PLACED and now > attempt.started_at:
                self._store(record.with_state(STATE_RUNNING))
        # Retry jobs parked pending (earlier refusals) now that the
        # machine pool may have changed.
        for job_id in list(self._jobs):
            record = self._jobs[job_id]
            if record.state == STATE_PENDING:
                self._try_place(record, now, record.carried_seconds, "retry")
        self._set_running_gauge()

    def _set_running_gauge(self) -> None:
        active = sum(1 for r in self._jobs.values() if r.state in ACTIVE_STATES)
        instrument("sched_jobs_running").set(active)

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #

    def _tr(self, machine: str, window: AbsoluteWindow) -> float:
        try:
            return float(self.service.predict(machine, window))
        except Exception:
            return self.config.fallback_tr

    def _trs(self, machines: list[str], window: AbsoluteWindow) -> dict[str, float]:
        """TR per machine: one batched fleet solve, or the scalar loop.

        The batched path answers every machine from a single stacked
        kernel pass (``AvailabilityService.predict_batch``); services
        without it (bench fakes, old deployments) and any batch failure
        fall back to per-machine scalar predicts, so placement never
        degrades below the v5 behaviour.
        """
        if machines and self.config.batch_predict:
            batch = getattr(self.service, "predict_batch", None)
            if batch is not None:
                try:
                    trs = batch(list(machines), window)
                    return {m: float(trs[m]) for m in machines}
                except Exception:
                    pass
        return {m: self._tr(m, window) for m in machines}

    def _candidates(self, job: JobRecord, now: float) -> list[Candidate]:
        cfg = self.config
        remaining = job.remaining_at(now, cfg.speedup)
        window = AbsoluteWindow(
            now, max(cfg.min_window_s, remaining / cfg.speedup)
        )
        committed_cpu: dict[str, float] = {}
        committed_mem: dict[str, float] = {}
        for other in self._jobs.values():
            if other.job_id == job.job_id or other.state not in ACTIVE_STATES:
                continue
            assert other.machine is not None
            committed_cpu[other.machine] = (
                committed_cpu.get(other.machine, 0.0) + other.cpu
            )
            committed_mem[other.machine] = (
                committed_mem.get(other.machine, 0.0) + other.mem_mb
            )
        pool = [m for m in sorted(self.service.machine_ids) if m not in self._down]
        trs = self._trs(pool, window)
        return [
            Candidate(
                machine_id=m,
                tr=trs[m],
                cpu_capacity=cfg.cpu_capacity,
                mem_capacity_mb=cfg.mem_capacity_mb,
                cpu_committed=committed_cpu.get(m, 0.0),
                mem_committed_mb=committed_mem.get(m, 0.0),
            )
            for m in pool
        ]

    def _try_place(
        self, record: JobRecord, now: float, carried: float, reason: str
    ) -> tuple[JobRecord, Placement | PlacementRefusal]:
        """Place (or re-place) one job; commits the resulting record."""
        t0 = time.perf_counter()
        demand = JobDemand(job_id=record.job_id, cpu=record.cpu, mem_mb=record.mem_mb)
        with start_span(
            "sched.place", "sched", job=record.job_id, reason=reason
        ) as span:
            decision = self.engine.place(demand, self._candidates(record, now))
            if isinstance(decision, Placement):
                record = self._store(
                    record.placed_on(decision.machine_id, now, carried, reason)
                )
                if span is not None:
                    span.set(machine=decision.machine_id, tr=round(decision.tr, 4))
                instrument("sched_placements_total").labels(outcome="placed").inc()
            else:
                record = self._store(
                    record.with_state(
                        STATE_PENDING,
                        machine=None,
                        carried_seconds=carried,
                        note=decision.detail,
                    )
                )
                instrument("sched_placements_total").labels(outcome="refused").inc()
        instrument("sched_placement_latency_seconds").observe(
            time.perf_counter() - t0
        )
        return record, decision

    # ------------------------------------------------------------------ #
    # public operations (the dispatcher's handlers call these)
    # ------------------------------------------------------------------ #

    def submit(
        self,
        job_id: str,
        *,
        total_cpu_seconds: float,
        cpu: float = 1.0,
        mem_mb: float = 64.0,
        checkpoint_interval_s: float | None = None,
    ) -> dict[str, Any]:
        """Create and place a job; idempotent on resubmission of the same id."""
        with self._lock:
            now = self.clock()
            self._refresh_locked(now)
            existing = self._jobs.get(job_id)
            if existing is not None:
                return {"record": existing.to_dict(), "resubmitted": True}
            record = JobRecord(
                job_id=job_id,
                total_cpu_seconds=float(total_cpu_seconds),
                cpu=float(cpu),
                mem_mb=float(mem_mb),
                state=STATE_PENDING,
                submitted_at=now,
                checkpoint_interval_s=float(
                    checkpoint_interval_s
                    if checkpoint_interval_s is not None
                    else self.config.checkpoint_interval_s
                ),
            )
            instrument("sched_jobs_submitted_total").inc()
            record, decision = self._try_place(record, now, 0.0, "submit")
            self._set_running_gauge()
            result: dict[str, Any] = {"record": record.to_dict()}
            if isinstance(decision, PlacementRefusal):
                result["refusal"] = decision.to_dict()
            return result

    def adopt(self, record_dict: Mapping[str, Any]) -> dict[str, Any]:
        """Upsert a replicated record; the higher version always wins.

        This is the ``job_put`` replication entry point: the placing
        owner pushes full records to the other R-1 owners (and back to
        itself, where the upsert is a no-op).  Ties on version prefer
        the later lifecycle stage so replicas converge.
        """
        record = JobRecord.from_dict(record_dict)
        with self._lock:
            current = self._jobs.get(record.job_id)
            if current is not None and (
                (current.version, STATE_RANK[current.state])
                >= (record.version, STATE_RANK[record.state])
            ):
                return {"adopted": False, "version": current.version}
            self._store(record)
            self._set_running_gauge()
            return {"adopted": True, "version": record.version}

    def status(self, job_id: str) -> dict[str, Any]:
        with self._lock:
            now = self.clock()
            self._refresh_locked(now)
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJob(job_id)
            cfg = self.config
            out = record.to_dict()
            out["progress_seconds"] = round(record.progress_at(now, cfg.speedup), 3)
            out["checkpointed_seconds"] = round(
                record.checkpointed_at(now, cfg.speedup), 3
            )
            out["remaining_seconds"] = round(record.remaining_at(now, cfg.speedup), 3)
            return out

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job; idempotent (cancelling a terminal job is a no-op)."""
        with self._lock:
            self._refresh_locked(self.clock())
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJob(job_id)
            if not record.terminal:
                record = self._store(
                    record.with_state(STATE_CANCELLED, note="cancelled by client")
                )
            self._set_running_gauge()
            return {"record": record.to_dict()}

    def list_jobs(self) -> list[dict[str, Any]]:
        with self._lock:
            self._refresh_locked(self.clock())
            return [
                self._jobs[job_id].to_dict() for job_id in sorted(self._jobs)
            ]

    # ------------------------------------------------------------------ #
    # failure recovery
    # ------------------------------------------------------------------ #

    def replace(
        self,
        machines: list[str],
        *,
        reason: str = "node_down",
        restore: bool = False,
        migratable: bool | None = None,
    ) -> dict[str, Any]:
        """React to machines dying (or coming back).

        ``restore=True`` removes the machines from the exclusion set —
        jobs are *not* moved back (migrating healthy work is all cost,
        no benefit) but new placements may use them again.  Otherwise
        the machines join the exclusion set and every active job on
        them is re-placed, choosing resume / migrate / restart by
        expected-cost comparison under the TR of the new window.
        ``migratable`` defaults to True only for proactive reasons
        (``drain*``): a SIGKILLed host has nothing left to migrate.
        """
        with self._lock:
            now = self.clock()
            self._refresh_locked(now)
            if restore:
                self._down.difference_update(machines)
                return {"restored": sorted(machines), "replaced": 0, "actions": {}}
            self._down.update(machines)
            if migratable is None:
                migratable = reason.startswith("drain")
            affected = [
                r
                for r in self._jobs.values()
                if r.state in ACTIVE_STATES and r.machine in set(machines)
            ]
            actions: dict[str, int] = {}
            cfg = self.config
            with start_span(
                "sched.replace", "sched", reason=reason, machines=len(machines)
            ) as span:
                for record in affected:
                    progress = record.progress_at(now, cfg.speedup)
                    checkpointed = record.checkpointed_at(now, cfg.speedup)
                    remaining_wall = max(
                        cfg.min_window_s,
                        (record.total_cpu_seconds - checkpointed) / cfg.speedup,
                    )
                    # TR of the best surviving candidate's window decides
                    # the failure rate the cost model discounts by.
                    survivors = [
                        m
                        for m in sorted(self.service.machine_ids)
                        if m not in self._down
                    ]
                    best_tr = max(
                        self._trs(
                            survivors, AbsoluteWindow(now, remaining_wall)
                        ).values(),
                        default=cfg.fallback_tr,
                    )
                    decision = choose_recovery_action(
                        total_work_seconds=record.total_cpu_seconds,
                        progress_seconds=progress,
                        checkpointed_seconds=checkpointed,
                        new_host_tr=best_tr,
                        window_seconds=remaining_wall * cfg.speedup,
                        costs=cfg.costs,
                        migratable=migratable,
                    )
                    carried = {
                        ACTION_RESUME: checkpointed,
                        ACTION_MIGRATE: progress,
                        ACTION_RESTART: 0.0,
                    }[decision.action]
                    wasted = progress - carried
                    if wasted > 0.0:
                        instrument("sched_wasted_cpu_seconds_total").inc(wasted)
                    record = dc_replace(
                        record, wasted_cpu_seconds=record.wasted_cpu_seconds + wasted
                    )
                    self._try_place(record, now, carried, decision.action)
                    instrument("sched_replacements_total").labels(
                        action=decision.action
                    ).inc()
                    actions[decision.action] = actions.get(decision.action, 0) + 1
                if span is not None:
                    span.set(replaced=len(affected))
            self._set_running_gauge()
            return {
                "replaced": len(affected),
                "actions": actions,
                "down": sorted(self._down),
            }

    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._jobs.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return {
                "jobs": len(self._jobs),
                "states": counts,
                "down_machines": sorted(self._down),
                "durable": self.directory is not None,
            }

    def sync(self) -> None:
        if self._writer is not None:
            self._writer.sync()

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.close(sync=True)
                self._writer = None

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
