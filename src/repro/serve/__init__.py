"""``repro.serve`` — the network serving tier of the State Manager.

The paper's State Manager answers a *stream* of temporal-reliability
queries from remote schedulers; this package is that serving tier for
the reproduction: a stdlib-only asyncio JSON-lines TCP server wrapping
:class:`repro.service.AvailabilityService` with request coalescing, a
bounded worker pool, admission control (load shedding), per-request
deadlines and graceful drain.

Layering::

    protocol.py   wire format: Request/Response dataclasses, op set v1
    dispatch.py   Dispatcher: coalescing + worker pool + backpressure
    server.py     ServeServer: asyncio TCP front-end
    client.py     ServeClient (blocking) / AsyncServeClient (asyncio)

Start a server from the CLI (``repro-fgcs serve``) or in-process::

    server = ServeServer(service, port=0)
    await server.start()            # server.port holds the bound port
    ...
    await server.stop()             # graceful drain
"""

from repro.serve.client import AsyncServeClient, ServeClient, ServeRequestError
from repro.serve.dispatch import DispatchConfig, Dispatcher
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
)
from repro.serve.server import ServeServer

__all__ = [
    "AsyncServeClient",
    "DispatchConfig",
    "Dispatcher",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "ServeClient",
    "ServeRequestError",
    "ServeServer",
]
