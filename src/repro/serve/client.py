"""Client libraries for the serving tier (sync and asyncio).

:class:`ServeClient` is the blocking client a thread-per-connection
scheduler (or the ``repro-fgcs query`` CLI and the load-generator
bench) uses; :class:`AsyncServeClient` is the same surface for asyncio
callers.  Both speak the JSON-lines protocol of
:mod:`repro.serve.protocol` over one TCP connection and issue requests
serially per connection — open more connections for parallelism, which
is also what exercises the server's concurrency.

The convenience methods (:meth:`~ServeClient.predict`, ...) raise
:class:`ServeRequestError` on any non-``ok`` status; use
:meth:`~ServeClient.request` to handle shed/deadline responses
yourself (a load balancer would retry them on another replica).
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Any, Mapping

from repro.serve.protocol import ProtocolError, Request, Response

__all__ = ["ServeClient", "AsyncServeClient", "ServeRequestError"]


class ServeRequestError(RuntimeError):
    """A request that came back with a non-``ok`` status."""

    def __init__(self, response: Response) -> None:
        error = response.error or {}
        super().__init__(
            f"request {response.id or '<anonymous>'} failed with status "
            f"{response.status!r}: {error.get('type', '?')}: "
            f"{error.get('message', '')}"
        )
        self.response = response
        self.status = response.status


def _trace_params(trace: Any) -> dict[str, Any]:
    """Wire params for registering a ``MachineTrace``."""
    return {
        "machine": trace.machine_id,
        "start_time": trace.start_time,
        "sample_period": trace.sample_period,
        "load": [float(v) for v in trace.load],
        "free_mem_mb": [float(v) for v in trace.free_mem_mb],
        "up": [bool(v) for v in trace.up],
    }


class _ConvenienceOps:
    """The op surface shared by the sync and async clients.

    Subclasses provide ``request(op, params, deadline_ms)`` (sync or
    async); these wrappers build params and unwrap results.  On the
    async client every method returns a coroutine.
    """

    def request(self, op, params=None, deadline_ms=None):  # pragma: no cover
        raise NotImplementedError

    def _result(self, response: Response) -> Any:
        if not response.ok:
            raise ServeRequestError(response)
        return response.result

    @staticmethod
    def _window_params(
        start_hour: float, hours: float, day_type: str, **extra: Any
    ) -> dict[str, Any]:
        params = {"start_hour": start_hour, "hours": hours, "day_type": day_type}
        params.update({k: v for k, v in extra.items() if v is not None})
        return params


class ServeClient(_ConvenienceOps):
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float | None = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # -- plumbing -------------------------------------------------------- #

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(
        self,
        op: str,
        params: Mapping[str, Any] | None = None,
        deadline_ms: float | None = None,
    ) -> Response:
        """Send one request and block for its response."""
        req = Request(
            op=op, params=params or {}, id=f"q{next(self._ids)}", deadline_ms=deadline_ms
        )
        self._file.write(req.encode())
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        resp = Response.decode(line)
        if resp.id != req.id:
            raise ProtocolError(f"response id {resp.id!r} does not match {req.id!r}")
        return resp

    # -- ops ------------------------------------------------------------- #

    def predict(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        init_state: str | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        """TR of one machine over one clock window."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, init_state=init_state
        )
        return self._result(self.request("predict", params, deadline_ms))["tr"]

    def rank(
        self, start_hour: float, hours: float, day_type: str = "weekday"
    ) -> list[dict[str, Any]]:
        """All machines sorted by TR, best first."""
        params = self._window_params(start_hour, hours, day_type)
        return self._result(self.request("rank", params))["ranking"]

    def select(
        self, start_hour: float, hours: float, day_type: str = "weekday", *, k: int = 1
    ) -> dict[str, Any]:
        """Best-k machines and their gang survival."""
        params = self._window_params(start_hour, hours, day_type, k=k)
        return self._result(self.request("select", params))

    def horizon(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        tr_threshold: float = 0.9,
    ) -> float:
        """Longest reliable job length (seconds) at the window start."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, tr_threshold=tr_threshold
        )
        return self._result(self.request("horizon", params))["horizon_seconds"]

    def register(self, trace: Any) -> dict[str, Any]:
        """Register (or replace) one machine's history from a trace."""
        return self._result(self.request("register", _trace_params(trace)))

    def health(self) -> dict[str, Any]:
        """Server liveness, queue depth, machine count."""
        return self._result(self.request("health"))


class AsyncServeClient(_ConvenienceOps):
    """Asyncio JSON-lines client over one TCP connection.

    Construct via :meth:`connect`; the op methods mirror
    :class:`ServeClient` but are coroutines.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "AsyncServeClient":
        """Open a connection and return a ready client."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def request(
        self,
        op: str,
        params: Mapping[str, Any] | None = None,
        deadline_ms: float | None = None,
    ) -> Response:
        """Send one request and await its response."""
        req = Request(
            op=op, params=params or {}, id=f"q{next(self._ids)}", deadline_ms=deadline_ms
        )
        self._writer.write(req.encode())
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        resp = Response.decode(line)
        if resp.id != req.id:
            raise ProtocolError(f"response id {resp.id!r} does not match {req.id!r}")
        return resp

    # -- ops ------------------------------------------------------------- #

    async def predict(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        init_state: str | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        """TR of one machine over one clock window."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, init_state=init_state
        )
        return self._result(await self.request("predict", params, deadline_ms))["tr"]

    async def rank(
        self, start_hour: float, hours: float, day_type: str = "weekday"
    ) -> list[dict[str, Any]]:
        """All machines sorted by TR, best first."""
        params = self._window_params(start_hour, hours, day_type)
        return self._result(await self.request("rank", params))["ranking"]

    async def select(
        self, start_hour: float, hours: float, day_type: str = "weekday", *, k: int = 1
    ) -> dict[str, Any]:
        """Best-k machines and their gang survival."""
        params = self._window_params(start_hour, hours, day_type, k=k)
        return self._result(await self.request("select", params))

    async def horizon(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        tr_threshold: float = 0.9,
    ) -> float:
        """Longest reliable job length (seconds) at the window start."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, tr_threshold=tr_threshold
        )
        return self._result(await self.request("horizon", params))["horizon_seconds"]

    async def register(self, trace: Any) -> dict[str, Any]:
        """Register (or replace) one machine's history from a trace."""
        return self._result(await self.request("register", _trace_params(trace)))

    async def health(self) -> dict[str, Any]:
        """Server liveness, queue depth, machine count."""
        return self._result(await self.request("health"))
