"""Client libraries for the serving tier (sync and asyncio).

:class:`ServeClient` is the blocking client a thread-per-connection
scheduler (or the ``repro-fgcs query`` CLI and the load-generator
bench) uses; :class:`AsyncServeClient` is the same surface for asyncio
callers.  Both speak the JSON-lines protocol of
:mod:`repro.serve.protocol` over one TCP connection and issue requests
serially per connection — open more connections for parallelism, which
is also what exercises the server's concurrency.

The convenience methods (:meth:`~ServeClient.predict`, ...) raise
:class:`ServeRequestError` on any non-``ok`` status; use
:meth:`~ServeClient.request` to handle shed/deadline responses
yourself (a load balancer would retry them on another replica).

Both clients take an opt-in ``retries=`` argument covering the two
refusal modes a replica can exhibit: backpressure responses (``shed`` /
``shutting_down`` — the server refused the work without computing
anything) and *connection errors* (``ConnectionRefusedError`` /
``ConnectionResetError`` — the replica is restarting or was killed).
Both are retried up to ``retries`` times with exponential backoff and
full jitter, reconnecting first for connection errors, so a one-off CLI
query (or the cluster router's own clients) survives a transient
overload burst or a replica restart instead of failing on the first
refusal.  Connection-error retries re-send the request, which is safe
for this op set: reads are side-effect-free and ``register``/``extend``
are idempotent (replace / overlap-trim semantics).  Real errors and
deadline expirations are never retried.

Requests are sent at the lowest protocol version that includes their op
(see :func:`repro.serve.protocol.min_version`), so a new client keeps
working against an older server for the ops that server speaks.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time
from typing import Any, Mapping

from repro.obs.tracing import current_context, start_span
from repro.serve.protocol import (
    BACKPRESSURE_STATUSES,
    ProtocolError,
    Request,
    Response,
    min_version,
)

__all__ = ["ServeClient", "AsyncServeClient", "ServeRequestError"]


class ServeRequestError(RuntimeError):
    """A request that came back with a non-``ok`` status."""

    def __init__(self, response: Response) -> None:
        error = response.error or {}
        super().__init__(
            f"request {response.id or '<anonymous>'} failed with status "
            f"{response.status!r}: {error.get('type', '?')}: "
            f"{error.get('message', '')}"
        )
        self.response = response
        self.status = response.status


def _trace_params(trace: Any) -> dict[str, Any]:
    """Wire params for shipping a ``MachineTrace`` (register / extend)."""
    return {
        "machine": trace.machine_id,
        "start_time": trace.start_time,
        "sample_period": trace.sample_period,
        "load": [float(v) for v in trace.load],
        "free_mem_mb": [float(v) for v in trace.free_mem_mb],
        "up": [bool(v) for v in trace.up],
    }


def _retry_delay(attempt: int, base_s: float, max_s: float) -> float:
    """Exponential backoff with full jitter (attempt is 0-based)."""
    return random.uniform(0.0, min(max_s, base_s * (2.0**attempt)))


class _ConvenienceOps:
    """The op surface shared by the sync and async clients.

    Subclasses provide ``request(op, params, deadline_ms)`` (sync or
    async); these wrappers build params and unwrap results.  On the
    async client every method returns a coroutine.
    """

    def request(self, op, params=None, deadline_ms=None):  # pragma: no cover
        raise NotImplementedError

    def _result(self, response: Response) -> Any:
        if not response.ok:
            raise ServeRequestError(response)
        return response.result

    @staticmethod
    def _window_params(
        start_hour: float, hours: float, day_type: str, **extra: Any
    ) -> dict[str, Any]:
        params = {"start_hour": start_hour, "hours": hours, "day_type": day_type}
        params.update({k: v for k, v in extra.items() if v is not None})
        return params


class ServeClient(_ConvenienceOps):
    """Blocking JSON-lines client over one TCP connection.

    ``retries`` bounds how many times a backpressure response or a
    connection error is retried (0: fail fast, the default);
    ``retry_backoff_s`` is the base of the jittered exponential backoff,
    capped at ``retry_backoff_max_s``.  A connection-error retry
    reconnects to the same ``(host, port)`` before re-sending.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = 10.0,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._file: Any = None
        self._connect()
        self._ids = itertools.count(1)
        self._retries = int(retries)
        self._backoff_s = retry_backoff_s
        self._backoff_max_s = retry_backoff_max_s

    # -- plumbing -------------------------------------------------------- #

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        """Drop a broken connection (close() tolerates this state)."""
        try:
            self.close()
        except OSError:
            pass
        self._sock = None
        self._file = None

    def close(self) -> None:
        """Close the connection."""
        if self._sock is None:
            return
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(
        self,
        op: str,
        params: Mapping[str, Any] | None = None,
        deadline_ms: float | None = None,
    ) -> Response:
        """Send one request; blocks for it, retrying refusals if opted in.

        Backpressure responses are retried in place; connection errors
        (refused while restarting, reset by a killed replica) tear the
        connection down and reconnect before re-sending.
        """
        for attempt in itertools.count():
            try:
                if self._sock is None:
                    self._connect()
                resp = self._request_once(op, params, deadline_ms)
            except ConnectionError:
                self._teardown()
                if attempt >= self._retries:
                    raise
                time.sleep(_retry_delay(attempt, self._backoff_s, self._backoff_max_s))
                continue
            if resp.status in BACKPRESSURE_STATUSES and attempt < self._retries:
                time.sleep(_retry_delay(attempt, self._backoff_s, self._backoff_max_s))
                continue
            return resp
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        op: str,
        params: Mapping[str, Any] | None,
        deadline_ms: float | None,
    ) -> Response:
        # When a trace context is ambient, each send becomes a
        # client.request span and the *span's* context rides the wire,
        # so server-side spans parent under this attempt (retries each
        # get their own span and stay distinguishable in the tree).
        with start_span("client.request", "client", op=op) as sp:
            ctx = current_context()
            req = Request(
                op=op,
                params=params or {},
                id=f"q{next(self._ids)}",
                deadline_ms=deadline_ms,
                version=min_version(op),
                trace=None if ctx is None else ctx.to_wire(),
            )
            self._file.write(req.encode())
            self._file.flush()
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-request")
            resp = Response.decode(line)
            if resp.id != req.id:
                raise ProtocolError(f"response id {resp.id!r} does not match {req.id!r}")
            if sp is not None:
                sp.set(status=resp.status)
            return resp

    # -- ops ------------------------------------------------------------- #

    def predict(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        init_state: str | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        """TR of one machine over one clock window."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, init_state=init_state
        )
        return self._result(self.request("predict", params, deadline_ms))["tr"]

    def predict_batch(
        self,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        machines: list[str] | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, float]:
        """TR of many machines in one request (protocol v7).

        ``machines=None`` covers every registered machine; returns
        ``{machine: tr}``.
        """
        params = self._window_params(start_hour, hours, day_type, machines=machines)
        result = self._result(self.request("predict_batch", params, deadline_ms))
        return {p["machine"]: p["tr"] for p in result["predictions"]}

    def fleet_scan(
        self,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        machines: list[str] | None = None,
        horizons_hours: list[float] | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Full fleet snapshot, best machine first (protocol v7).

        Each entry carries TR, the S3/S4/S5 failure split, the typical
        initial state and — when ``horizons_hours`` is given — TR at
        each sub-horizon, all from one stacked solve.
        """
        params = self._window_params(
            start_hour, hours, day_type,
            machines=machines, horizons_hours=horizons_hours,
        )
        return self._result(self.request("fleet_scan", params, deadline_ms))

    def rank(
        self, start_hour: float, hours: float, day_type: str = "weekday"
    ) -> list[dict[str, Any]]:
        """All machines sorted by TR, best first."""
        params = self._window_params(start_hour, hours, day_type)
        return self._result(self.request("rank", params))["ranking"]

    def select(
        self, start_hour: float, hours: float, day_type: str = "weekday", *, k: int = 1
    ) -> dict[str, Any]:
        """Best-k machines and their gang survival."""
        params = self._window_params(start_hour, hours, day_type, k=k)
        return self._result(self.request("select", params))

    def horizon(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        tr_threshold: float = 0.9,
    ) -> float:
        """Longest reliable job length (seconds) at the window start."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, tr_threshold=tr_threshold
        )
        return self._result(self.request("horizon", params))["horizon_seconds"]

    def register(self, trace: Any) -> dict[str, Any]:
        """Register (or replace) one machine's history from a trace."""
        return self._result(self.request("register", _trace_params(trace)))

    def extend(self, chunk: Any) -> dict[str, Any]:
        """Stream a chunk of new samples for one machine (protocol v2)."""
        return self._result(self.request("extend", _trace_params(chunk)))

    def quality(self, machine: str | None = None) -> dict[str, Any]:
        """Prediction-audit scoreboard snapshots (protocol v3)."""
        params = {} if machine is None else {"machine": machine}
        return self._result(self.request("quality", params))

    def tail(self, machine: str, n: int = 10) -> dict[str, Any]:
        """Last ``n`` samples of one machine's history (protocol v6)."""
        return self._result(self.request("tail", {"machine": machine, "n": n}))

    def health(self) -> dict[str, Any]:
        """Server liveness, queue depth, machine count."""
        return self._result(self.request("health"))

    def submit(
        self,
        job: str,
        total_cpu_seconds: float,
        *,
        cpu: float = 1.0,
        mem_mb: float = 64.0,
        checkpoint_interval_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one guest job for placement (protocol v5)."""
        params: dict[str, Any] = {
            "job": job,
            "total_cpu_seconds": total_cpu_seconds,
            "cpu": cpu,
            "mem_mb": mem_mb,
        }
        if checkpoint_interval_s is not None:
            params["checkpoint_interval_s"] = checkpoint_interval_s
        return self._result(self.request("submit", params))

    def job_status(self, job: str) -> dict[str, Any]:
        """Full record of one job, with clock-derived progress (v5)."""
        return self._result(self.request("job_status", {"job": job}))

    def cancel(self, job: str) -> dict[str, Any]:
        """Cancel one job; idempotent on terminal jobs (protocol v5)."""
        return self._result(self.request("cancel", {"job": job}))

    def jobs(self) -> dict[str, Any]:
        """All job records plus scheduler stats (protocol v5)."""
        return self._result(self.request("jobs"))

    def adapt_status(self, machine: str | None = None) -> dict[str, Any]:
        """Self-healing adapt tier state (protocol v8)."""
        params = {} if machine is None else {"machine": machine}
        return self._result(self.request("adapt_status", params))

    def adapt_retune(self, machine: str, *, trigger: str = "manual") -> dict[str, Any]:
        """Backtest candidate models for one machine (protocol v8)."""
        return self._result(
            self.request("adapt_retune", {"machine": machine, "trigger": trigger})
        )

    def adapt_promote(self, machine: str, *, force: bool = False) -> dict[str, Any]:
        """Promote the machine's shadow challenger (protocol v8)."""
        return self._result(
            self.request("adapt_promote", {"machine": machine, "force": force})
        )


class AsyncServeClient(_ConvenienceOps):
    """Asyncio JSON-lines client over one TCP connection.

    Construct via :meth:`connect`; the op methods mirror
    :class:`ServeClient` but are coroutines, and backpressure retries
    sleep with ``asyncio.sleep`` instead of blocking.  Connection-error
    retries (which reconnect first) need the server address, so they are
    available on clients built via :meth:`connect` but not on clients
    wrapped around an existing reader/writer pair.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._reader: asyncio.StreamReader | None = reader
        self._writer: asyncio.StreamWriter | None = writer
        self._host: str | None = None
        self._port: int | None = None
        self._ids = itertools.count(1)
        self._retries = int(retries)
        self._backoff_s = retry_backoff_s
        self._backoff_max_s = retry_backoff_max_s

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 2.0,
    ) -> "AsyncServeClient":
        """Open a connection and return a ready (reconnectable) client."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(
            reader,
            writer,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
            retry_backoff_max_s=retry_backoff_max_s,
        )
        client._host = host
        client._port = port
        return client

    async def _reconnect(self) -> None:
        if self._host is None or self._port is None:
            raise ConnectionError(
                "connection lost and this client was built from a raw "
                "reader/writer pair; use AsyncServeClient.connect() for "
                "reconnectable clients"
            )
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def _teardown(self) -> None:
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def request(
        self,
        op: str,
        params: Mapping[str, Any] | None = None,
        deadline_ms: float | None = None,
    ) -> Response:
        """Send one request; awaits it, retrying refusals if opted in.

        Backpressure responses are retried in place; connection errors
        reconnect (clients built via :meth:`connect`) before re-sending.
        """
        for attempt in itertools.count():
            try:
                if self._writer is None:
                    await self._reconnect()
                resp = await self._request_once(op, params, deadline_ms)
            except ConnectionError:
                await self._teardown()
                if attempt >= self._retries:
                    raise
                await asyncio.sleep(
                    _retry_delay(attempt, self._backoff_s, self._backoff_max_s)
                )
                continue
            if resp.status in BACKPRESSURE_STATUSES and attempt < self._retries:
                await asyncio.sleep(
                    _retry_delay(attempt, self._backoff_s, self._backoff_max_s)
                )
                continue
            return resp
        raise AssertionError("unreachable")  # pragma: no cover

    async def _request_once(
        self,
        op: str,
        params: Mapping[str, Any] | None,
        deadline_ms: float | None,
    ) -> Response:
        # Mirrors the sync client: ambient context → client.request span
        # whose child context rides the wire (contextvars follow the
        # current asyncio task, so concurrent requests stay separate).
        with start_span("client.request", "client", op=op) as sp:
            ctx = current_context()
            req = Request(
                op=op,
                params=params or {},
                id=f"q{next(self._ids)}",
                deadline_ms=deadline_ms,
                version=min_version(op),
                trace=None if ctx is None else ctx.to_wire(),
            )
            self._writer.write(req.encode())
            await self._writer.drain()
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-request")
            resp = Response.decode(line)
            if resp.id != req.id:
                raise ProtocolError(f"response id {resp.id!r} does not match {req.id!r}")
            if sp is not None:
                sp.set(status=resp.status)
            return resp

    # -- ops ------------------------------------------------------------- #

    async def predict(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        init_state: str | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        """TR of one machine over one clock window."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, init_state=init_state
        )
        return self._result(await self.request("predict", params, deadline_ms))["tr"]

    async def predict_batch(
        self,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        machines: list[str] | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, float]:
        """TR of many machines in one request (protocol v7)."""
        params = self._window_params(start_hour, hours, day_type, machines=machines)
        result = self._result(
            await self.request("predict_batch", params, deadline_ms)
        )
        return {p["machine"]: p["tr"] for p in result["predictions"]}

    async def fleet_scan(
        self,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        machines: list[str] | None = None,
        horizons_hours: list[float] | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Full fleet snapshot, best machine first (protocol v7)."""
        params = self._window_params(
            start_hour, hours, day_type,
            machines=machines, horizons_hours=horizons_hours,
        )
        return self._result(await self.request("fleet_scan", params, deadline_ms))

    async def rank(
        self, start_hour: float, hours: float, day_type: str = "weekday"
    ) -> list[dict[str, Any]]:
        """All machines sorted by TR, best first."""
        params = self._window_params(start_hour, hours, day_type)
        return self._result(await self.request("rank", params))["ranking"]

    async def select(
        self, start_hour: float, hours: float, day_type: str = "weekday", *, k: int = 1
    ) -> dict[str, Any]:
        """Best-k machines and their gang survival."""
        params = self._window_params(start_hour, hours, day_type, k=k)
        return self._result(await self.request("select", params))

    async def horizon(
        self,
        machine: str,
        start_hour: float,
        hours: float,
        day_type: str = "weekday",
        *,
        tr_threshold: float = 0.9,
    ) -> float:
        """Longest reliable job length (seconds) at the window start."""
        params = self._window_params(
            start_hour, hours, day_type, machine=machine, tr_threshold=tr_threshold
        )
        return self._result(await self.request("horizon", params))["horizon_seconds"]

    async def register(self, trace: Any) -> dict[str, Any]:
        """Register (or replace) one machine's history from a trace."""
        return self._result(await self.request("register", _trace_params(trace)))

    async def extend(self, chunk: Any) -> dict[str, Any]:
        """Stream a chunk of new samples for one machine (protocol v2)."""
        return self._result(await self.request("extend", _trace_params(chunk)))

    async def quality(self, machine: str | None = None) -> dict[str, Any]:
        """Prediction-audit scoreboard snapshots (protocol v3)."""
        params = {} if machine is None else {"machine": machine}
        return self._result(await self.request("quality", params))

    async def tail(self, machine: str, n: int = 10) -> dict[str, Any]:
        """Last ``n`` samples of one machine's history (protocol v6)."""
        return self._result(await self.request("tail", {"machine": machine, "n": n}))

    async def health(self) -> dict[str, Any]:
        """Server liveness, queue depth, machine count."""
        return self._result(await self.request("health"))

    async def submit(
        self,
        job: str,
        total_cpu_seconds: float,
        *,
        cpu: float = 1.0,
        mem_mb: float = 64.0,
        checkpoint_interval_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one guest job for placement (protocol v5)."""
        params: dict[str, Any] = {
            "job": job,
            "total_cpu_seconds": total_cpu_seconds,
            "cpu": cpu,
            "mem_mb": mem_mb,
        }
        if checkpoint_interval_s is not None:
            params["checkpoint_interval_s"] = checkpoint_interval_s
        return self._result(await self.request("submit", params))

    async def job_status(self, job: str) -> dict[str, Any]:
        """Full record of one job, with clock-derived progress (v5)."""
        return self._result(await self.request("job_status", {"job": job}))

    async def cancel(self, job: str) -> dict[str, Any]:
        """Cancel one job; idempotent on terminal jobs (protocol v5)."""
        return self._result(await self.request("cancel", {"job": job}))

    async def jobs(self) -> dict[str, Any]:
        """All job records plus scheduler stats (protocol v5)."""
        return self._result(await self.request("jobs"))

    async def adapt_status(self, machine: str | None = None) -> dict[str, Any]:
        """Self-healing adapt tier state (protocol v8)."""
        params = {} if machine is None else {"machine": machine}
        return self._result(await self.request("adapt_status", params))

    async def adapt_retune(
        self, machine: str, *, trigger: str = "manual"
    ) -> dict[str, Any]:
        """Backtest candidate models for one machine (protocol v8)."""
        return self._result(
            await self.request("adapt_retune", {"machine": machine, "trigger": trigger})
        )

    async def adapt_promote(
        self, machine: str, *, force: bool = False
    ) -> dict[str, Any]:
        """Promote the machine's shadow challenger (protocol v8)."""
        return self._result(
            await self.request("adapt_promote", {"machine": machine, "force": force})
        )
