"""Request dispatcher: coalescing, worker pool, admission control.

The dispatcher is the concurrency heart of the serving tier and is
deliberately transport-free: the asyncio server hands it decoded
:class:`~repro.serve.protocol.Request` objects and gets back
``concurrent.futures.Future`` objects resolving to
:class:`~repro.serve.protocol.Response`; tests and embedders can drive
it directly without a socket.

Three mechanisms keep a burst of schedulers from melting the predictor:

**Coalescing.**  Identical in-flight ``predict`` queries — same
``(machine, window, day type, init state)`` — share one computation.
The first request becomes the *primary* and occupies a worker slot;
followers attach a callback to the primary's computation future and
consume no queue depth and no worker time.  Follower responses are
marked ``coalesced`` so clients (and the bench) can observe the merge.

**Admission control.**  At most ``queue_depth`` requests may be
admitted-but-unanswered at once.  Requests beyond that are refused
immediately with a 503-style ``shed`` response — the caller learns in
microseconds that this replica is saturated, instead of waiting in an
unbounded queue (the classic overload failure mode).

**Deadlines.**  A request may carry ``deadline_ms``; if a worker reaches
it after the deadline passed, the computation is skipped and the client
gets ``deadline_exceeded``.  Expired work is the other half of overload
behavior: computing an answer nobody is waiting for anymore only steals
capacity from answerable requests.

Shutdown is a graceful drain: new work is refused with
``shutting_down`` while admitted requests finish (bounded by
``drain_timeout_s``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.states import State
from repro.core.windows import ClockWindow, DayType
from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.obs.tracing import TraceContext, record_span, start_span, use_context
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    STATUS_CLOSING,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_SHED,
    ProtocolError,
    Request,
    Response,
)
from repro.traces.trace import MachineTrace

__all__ = [
    "DispatchConfig",
    "Dispatcher",
    "DeadlineExceeded",
    "SchedulerDisabled",
    "AdaptDisabled",
]


class DeadlineExceeded(Exception):
    """The request's deadline passed before a worker reached it."""


class SchedulerDisabled(RuntimeError):
    """A v5 scheduling op reached a node running without a JobManager."""


class AdaptDisabled(RuntimeError):
    """A v8 adapt op reached a node running without an AdaptController."""


@dataclass(frozen=True)
class DispatchConfig:
    """Tuning knobs of one dispatcher instance."""

    #: Worker threads running CPU-bound kernel work.
    max_workers: int = 4
    #: Maximum admitted-but-unanswered requests before shedding.
    queue_depth: int = 64
    #: Deadline applied to requests that do not carry their own (None:
    #: requests without a deadline never expire).
    default_deadline_ms: float | None = None
    #: How long close(drain=True) waits for in-flight work.
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )


# ---------------------------------------------------------------------- #
# request parameter parsing
# ---------------------------------------------------------------------- #


def _require(params: Mapping[str, Any], key: str) -> Any:
    if key not in params:
        raise ProtocolError(f"missing required param {key!r}")
    return params[key]


def _parse_window(params: Mapping[str, Any]) -> tuple[ClockWindow, DayType]:
    window = ClockWindow.from_hours(
        float(_require(params, "start_hour")), float(_require(params, "hours"))
    )
    raw = params.get("day_type", DayType.WEEKDAY.value)
    try:
        dtype = DayType(raw)
    except ValueError:
        raise ProtocolError(
            f"unknown day_type {raw!r}; expected one of "
            f"{[d.value for d in DayType]}"
        ) from None
    return window, dtype


def _parse_init_state(params: Mapping[str, Any]) -> State | None:
    raw = params.get("init_state")
    if raw is None:
        return None
    try:
        return State[str(raw).upper()]
    except KeyError:
        raise ProtocolError(
            f"unknown init_state {raw!r}; expected one of {[s.name for s in State]}"
        ) from None


# ---------------------------------------------------------------------- #


class Dispatcher:
    """Executes requests against an ``AvailabilityService`` on a pool."""

    def __init__(
        self,
        service: Any,
        config: DispatchConfig | None = None,
        *,
        audit: Any | None = None,
        sched: Any | None = None,
        adapt: Any | None = None,
    ) -> None:
        self.service = service
        self.config = config or DispatchConfig()
        #: Optional PredictionAudit: journals served predict/horizon
        #: responses and resolves them as extend/register ingest samples.
        self.audit = audit
        #: Optional JobManager answering the v5 scheduling ops.
        self.sched = sched
        #: Optional AdaptController closing the audit's alarm loop (v8).
        self.adapt = adapt
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._inflight: dict[tuple, Future] = {}
        self._admitted = 0
        self._closing = False
        self._started = time.monotonic()
        # register mutates the service while queries read it; serialize
        # writers against each other (readers stay lock-free, see the
        # thread-safety notes in service.py / core/online.py).
        self._register_lock = threading.Lock()
        self._handlers: dict[str, Callable[[Mapping[str, Any]], Any]] = {
            "predict": self._op_predict,
            "predict_batch": self._op_predict_batch,
            "fleet_scan": self._op_fleet_scan,
            "rank": self._op_rank,
            "select": self._op_select,
            "horizon": self._op_horizon,
            "register": self._op_register,
            "extend": self._op_extend,
            "tail": self._op_tail,
            "quality": self._op_quality,
            "health": self._op_health,
            "submit": self._op_submit,
            "job_status": self._op_job_status,
            "cancel": self._op_cancel,
            "jobs": self._op_jobs,
            "replace": self._op_replace,
            "job_put": self._op_job_put,
            "adapt_status": self._op_adapt_status,
            "adapt_retune": self._op_adapt_retune,
            "adapt_promote": self._op_adapt_promote,
        }

    # ------------------------------------------------------------------ #
    # submission path
    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> "Future[Response]":
        """Admit one request; the future resolves to its response.

        The future always resolves to a :class:`Response` — errors,
        sheds and deadline expirations are response statuses, never
        exceptions on the future.
        """
        t0 = time.perf_counter()
        out: Future[Response] = Future()
        out.set_running_or_notify_cancel()

        # health answers inline: it is O(1), must work under overload
        # (it is how operators see the overload), and during drain.
        if request.op == "health":
            self._finish_value(out, request, t0, self._op_health(request.params))
            return out

        # Bookkeeping happens under the lock; callbacks are attached only
        # after releasing it, because add_done_callback on an
        # already-finished future runs the callback inline in *this*
        # thread — which must therefore not be holding the lock the
        # callbacks acquire.
        key = self._coalesce_key(request)
        primary: Future | None = None
        with self._lock:
            if self._closing:
                self._refuse(out, request, t0, STATUS_CLOSING)
                return out
            if key is not None:
                primary = self._inflight.get(key)
            if primary is None:
                if self._admitted >= self.config.queue_depth:
                    instrument("serve_shed_total").inc()
                    self._refuse(out, request, t0, STATUS_SHED)
                    return out
                self._admitted += 1
                instrument("serve_queue_depth").set(self._admitted)
                deadline_ms = (
                    request.deadline_ms
                    if request.deadline_ms is not None
                    else self.config.default_deadline_ms
                )
                expires = (
                    None if deadline_ms is None
                    else time.monotonic() + deadline_ms / 1e3
                )
                comp = self._executor.submit(
                    self._execute, request, expires, time.time()
                )
                if key is not None:
                    self._inflight[key] = comp
        if primary is not None:
            instrument("serve_coalesced_requests_total").inc()
            primary.add_done_callback(
                lambda f: self._finish(out, request, t0, f, coalesced=True)
            )
            return out
        if key is not None:
            comp.add_done_callback(lambda f, k=key: self._forget(k, f))
        comp.add_done_callback(lambda f: self._release())
        comp.add_done_callback(
            lambda f: self._finish(out, request, t0, f, coalesced=False)
        )
        return out

    def _coalesce_key(self, request: Request) -> tuple | None:
        """The identity under which a request may share a computation."""
        if request.op != "predict":
            return None
        p = request.params
        return (
            "predict",
            p.get("machine"),
            p.get("start_hour"),
            p.get("hours"),
            p.get("day_type", DayType.WEEKDAY.value),
            p.get("init_state"),
        )

    @staticmethod
    def _trace_context(request: Request) -> TraceContext | None:
        """The request's wire trace context, or None when untraced."""
        if request.trace is None:
            return None
        try:
            return TraceContext.from_wire(request.trace)
        except ValueError:
            return None

    @staticmethod
    def _check_deadline(request: Request, expires: float | None) -> None:
        if expires is not None and time.monotonic() > expires:
            raise DeadlineExceeded(
                f"deadline passed before a worker reached op {request.op!r}"
            )

    def _execute(self, request: Request, expires: float | None, submitted: float) -> Any:
        ctx = self._trace_context(request)
        if ctx is None:
            self._check_deadline(request, expires)
            return self._handlers[request.op](request.params)
        # contextvars do not cross into pool threads, so the worker
        # re-activates the wire context explicitly.  Queue wait (submit
        # → worker pickup) already happened; record it retroactively as
        # a sibling of the compute span.
        record_span(
            "dispatch.queue_wait", "serve", context=ctx.child(),
            start=submitted, duration_s=time.time() - submitted, op=request.op,
        )
        with use_context(ctx), start_span("dispatch.compute", "serve", op=request.op):
            self._check_deadline(request, expires)
            return self._handlers[request.op](request.params)

    # -- completion plumbing -------------------------------------------- #

    def _forget(self, key: tuple, _f: Future) -> None:
        with self._lock:
            if self._inflight.get(key) is _f:
                del self._inflight[key]

    def _release(self) -> None:
        with self._lock:
            self._admitted -= 1
            instrument("serve_queue_depth").set(self._admitted)
            if self._admitted == 0:
                self._drained.notify_all()

    def _refuse(self, out: Future, request: Request, t0: float, status: str) -> None:
        message = (
            "server is shutting down; no new work accepted"
            if status == STATUS_CLOSING
            else f"admission queue full ({self.config.queue_depth} in flight); retry later"
        )
        self._finish_response(
            out,
            request,
            Response.failure(
                request.id, status, "Overload", message,
                elapsed_ms=(time.perf_counter() - t0) * 1e3,
            ),
        )

    def _finish_value(self, out: Future, request: Request, t0: float, value: Any) -> None:
        self._finish_response(
            out,
            request,
            Response.success(
                request.id, value, elapsed_ms=(time.perf_counter() - t0) * 1e3
            ),
        )

    def _finish(
        self, out: Future, request: Request, t0: float, comp: Future, *, coalesced: bool
    ) -> None:
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        if coalesced:
            ctx = self._trace_context(request)
            if ctx is not None:
                # The follower never ran: its whole latency was waiting
                # for the primary's computation to land.
                record_span(
                    "dispatch.coalesced_join", "serve", context=ctx.child(),
                    start=time.time() - elapsed_ms / 1e3,
                    duration_s=elapsed_ms / 1e3, op=request.op,
                )
        exc = comp.exception()
        if exc is None:
            resp = Response.success(
                request.id, comp.result(), coalesced=coalesced, elapsed_ms=elapsed_ms
            )
        elif isinstance(exc, DeadlineExceeded):
            resp = Response.failure(
                request.id, STATUS_DEADLINE, "DeadlineExceeded", str(exc),
                coalesced=coalesced, elapsed_ms=elapsed_ms,
            )
        else:
            resp = Response.failure(
                request.id, STATUS_ERROR, type(exc).__name__, str(exc),
                coalesced=coalesced, elapsed_ms=elapsed_ms,
            )
        self._finish_response(out, request, resp)

    def _finish_response(self, out: Future, request: Request, resp: Response) -> None:
        instrument("serve_requests_total").labels(op=request.op, status=resp.status).inc()
        if resp.elapsed_ms is not None:
            instrument("serve_request_latency_seconds").labels(op=request.op).observe(
                resp.elapsed_ms / 1e3
            )
        out.set_result(resp)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def admitted(self) -> int:
        """Requests currently admitted but unanswered."""
        with self._lock:
            return self._admitted

    @property
    def closing(self) -> bool:
        """True once close() started; new work is being refused."""
        with self._lock:
            return self._closing

    def close(self, *, drain: bool = True) -> bool:
        """Stop accepting work; optionally wait for in-flight requests.

        Returns True when every admitted request finished before the
        drain timeout (vacuously True for ``drain=False``).
        """
        with self._lock:
            self._closing = True
            ok = True
            if drain:
                deadline = time.monotonic() + self.config.drain_timeout_s
                while self._admitted > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        ok = False
                        break
                    self._drained.wait(remaining)
        self._executor.shutdown(wait=drain and ok)
        if self.audit is not None:
            # After the drain no worker is journaling; flush so a restart
            # recovers the full audit trail with no torn tail.
            self.audit.close()
        if self.sched is not None:
            # Same contract for the scheduler WAL: every acknowledged
            # transition must be replayable after restart.
            self.sched.close()
        return ok

    # ------------------------------------------------------------------ #
    # op handlers (run on worker threads)
    # ------------------------------------------------------------------ #

    def _op_predict(self, params: Mapping[str, Any]) -> dict[str, Any]:
        machine = str(_require(params, "machine"))
        window, dtype = _parse_window(params)
        init_state = _parse_init_state(params)
        tr = self.service.predict(machine, window, dtype, init_state=init_state)
        if self.adapt is None:
            self._journal("predict", machine, window, dtype, tr, init_state)
            return {"machine": machine, "tr": tr}
        # The adapt tier may substitute the calibrated fallback; what is
        # journaled (and therefore scored) is what the client received.
        served, source = self._adapt_serve(machine, window, dtype, tr)
        self._journal("predict", machine, window, dtype, served, init_state)
        self._adapt_shadow("predict", machine, window, dtype, init_state)
        result = {"machine": machine, "tr": served}
        if source != "model":
            result["source"] = source
        return result

    def _parse_machines(self, params: Mapping[str, Any]) -> list[str] | None:
        """The validated ``machines`` list of a fleet op (None = all).

        ``missing_ok`` (the cluster router sets it on scatter, since each
        shard owns only a subset) drops unknown ids instead of erroring.
        """
        raw = params.get("machines")
        if raw is None:
            return None
        if not isinstance(raw, (list, tuple)):
            raise ProtocolError(
                f"'machines' must be a list, got {type(raw).__name__}"
            )
        machines = [str(m) for m in raw]
        if bool(params.get("missing_ok", False)):
            return [m for m in machines if m in self.service]
        unknown = sorted(m for m in machines if m not in self.service)
        if unknown:
            raise ProtocolError(
                f"machines not registered: {', '.join(unknown)}"
            )
        return machines

    def _op_predict_batch(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """TR for many machines in one stacked solve (protocol v7)."""
        window, dtype = _parse_window(params)
        machines = self._parse_machines(params)
        if machines is not None and not machines:
            return {"predictions": [], "count": 0}
        trs = self.service.predict_batch(machines, window, dtype)
        return {
            "predictions": [
                {"machine": m, "tr": float(trs[m])} for m in sorted(trs)
            ],
            "count": len(trs),
        }

    def _op_fleet_scan(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Full fleet snapshot: TR, failure split, sub-horizon TRs (v7)."""
        window, dtype = _parse_window(params)
        machines = self._parse_machines(params)
        horizons = params.get("horizons_hours")
        if horizons is not None:
            if not isinstance(horizons, (list, tuple)):
                raise ProtocolError(
                    f"'horizons_hours' must be a list, got {type(horizons).__name__}"
                )
            horizons = [float(h) for h in horizons]
            for h in horizons:
                if h <= 0:
                    raise ProtocolError(
                        f"horizons_hours entries must be positive, got {h}"
                    )
        if machines is not None and not machines:
            return {"machines": [], "count": 0, "horizons_hours": horizons or []}
        scan = self.service.fleet_scan(window, dtype, machines=machines)
        entries = []
        for i, mid in enumerate(scan.machine_ids):
            entry: dict[str, Any] = {
                "machine": mid,
                "tr": float(scan.tr[i]),
                "fail": {
                    "s3": float(scan.fail[i, 0]),
                    "s4": float(scan.fail[i, 1]),
                    "s5": float(scan.fail[i, 2]),
                },
                "init_state": f"S{int(scan.init_states[i])}",
            }
            if horizons:
                entry["tr_at"] = [
                    float(scan.tr_at(mid, h * 3600.0)) for h in horizons
                ]
            entries.append(entry)
        entries.sort(key=lambda e: (-e["tr"], e["machine"]))
        return {
            "machines": entries,
            "count": len(entries),
            "horizons_hours": horizons or [],
        }

    def _op_rank(self, params: Mapping[str, Any]) -> dict[str, Any]:
        window, dtype = _parse_window(params)
        ranking = self.service.rank(window, dtype)
        return {"ranking": [{"machine": r.machine_id, "tr": r.tr} for r in ranking]}

    def _op_select(self, params: Mapping[str, Any]) -> dict[str, Any]:
        window, dtype = _parse_window(params)
        k = int(params.get("k", 1))
        machines, survival = self.service.select(window, dtype, k=k)
        return {"machines": machines, "survival": survival, "k": k}

    def _op_horizon(self, params: Mapping[str, Any]) -> dict[str, Any]:
        machine = str(_require(params, "machine"))
        window, dtype = _parse_window(params)
        threshold = float(params.get("tr_threshold", 0.9))
        seconds = self.service.reliable_horizon(
            machine, window, dtype, tr_threshold=threshold
        )
        if seconds > 0:
            # The horizon response claims "this window prefix survives
            # with probability >= threshold" — journal exactly that claim.
            self._journal(
                "horizon",
                machine,
                ClockWindow(start=window.start, duration=seconds),
                dtype,
                threshold,
                None,
            )
        return {"machine": machine, "horizon_seconds": seconds, "tr_threshold": threshold}

    def _op_register(self, params: Mapping[str, Any]) -> dict[str, Any]:
        trace = self._parse_trace(params)
        with self._register_lock:
            replaced = trace.machine_id in self.service
            self.service.register(trace)
            self._observe_ingest(trace.machine_id, trace)
        return {
            "machine": trace.machine_id,
            "n_samples": trace.n_samples,
            "replaced": replaced,
        }

    def _op_extend(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Stream a chunk of new samples for one machine (protocol v2).

        Unlike ``register`` (which replaces the whole history and drops
        its caches), ``extend`` grows the history in place, keeps the
        per-day caches, and — when the service has a backing store —
        persists the chunk before acknowledging.  Overlapping retries
        are trimmed, so at-least-once delivery is safe.
        """
        chunk = self._parse_trace(params)
        with self._register_lock:
            before = (
                self.service._histories[chunk.machine_id].n_samples
                if chunk.machine_id in self.service
                else 0
            )
            grown = self.service.append_samples(chunk)
            self._observe_ingest(chunk.machine_id, grown)
        return {
            "machine": chunk.machine_id,
            "appended": grown.n_samples - before,
            "n_samples": grown.n_samples,
            "created": before == 0,
        }

    def _op_tail(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Last N samples of one machine's history (protocol v6).

        The read-your-writes check of the live-ingestion pipeline: a
        monitor agent (or operator) confirms what the service holds
        without touching the store files.  Read-only, so it shares the
        query path's lock-free access to the registry.
        """
        machine = str(_require(params, "machine"))
        n = int(params.get("n", 10))
        if n < 0:
            raise ProtocolError(f"n must be >= 0, got {n}")
        history = self.service._histories.get(machine)
        if history is None:
            raise ProtocolError(f"machine {machine!r} is not registered")
        lo = max(0, history.n_samples - n)
        times = history.start_time + history.sample_period * np.arange(
            lo, history.n_samples
        )
        return {
            "machine": machine,
            "n_samples": history.n_samples,
            "start_time": history.start_time,
            "end_time": history.end_time,
            "sample_period": history.sample_period,
            "samples": [
                {
                    "time": float(t),
                    "load": float(ld),
                    "free_mem_mb": float(fm),
                    "up": bool(u),
                }
                for t, ld, fm, u in zip(
                    times,
                    history.load[lo:],
                    history.free_mem_mb[lo:],
                    history.up[lo:],
                )
            ],
        }

    @staticmethod
    def _parse_trace(params: Mapping[str, Any]) -> MachineTrace:
        load = _require(params, "load")
        # A trace that omits memory samples is treated as memory-
        # unconstrained; 0.0 would classify every sample as
        # resource-unavailable (S4) and silently pin TR to zero.
        free_mem_mb = params.get("free_mem_mb")
        if free_mem_mb is None:
            free_mem_mb = [float("inf")] * len(load)
        return MachineTrace(
            machine_id=str(_require(params, "machine")),
            start_time=float(params.get("start_time", 0.0)),
            sample_period=float(_require(params, "sample_period")),
            load=load,
            free_mem_mb=free_mem_mb,
            up=params.get("up"),
        )

    def _op_quality(self, params: Mapping[str, Any]) -> dict[str, Any]:
        if self.audit is None:
            return {"enabled": False}
        machine = params.get("machine")
        return self.audit.quality(machine=None if machine is None else str(machine))

    def _op_health(self, params: Mapping[str, Any]) -> dict[str, Any]:
        health = {
            "status": "draining" if self.closing else "ok",
            "protocol_version": PROTOCOL_VERSION,
            "machines": len(self.service),
            "queue_depth": self.admitted,
            "queue_limit": self.config.queue_depth,
            "workers": self.config.max_workers,
            "audit": self.audit is not None,
            "sched": self.sched is not None,
            "uptime_seconds": time.monotonic() - self._started,
        }
        if self.adapt is not None:
            health["adapt"] = True
        return health

    # -- scheduling ops (protocol v5) ------------------------------------ #

    def _require_sched(self) -> Any:
        if self.sched is None:
            raise SchedulerDisabled(
                "this node runs without a JobManager (serve without scheduling); "
                "scheduling ops are unavailable"
            )
        return self.sched

    def _op_submit(self, params: Mapping[str, Any]) -> dict[str, Any]:
        sched = self._require_sched()
        job_id = str(_require(params, "job"))
        total = float(_require(params, "total_cpu_seconds"))
        interval = params.get("checkpoint_interval_s")
        return sched.submit(
            job_id,
            total_cpu_seconds=total,
            cpu=float(params.get("cpu", 1.0)),
            mem_mb=float(params.get("mem_mb", 64.0)),
            checkpoint_interval_s=None if interval is None else float(interval),
        )

    def _op_job_status(self, params: Mapping[str, Any]) -> dict[str, Any]:
        sched = self._require_sched()
        job_id = str(_require(params, "job"))
        try:
            return sched.status(job_id)
        except KeyError:
            raise ProtocolError(f"unknown job {job_id!r}") from None

    def _op_cancel(self, params: Mapping[str, Any]) -> dict[str, Any]:
        sched = self._require_sched()
        job_id = str(_require(params, "job"))
        try:
            return sched.cancel(job_id)
        except KeyError:
            raise ProtocolError(f"unknown job {job_id!r}") from None

    def _op_jobs(self, params: Mapping[str, Any]) -> dict[str, Any]:
        sched = self._require_sched()
        return {"jobs": sched.list_jobs(), "stats": sched.stats()}

    def _op_replace(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Re-place jobs off dead machines (router broadcast, internal)."""
        sched = self._require_sched()
        machines = [str(m) for m in _require(params, "machines")]
        return sched.replace(
            machines,
            reason=str(params.get("reason", "node_down")),
            restore=bool(params.get("restore", False)),
        )

    def _op_job_put(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Adopt a replicated job record (router write fan-out, internal)."""
        sched = self._require_sched()
        return sched.adopt(_require(params, "record"))

    # -- self-healing adapt ops (protocol v8) ----------------------------- #

    def _require_adapt(self) -> Any:
        if self.adapt is None:
            raise AdaptDisabled(
                "this node runs without an AdaptController (serve without "
                "--adapt); adapt ops are unavailable"
            )
        return self.adapt

    def _op_adapt_status(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Adapt-tier state; answers even when the tier is disabled so
        the cluster router can scatter it to mixed fleets."""
        if self.adapt is None:
            return {"enabled": False}
        machine = params.get("machine")
        return self.adapt.status(None if machine is None else str(machine))

    def _op_adapt_retune(self, params: Mapping[str, Any]) -> dict[str, Any]:
        adapt = self._require_adapt()
        machine = str(_require(params, "machine"))
        if machine not in self.service:
            raise ProtocolError(f"machine {machine!r} is not registered")
        return adapt.retune(machine, trigger=str(params.get("trigger", "manual")))

    def _op_adapt_promote(self, params: Mapping[str, Any]) -> dict[str, Any]:
        adapt = self._require_adapt()
        machine = str(_require(params, "machine"))
        if machine not in self.service:
            raise ProtocolError(f"machine {machine!r} is not registered")
        return adapt.promote(machine, force=bool(params.get("force", False)))

    def _adapt_serve(
        self, machine: str, window: ClockWindow, dtype: DayType, tr: float
    ) -> tuple[float, str]:
        """Let the adapt tier substitute the calibrated fallback.

        A bug in the fallback path must never fail the predict the
        client is waiting on: serve the model value instead.
        """
        try:
            return self.adapt.serve_value(machine, window, dtype, tr)
        except Exception as exc:
            get_event_log().emit(
                "adapt_error", severity="error", op="serve_value",
                machine=machine, error=f"{type(exc).__name__}: {exc}",
            )
            return tr, "model"

    def _adapt_shadow(
        self,
        op: str,
        machine: str,
        window: ClockWindow,
        dtype: DayType,
        init_state: State | None,
    ) -> None:
        """Journal the challenger's shadow prediction, if one is trialing."""
        try:
            self.adapt.observe_served(
                op, machine, window, dtype, init_state=init_state
            )
        except Exception as exc:
            get_event_log().emit(
                "adapt_error", severity="error", op="shadow",
                machine=machine, error=f"{type(exc).__name__}: {exc}",
            )

    # -- audit plumbing -------------------------------------------------- #

    def _journal(
        self,
        op: str,
        machine: str,
        window: ClockWindow,
        dtype: DayType,
        probability: float,
        init_state: State | None,
    ) -> None:
        """Record one served response in the prediction audit.

        Coalesced followers share the primary's computation, so each
        distinct computation is journaled exactly once.  An audit bug
        must not fail the response the client is waiting on — it is
        reported as an event instead.
        """
        if self.audit is None:
            return
        history = self.service._histories.get(machine)
        if history is None:
            return
        try:
            with start_span("audit.journal", "audit", op=op, machine=machine):
                self.audit.record_prediction(
                    op, machine, window, dtype, probability,
                    history_end=history.end_time, init_state=init_state,
                )
        except Exception as exc:
            get_event_log().emit(
                "audit_error", severity="error", op=op,
                machine=machine, error=f"{type(exc).__name__}: {exc}",
            )

    def _observe_ingest(self, machine: str, history: MachineTrace) -> None:
        if self.audit is None:
            return
        try:
            resolutions = self.audit.observe_ingest(machine, history)
        except Exception as exc:
            get_event_log().emit(
                "audit_error", severity="error", op="resolve",
                machine=machine, error=f"{type(exc).__name__}: {exc}",
            )
            return
        if self.adapt is None:
            return
        try:
            # Resolutions feed the champion/challenger trial and — via
            # the drift detector's per-machine alarms — auto-retunes.
            self.adapt.on_ingest(machine, history, resolutions)
        except Exception as exc:
            get_event_log().emit(
                "adapt_error", severity="error", op="on_ingest",
                machine=machine, error=f"{type(exc).__name__}: {exc}",
            )
