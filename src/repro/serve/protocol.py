"""Wire protocol of the serving tier: JSON lines, versioned op set.

One request per line, one response per line, both UTF-8 JSON objects —
the simplest protocol a scheduler written in any language can speak
with nothing but a socket and a JSON parser.  Requests carry a protocol
version so the op set can evolve without breaking deployed clients; a
server that does not understand a request answers with a structured
error response instead of dropping the connection.

Request wire form::

    {"v": 1, "id": "c1-17", "op": "predict",
     "params": {"machine": "lab-03", "start_hour": 9, "hours": 5,
                "day_type": "weekday"},
     "deadline_ms": 250,
     "trace": {"trace_id": "…", "span_id": "…"}}   # optional, v4

The ``trace`` field is the distributed-tracing envelope (protocol v4):
requests carrying it produce per-tier spans server-side; peers that
predate v4 ignore the key, so traced clients interoperate with old
servers unchanged.

Response wire form::

    {"v": 1, "id": "c1-17", "status": "ok", "result": {"tr": 0.93},
     "coalesced": false, "elapsed_ms": 1.8}

``status`` is ``ok`` or one of the failure codes in :data:`STATUSES`;
``shed`` and ``shutting_down`` are the 503-style answers of admission
control — the :class:`~repro.cluster.router.ClusterRouter` reacts by
failing the request over to another replica of the shard, and a
directly-connected client retries later (``retries=`` on the clients) —
``deadline_exceeded`` means the request was admitted but expired before
a worker reached it.

This module is wire format only — no sockets, no service logic — so
both the asyncio server and the sync/async clients share one source of
truth for encoding and validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "OPS",
    "OPS_BY_VERSION",
    "min_version",
    "STATUSES",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_SHED",
    "STATUS_DEADLINE",
    "STATUS_CLOSING",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "Response",
]

#: Current protocol version; bump when an op's contract changes.
#: v1: predict/rank/select/horizon/register/health.
#: v2: adds ``extend`` (stream a chunk of new samples for one machine).
#: v3: adds ``quality`` (prediction-audit scoreboard snapshots).
#: v4: adds the optional ``trace`` envelope field (distributed-tracing
#:     context).  No new ops; the field may ride a request at *any*
#:     version — pre-v4 servers decode with ``from_wire``, which ignores
#:     unknown keys, so the envelope degrades silently on old peers.
#: v5: adds the scheduling ops — ``submit``/``job_status``/``cancel``/
#:     ``jobs`` for clients, plus the internal ``replace`` (node-death
#:     re-placement broadcast) and ``job_put`` (job-record replication)
#:     the cluster router uses.  A v4-or-older client sending any of
#:     them gets the structured unsupported-version error.
#: v6: adds ``tail`` (read the last N samples of one machine's history)
#:     — the observability end of the live-ingestion pipeline: a monitor
#:     agent (or an operator) verifies what the service actually holds
#:     without racing the store files on disk.
#: v7: adds the fleet batch ops — ``predict_batch`` (TR for many
#:     machines in one request, served by one stacked Eq.-3 solve) and
#:     ``fleet_scan`` (the full per-machine snapshot: TR, failure split,
#:     optional sub-horizon TRs).  Replaces N scalar predicts for
#:     rank/select-style consumers; a v6-or-older client sending either
#:     gets the structured unsupported-version error.
#: v8: adds the self-healing adapt ops — ``adapt_status`` (per-machine
#:     retune/trial/fallback state; the router scatter-merges it),
#:     ``adapt_retune`` (backtest the candidate grid for one machine and
#:     open a shadow trial when a candidate wins) and ``adapt_promote``
#:     (install the machine's challenger; margin-gated unless forced).
#:     A v7-or-older client sending any of them gets the structured
#:     unsupported-version error.
PROTOCOL_VERSION = 8

#: The op set introduced by each protocol version.  A server validates a
#: request's op against the *request's* version, so an old client is
#: never answered with an op it cannot know about, and a new client
#: talking to an old server gets a structured "unsupported version"
#: error rather than a dropped connection.
OPS_BY_VERSION: dict[int, frozenset[str]] = {
    1: frozenset({"predict", "rank", "select", "horizon", "register", "health"}),
}
OPS_BY_VERSION[2] = OPS_BY_VERSION[1] | {"extend"}
OPS_BY_VERSION[3] = OPS_BY_VERSION[2] | {"quality"}
OPS_BY_VERSION[4] = OPS_BY_VERSION[3]  # v4 adds the trace envelope, no ops
OPS_BY_VERSION[5] = OPS_BY_VERSION[4] | {
    "submit",
    "job_status",
    "cancel",
    "jobs",
    "replace",
    "job_put",
}
OPS_BY_VERSION[6] = OPS_BY_VERSION[5] | {"tail"}
OPS_BY_VERSION[7] = OPS_BY_VERSION[6] | {"predict_batch", "fleet_scan"}
OPS_BY_VERSION[8] = OPS_BY_VERSION[7] | {
    "adapt_status",
    "adapt_retune",
    "adapt_promote",
}

#: Versions this build can answer.
SUPPORTED_VERSIONS: frozenset[int] = frozenset(OPS_BY_VERSION)

#: The full op set of the current version.
OPS: frozenset[str] = OPS_BY_VERSION[PROTOCOL_VERSION]


def min_version(op: str) -> int:
    """The lowest protocol version that includes ``op``.

    Clients send each request at this version so they stay compatible
    with older servers for ops those servers already speak.
    """
    for version in sorted(OPS_BY_VERSION):
        if op in OPS_BY_VERSION[version]:
            return version
    raise ProtocolError(
        f"unknown op {op!r}; v{PROTOCOL_VERSION} ops: {', '.join(sorted(OPS))}"
    )

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_SHED = "shed"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_CLOSING = "shutting_down"

#: Every status a response may carry.
STATUSES: frozenset[str] = frozenset(
    {STATUS_OK, STATUS_ERROR, STATUS_SHED, STATUS_DEADLINE, STATUS_CLOSING}
)

#: Statuses that mean "the server refused work it was offered" — safe to
#: retry elsewhere/later, no computation happened.
BACKPRESSURE_STATUSES: frozenset[str] = frozenset({STATUS_SHED, STATUS_CLOSING})

#: Upper bound on one request/response line.  Generous enough for a
#: register op shipping a multi-week trace, small enough to stop a
#: malformed client from ballooning server memory.
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A request (or response) that violates the wire contract."""


def _encode(obj: Mapping[str, Any]) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def _decode_line(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    return obj


@dataclass(frozen=True)
class Request:
    """One client request."""

    op: str
    params: Mapping[str, Any] = field(default_factory=dict)
    id: str = ""
    deadline_ms: float | None = None
    version: int = PROTOCOL_VERSION
    #: Optional distributed-tracing context (v4 envelope).  Kept as the
    #: raw wire mapping — this module stays pure wire format; the obs
    #: layer parses it into a ``TraceContext``.  Absent (None) on
    #: untraced requests, so a v3 peer round-trips byte-identically.
    trace: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                f"unsupported protocol version {self.version!r} "
                f"(this build speaks v1..v{PROTOCOL_VERSION})"
            )
        version_ops = OPS_BY_VERSION[self.version]
        if self.op not in version_ops:
            if self.op in OPS:
                raise ProtocolError(
                    f"op {self.op!r} requires protocol v{min_version(self.op)}, "
                    f"request declared v{self.version}"
                )
            raise ProtocolError(
                f"unknown op {self.op!r}; v{self.version} ops: "
                f"{', '.join(sorted(version_ops))}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ProtocolError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.trace is not None:
            if not isinstance(self.trace, Mapping):
                raise ProtocolError(
                    f"'trace' must be an object, got {type(self.trace).__name__}"
                )
            if not self.trace.get("trace_id") or not self.trace.get("span_id"):
                raise ProtocolError(
                    "'trace' needs non-empty trace_id and span_id"
                )

    def to_wire(self) -> dict[str, Any]:
        """The JSON-serializable wire object."""
        obj: dict[str, Any] = {"v": self.version, "id": self.id, "op": self.op}
        if self.params:
            obj["params"] = dict(self.params)
        if self.deadline_ms is not None:
            obj["deadline_ms"] = self.deadline_ms
        if self.trace is not None:
            obj["trace"] = dict(self.trace)
        return obj

    def encode(self) -> bytes:
        """One wire line (JSON + newline)."""
        return _encode(self.to_wire())

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "Request":
        """Validate and build a request from a decoded wire object."""
        if "op" not in obj:
            raise ProtocolError("request is missing 'op'")
        params = obj.get("params", {})
        if not isinstance(params, Mapping):
            raise ProtocolError(f"'params' must be an object, got {type(params).__name__}")
        deadline = obj.get("deadline_ms")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ProtocolError(f"'deadline_ms' must be a number, got {deadline!r}")
        trace = obj.get("trace")
        if trace is not None and not isinstance(trace, Mapping):
            raise ProtocolError(f"'trace' must be an object, got {type(trace).__name__}")
        return cls(
            op=str(obj["op"]),
            params=params,
            id=str(obj.get("id", "")),
            deadline_ms=None if deadline is None else float(deadline),
            version=int(obj.get("v", PROTOCOL_VERSION)),
            trace=trace,
        )

    @classmethod
    def decode(cls, line: bytes | str) -> "Request":
        """Parse one wire line into a request."""
        return cls.from_wire(_decode_line(line))


@dataclass(frozen=True)
class Response:
    """One server response."""

    id: str
    status: str
    result: Any = None
    error: Mapping[str, str] | None = None
    coalesced: bool = False
    elapsed_ms: float | None = None
    version: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ProtocolError(
                f"unknown status {self.status!r}; expected one of {sorted(STATUSES)}"
            )

    @property
    def ok(self) -> bool:
        """True when the request succeeded."""
        return self.status == STATUS_OK

    @property
    def backpressure(self) -> bool:
        """True when the server refused the work (shed / shutting down)."""
        return self.status in BACKPRESSURE_STATUSES

    # -- construction helpers ------------------------------------------- #

    @classmethod
    def success(
        cls,
        request_id: str,
        result: Any,
        *,
        coalesced: bool = False,
        elapsed_ms: float | None = None,
    ) -> "Response":
        """An ``ok`` response carrying ``result``."""
        return cls(
            id=request_id,
            status=STATUS_OK,
            result=result,
            coalesced=coalesced,
            elapsed_ms=elapsed_ms,
        )

    @classmethod
    def failure(
        cls,
        request_id: str,
        status: str,
        error_type: str,
        message: str,
        *,
        coalesced: bool = False,
        elapsed_ms: float | None = None,
    ) -> "Response":
        """A non-``ok`` response with a structured error."""
        return cls(
            id=request_id,
            status=status,
            error={"type": error_type, "message": message},
            coalesced=coalesced,
            elapsed_ms=elapsed_ms,
        )

    # -- wire form ------------------------------------------------------- #

    def to_wire(self) -> dict[str, Any]:
        """The JSON-serializable wire object."""
        obj: dict[str, Any] = {"v": self.version, "id": self.id, "status": self.status}
        if self.result is not None:
            obj["result"] = self.result
        if self.error is not None:
            obj["error"] = dict(self.error)
        if self.coalesced:
            obj["coalesced"] = True
        if self.elapsed_ms is not None:
            obj["elapsed_ms"] = round(self.elapsed_ms, 3)
        return obj

    def encode(self) -> bytes:
        """One wire line (JSON + newline)."""
        return _encode(self.to_wire())

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "Response":
        """Validate and build a response from a decoded wire object."""
        if "status" not in obj:
            raise ProtocolError("response is missing 'status'")
        error = obj.get("error")
        if error is not None and not isinstance(error, Mapping):
            raise ProtocolError(f"'error' must be an object, got {type(error).__name__}")
        return cls(
            id=str(obj.get("id", "")),
            status=str(obj["status"]),
            result=obj.get("result"),
            error=error,
            coalesced=bool(obj.get("coalesced", False)),
            elapsed_ms=obj.get("elapsed_ms"),
            version=int(obj.get("v", PROTOCOL_VERSION)),
        )

    @classmethod
    def decode(cls, line: bytes | str) -> "Response":
        """Parse one wire line into a response."""
        return cls.from_wire(_decode_line(line))
