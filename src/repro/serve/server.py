"""Asyncio JSON-lines TCP server wrapping an ``AvailabilityService``.

The event loop does I/O and framing only; every decoded request is
handed to the :class:`~repro.serve.dispatch.Dispatcher`, whose worker
threads run the CPU-bound kernel math.  Responses are written back on
the request's connection as they complete, so one connection may have
many requests in flight (pipelining) and a slow query never blocks a
fast one — per-connection response order is completion order, which is
why every request carries an ``id`` for the client to match on.

Malformed input is answered, not punished: an undecodable line or an
unknown op yields a structured ``error`` response and the connection
stays open.  Only a line exceeding the protocol's size bound closes the
connection (the stream is no longer trustworthy at that point).

Shutdown (:meth:`ServeServer.stop`) is a graceful drain — the listening
socket closes first, then the dispatcher refuses new work while
in-flight requests finish, then connections are closed.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.serve.dispatch import DispatchConfig, Dispatcher
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    STATUS_ERROR,
    ProtocolError,
    Request,
    Response,
)

__all__ = ["ServeServer"]


class ServeServer:
    """One listening socket in front of one dispatcher."""

    def __init__(
        self,
        service: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: DispatchConfig | None = None,
        audit: Any | None = None,
        sched: Any | None = None,
        adapt: Any | None = None,
    ) -> None:
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.dispatcher = Dispatcher(
            service, config, audit=audit, sched=sched, adapt=adapt
        )
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        get_event_log().emit("serve_started", host=self.host, port=self.port)

    async def stop(self, *, drain: bool = True) -> bool:
        """Graceful shutdown; returns True when the drain completed."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.dispatcher.close(drain=drain)
        )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        get_event_log().emit("serve_stopped", drained=drained)
        return drained

    async def serve_forever(self) -> None:
        """Run until cancelled (start() must have been called)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        conn_gauge = instrument("serve_connections_open")
        conn_gauge.inc()
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: the framing is broken beyond repair.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                t = asyncio.ensure_future(self._answer(line, writer, write_lock))
                pending.add(t)
                t.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for t in pending:
                t.cancel()
            conn_gauge.dec()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _answer(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            request = Request.decode(line)
        except ProtocolError as exc:
            response = Response.failure("", STATUS_ERROR, "ProtocolError", str(exc))
            instrument("serve_requests_total").labels(op="invalid", status=STATUS_ERROR).inc()
        else:
            response = await asyncio.wrap_future(self.dispatcher.submit(request))
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(response.encode())
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
