"""A multi-machine availability-prediction service facade.

This is the component a downstream system (a grid scheduler, a broker,
an ops dashboard) would actually embed: one object that holds every
machine's history, answers temporal-reliability queries efficiently
(via the incremental per-day cache), and exposes the derived quantities
schedulers act on — rankings, gang-survival, confidence intervals and
reliable-horizon sizing.

::

    service = AvailabilityService()
    for trace in traces:
        service.register(trace)
    window = ClockWindow.from_hours(9, 5)
    ranking = service.rank(window, DayType.WEEKDAY)
    best = service.select(window, DayType.WEEKDAY, k=2)
    iv = service.interval("lab-03", window, DayType.WEEKDAY)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig
from repro.core.multi import group_survival, select_best_k
from repro.core.online import IncrementalPredictor
from repro.core.predictor import max_reliable_horizon
from repro.core.smp import temporal_reliability_profile
from repro.core.states import State
from repro.core.uncertainty import TrInterval, bootstrap_tr
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType
from repro.fleet.predictor import FleetPredictor, FleetScan
from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.obs.tracing import start_span
from repro.traces.trace import MachineTrace

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.store import TraceStore

__all__ = ["AvailabilityService", "RankedMachine"]


@dataclass(frozen=True)
class RankedMachine:
    """One entry of a service ranking."""

    machine_id: str
    tr: float


class AvailabilityService:
    """Registry + query front-end over many machines' histories."""

    def __init__(
        self,
        *,
        classifier: StateClassifier | None = None,
        estimator_config: EstimatorConfig | None = None,
        max_cache_entries: int | None = 512,
        store: "TraceStore | None" = None,
    ) -> None:
        self.classifier = classifier or StateClassifier()
        self.config = estimator_config or EstimatorConfig(step_multiple=10)
        self.store = store
        self._histories: dict[str, MachineTrace] = {}
        self._max_cache_entries = max_cache_entries
        self._predictor = IncrementalPredictor(
            self.classifier, self.config, max_cache_entries=max_cache_entries
        )
        # Per-machine model overrides (the adapt tier's promotion target):
        # machines absent from this dict use the shared default predictor.
        self._overrides: dict[str, IncrementalPredictor] = {}
        self._fleet = FleetPredictor(self)

    @classmethod
    def warm_start(cls, store: "TraceStore", **kwargs: object) -> "AvailabilityService":
        """Build a service whose registry is recovered from a trace store.

        Every machine in the store is registered from its recovered
        history (without echoing it back to the store); subsequent
        ``register``/``extend_history``/``append_samples`` calls persist
        to the store before acknowledging.
        """
        service = cls(store=store, **kwargs)  # type: ignore[arg-type]
        for machine_id in store.machine_ids:
            service.register(store.load(machine_id), persist=False)
        return service

    # ------------------------------------------------------------------ #
    # registry
    # ------------------------------------------------------------------ #

    def register(self, history: MachineTrace, *, persist: bool = True) -> None:
        """Add a machine (or replace its history, invalidating caches).

        With a backing store, the history is made durable *before* the
        in-memory registry changes (pass ``persist=False`` only when the
        history already came from the store, as ``warm_start`` does).
        """
        if self.store is not None and persist:
            self.store.replace(history)
        if history.machine_id in self._histories:
            self._predictor.invalidate(history.machine_id)
            self._fleet.invalidate(history.machine_id)
            get_event_log().emit(
                "machine_replaced",
                severity="warning",
                machine_id=history.machine_id,
                n_samples=history.n_samples,
            )
        self._histories[history.machine_id] = history
        instrument("service_registered_machines").set(len(self._histories))

    def extend_history(self, history: MachineTrace, *, persist: bool = True) -> None:
        """Replace a machine's history with a grown version of itself.

        Unlike :meth:`register`, the per-day caches are kept: the new
        trace must extend the old one (same grid), so cached days stay
        valid and only new days will be classified.  With a backing
        store, the new suffix is appended durably before the registry
        changes.
        """
        old = self._histories.get(history.machine_id)
        if old is None:
            self.register(history, persist=persist)
            return
        if (
            old.sample_period != history.sample_period
            or abs(old.start_time - history.start_time) > 1e-9
            or history.n_samples < old.n_samples
        ):
            raise ValueError(
                "extend_history requires a trace that grows the existing one; "
                "use register() to replace it"
            )
        # Cheap prefix spot-check: the kept per-day caches are only valid
        # if the overlapping samples are actually unchanged.  Comparing
        # the first and last overlapping samples catches the common
        # mistakes (re-synthesized trace, shifted data) without an O(n)
        # array comparison on every extension.
        for idx in (0, old.n_samples - 1):
            if (
                abs(old.load[idx] - history.load[idx]) > 1e-12
                or abs(old.free_mem_mb[idx] - history.free_mem_mb[idx]) > 1e-9
                or bool(old.up[idx]) != bool(history.up[idx])
            ):
                raise ValueError(
                    f"extend_history: new trace for {history.machine_id!r} is "
                    f"not a prefix-extension of the existing history (sample "
                    f"{idx} differs); use register() to replace the history "
                    "and invalidate its caches"
                )
        if self.store is not None and persist and history.n_samples > old.n_samples:
            suffix = MachineTrace(
                machine_id=history.machine_id,
                start_time=old.end_time,
                sample_period=history.sample_period,
                load=history.load[old.n_samples :],
                free_mem_mb=history.free_mem_mb[old.n_samples :],
                up=history.up[old.n_samples :],
            )
            self.store.append(history.machine_id, suffix)
        self._histories[history.machine_id] = history

    def append_samples(self, chunk: MachineTrace) -> MachineTrace:
        """Grow a machine's history by a chunk of newly monitored samples.

        This is the streaming-ingest entry point (the serve ``extend``
        op): ``chunk`` carries only the *new* samples, on the machine's
        grid, starting at (or overlapping) the current history end — a
        retried chunk that overlaps already-ingested samples is trimmed,
        so delivery is idempotent.  For an unknown machine the chunk
        becomes its initial history.  Returns the grown history.
        """
        old = self._histories.get(chunk.machine_id)
        if old is None:
            self.register(chunk)
            return chunk
        if chunk.sample_period != old.sample_period:
            raise ValueError(
                f"chunk sample period {chunk.sample_period} does not match the "
                f"history's {old.sample_period} for {chunk.machine_id!r}"
            )
        offset = (chunk.start_time - old.start_time) / old.sample_period
        seq = int(round(offset))
        if abs(offset - seq) > 1e-3 or seq < 0:
            raise ValueError(
                f"chunk start {chunk.start_time} is not on the sample grid of "
                f"{chunk.machine_id!r} (start {old.start_time}, "
                f"period {old.sample_period})"
            )
        if seq > old.n_samples:
            raise ValueError(
                f"chunk for {chunk.machine_id!r} starts at sample {seq} but the "
                f"history has only {old.n_samples}; samples were lost in between"
            )
        skip = old.n_samples - seq
        if skip >= chunk.n_samples:
            return old  # fully overlapping retry: nothing new
        tail = MachineTrace(
            machine_id=chunk.machine_id,
            start_time=old.end_time,
            sample_period=chunk.sample_period,
            load=chunk.load[skip:],
            free_mem_mb=chunk.free_mem_mb[skip:],
            up=chunk.up[skip:],
        )
        grown = old.concat(tail)
        self.extend_history(grown)
        return grown

    def unregister(self, machine_id: str) -> None:
        """Remove a machine and its caches."""
        del self._histories[machine_id]
        self._overrides.pop(machine_id, None)
        self._predictor.invalidate(machine_id)
        self._fleet.invalidate(machine_id)
        instrument("service_registered_machines").set(len(self._histories))

    # ------------------------------------------------------------------ #
    # per-machine model configuration
    # ------------------------------------------------------------------ #

    def predictor_for(self, machine_id: str) -> IncrementalPredictor:
        """The predictor serving one machine (override or shared default)."""
        return self._overrides.get(machine_id, self._predictor)

    def model_config(self, machine_id: str) -> EstimatorConfig:
        """The estimator config currently serving one machine."""
        return self.predictor_for(machine_id).config

    def model_classifier(self, machine_id: str) -> StateClassifier:
        """The classifier currently serving one machine."""
        return self.predictor_for(machine_id).classifier

    def set_model_config(
        self,
        machine_id: str,
        *,
        estimator_config: EstimatorConfig | None = None,
        classifier: StateClassifier | None = None,
    ) -> None:
        """Install (or clear) a per-machine model override.

        With both arguments ``None`` the machine reverts to the shared
        default model.  Every call invalidates the machine's incremental
        day cache and its fleet kernel rows: fleet rows are fingerprinted
        by history length only, so a config change *must* drop them here
        or scans would keep serving the old hyperparameters.
        """
        if estimator_config is None and classifier is None:
            self._overrides.pop(machine_id, None)
        else:
            self._overrides[machine_id] = IncrementalPredictor(
                classifier or self.classifier,
                estimator_config or self.config,
                max_cache_entries=self._max_cache_entries,
            )
        self._predictor.invalidate(machine_id)
        self._fleet.invalidate(machine_id)

    @property
    def overridden_machines(self) -> list[str]:
        """Machines currently served by a per-machine override."""
        return list(self._overrides)

    @property
    def machine_ids(self) -> list[str]:
        """Registered machine ids."""
        return list(self._histories)

    def __len__(self) -> int:
        return len(self._histories)

    def __contains__(self, machine_id: str) -> bool:
        return machine_id in self._histories

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _history(self, machine_id: str) -> MachineTrace:
        try:
            return self._histories[machine_id]
        except KeyError:
            raise KeyError(f"machine {machine_id!r} is not registered") from None

    def predict(
        self,
        machine_id: str,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        init_state: State | None = None,
    ) -> float:
        """TR of one machine over one window."""
        t0 = time.perf_counter()
        with start_span("predict.query", "predict", machine=machine_id):
            tr = self.predictor_for(machine_id).predict(
                self._history(machine_id), window, dtype, init_state=init_state
            )
        instrument("tr_query_latency_seconds").labels(path="service").observe(
            time.perf_counter() - t0
        )
        return tr

    def predict_all(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        *,
        batch: bool = True,
    ) -> dict[str, float]:
        """TR of every registered machine over one window.

        The default path stacks the fleet and solves once
        (:meth:`fleet_scan`); ``batch=False`` keeps the legacy N-scalar
        loop, retained as the reference the batched path is benched and
        property-tested against.
        """
        instrument("service_query_fanout_machines").observe(len(self._histories))
        if batch:
            return self.fleet_scan(window, dtype).trs()
        # Snapshot the id list so a concurrent register() (the serving
        # tier runs queries on worker threads) cannot break iteration.
        return {
            mid: self.predict(mid, window, dtype) for mid in list(self._histories)
        }

    def predict_batch(
        self,
        machines: list[str] | None,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
    ) -> dict[str, float]:
        """TR of many machines over one window, in one batched solve.

        ``machines=None`` means every registered machine; unknown ids
        raise ``KeyError`` like :meth:`predict`.
        """
        return self.fleet_scan(window, dtype, machines=machines).trs()

    def fleet_scan(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        *,
        machines: list[str] | None = None,
    ) -> FleetScan:
        """Full fleet snapshot: TR, failure split and TR-profiles per machine.

        One stacked Eq.-3 solve (incrementally cached) instead of N
        scalar recursions; see :class:`repro.fleet.FleetPredictor`.
        """
        return self._fleet.scan(window, dtype, machines=machines)

    def rank(
        self, window: ClockWindow | AbsoluteWindow, dtype: DayType | None = None
    ) -> list[RankedMachine]:
        """Machines sorted by TR, best first (ties broken by id)."""
        trs = self.predict_all(window, dtype)
        order = sorted(trs.items(), key=lambda kv: (-kv[1], kv[0]))
        return [RankedMachine(machine_id=m, tr=tr) for m, tr in order]

    def select(
        self,
        window: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        *,
        k: int = 1,
    ) -> tuple[list[str], float]:
        """The best ``k`` machines and their gang-survival probability."""
        trs = self.predict_all(window, dtype)
        chosen = select_best_k(trs, k)
        return chosen, group_survival([trs[m] for m in chosen])

    def interval(
        self,
        machine_id: str,
        window: ClockWindow,
        dtype: DayType,
        *,
        n_resamples: int = 200,
        confidence: float = 0.90,
        rng: np.random.Generator | int = 0,
    ) -> TrInterval:
        """Bootstrap confidence interval for one machine's TR."""
        return bootstrap_tr(
            self.predictor_for(machine_id).estimator,
            self._history(machine_id),
            window,
            dtype,
            n_resamples=n_resamples,
            confidence=confidence,
            rng=rng,
        )

    def reliable_horizon(
        self,
        machine_id: str,
        start: ClockWindow | AbsoluteWindow,
        dtype: DayType | None = None,
        *,
        tr_threshold: float = 0.9,
    ) -> float:
        """Longest job (seconds) placeable at ``start`` with TR >= threshold.

        ``start`` fixes the window start and the *maximum* length probed
        (its duration); the answer is where the TR profile crosses the
        threshold.
        """
        history = self._history(machine_id)
        if isinstance(start, AbsoluteWindow):
            clock = start.clock_window()
            dtype = dtype or start.day_type
        else:
            clock = start
            if dtype is None:
                raise ValueError("a ClockWindow requires an explicit day type")
        predictor = self.predictor_for(machine_id)
        kernel = predictor.kernel(history, clock, dtype)
        init = predictor.typical_initial_state(history, clock, dtype)
        profile = temporal_reliability_profile(kernel, init)
        return max_reliable_horizon(profile, kernel.step, tr_threshold)
