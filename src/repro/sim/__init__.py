"""iShare FGCS system simulator (paper Section 5).

A discrete-event simulation of the iShare host node and client: the
Resource Monitor (:mod:`~repro.sim.monitor`), the Gateway
(:mod:`~repro.sim.gateway`), the State Manager
(:mod:`~repro.sim.state_manager`), trace-driven machines
(:mod:`~repro.sim.machine`), guest jobs (:mod:`~repro.sim.jobs`), the
client Job Scheduler with placement policies
(:mod:`~repro.sim.scheduler`), checkpointing extensions
(:mod:`~repro.sim.checkpoint`), the P2P publication/discovery overlay
(:mod:`~repro.sim.p2p`), and testbed assembly
(:mod:`~repro.sim.cluster`).
"""

from repro.sim.checkpoint import (
    AdaptiveCheckpointing,
    CheckpointPolicy,
    NoCheckpointing,
    PeriodicCheckpointing,
    PredictiveIntervalCheckpointing,
    failure_rate_from_tr,
    young_interval,
)
from repro.sim.cluster import FgcsTestbed, poisson_workload, run_multi_client, run_workload
from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.gateway import GuestStatus, IShareGateway
from repro.sim.jobs import GuestJob, JobAttempt, JobGroup, JobState, WorkloadStats
from repro.sim.machine import HostMachine
from repro.sim.monitor import MonitorSample, ResourceMonitor
from repro.sim.p2p import DiscoveryResult, P2PNetwork, ResourceAdvert
from repro.sim.scheduler import (
    ClientJobScheduler,
    LeastLoadedPolicy,
    PlacementPolicy,
    PredictivePolicy,
    RandomPolicy,
)
from repro.sim.state_manager import StateManager
from repro.sim.workloads import (
    WorkloadSpec,
    bimodal_workload,
    diurnal_workload,
    group_workload,
)

__all__ = [
    "AdaptiveCheckpointing",
    "CheckpointPolicy",
    "ClientJobScheduler",
    "DiscoveryResult",
    "EventHandle",
    "FgcsTestbed",
    "GuestJob",
    "GuestStatus",
    "HostMachine",
    "IShareGateway",
    "JobAttempt",
    "JobGroup",
    "JobState",
    "LeastLoadedPolicy",
    "MonitorSample",
    "NoCheckpointing",
    "P2PNetwork",
    "PeriodicCheckpointing",
    "PlacementPolicy",
    "PredictiveIntervalCheckpointing",
    "PredictivePolicy",
    "RandomPolicy",
    "ResourceAdvert",
    "ResourceMonitor",
    "SimulationEngine",
    "StateManager",
    "WorkloadSpec",
    "WorkloadStats",
    "bimodal_workload",
    "diurnal_workload",
    "failure_rate_from_tr",
    "group_workload",
    "poisson_workload",
    "run_multi_client",
    "run_workload",
    "young_interval",
]
