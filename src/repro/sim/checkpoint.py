"""Checkpointing policies (the paper's future work / refs [20, 31]).

The paper motivates availability prediction with proactive job
management — "turning on checkpointing adaptively based on the results
of availability prediction" — and names integration with a proactive
scheduler as future work.  These policies implement that extension on
top of the simulator:

* :class:`NoCheckpointing` — failures lose all progress;
* :class:`PeriodicCheckpointing` — checkpoint every fixed interval;
* :class:`AdaptiveCheckpointing` — checkpoint only when the predicted
  temporal reliability of the remaining execution window falls below a
  threshold: cheap when the machine looks safe, aggressive when it
  doesn't.

Each checkpoint costs ``cost_cpu_seconds`` of guest compute, charged
against the job's progress rate.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.core.recovery import failure_rate_from_tr, young_interval
from repro.core.windows import AbsoluteWindow
from repro.sim.jobs import GuestJob

__all__ = [
    "CheckpointPolicy",
    "NoCheckpointing",
    "PeriodicCheckpointing",
    "AdaptiveCheckpointing",
    "PredictiveIntervalCheckpointing",
    "young_interval",
    "failure_rate_from_tr",
]


class CheckpointPolicy(abc.ABC):
    """Decides when a running guest should write a checkpoint."""

    #: CPU-seconds one checkpoint costs the guest.
    cost_cpu_seconds: float = 30.0

    @abc.abstractmethod
    def should_checkpoint(self, job: GuestJob, now: float, predict_tr) -> bool:
        """Whether to checkpoint now.

        ``predict_tr(window)`` queries the host's state manager; policies
        that don't need predictions ignore it.
        """

    def apply(self, job: GuestJob, now: float, predict_tr) -> bool:
        """Run the decision and perform the checkpoint bookkeeping."""
        if job.progress - job.checkpointed_progress <= self.cost_cpu_seconds:
            return False  # nothing worth saving yet
        if not self.should_checkpoint(job, now, predict_tr):
            return False
        job.progress = max(job.checkpointed_progress, job.progress - self.cost_cpu_seconds)
        job.checkpointed_progress = job.progress
        return True


@dataclass
class NoCheckpointing(CheckpointPolicy):
    """Never checkpoint; a failure restarts the job from scratch."""

    def should_checkpoint(self, job: GuestJob, now: float, predict_tr) -> bool:
        return False


@dataclass
class PeriodicCheckpointing(CheckpointPolicy):
    """Checkpoint every ``interval`` seconds of wall time."""

    interval: float = 1800.0
    cost_cpu_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        self._last: dict[str, float] = {}

    def should_checkpoint(self, job: GuestJob, now: float, predict_tr) -> bool:
        last = self._last.get(job.job_id)
        if last is None:
            started = job.attempts[-1].started_at if job.attempts else now
            last = started
        if now - last >= self.interval:
            self._last[job.job_id] = now
            return True
        return False


@dataclass
class AdaptiveCheckpointing(CheckpointPolicy):
    """Checkpoint when the predicted TR of the remaining work is low.

    Every ``check_interval`` seconds the policy asks the host's state
    manager for the TR over the job's remaining execution window; below
    ``tr_threshold`` it checkpoints.  This is the paper's proactive
    fault-tolerance loop closed over its own predictor.
    """

    tr_threshold: float = 0.8
    check_interval: float = 600.0
    cost_cpu_seconds: float = 30.0
    #: assumed guest progress rate when sizing the remaining window.
    assumed_rate: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 < self.tr_threshold <= 1.0:
            raise ValueError(f"tr_threshold must be in (0, 1], got {self.tr_threshold}")
        if self.check_interval <= 0.0:
            raise ValueError(f"check_interval must be positive, got {self.check_interval}")
        self._last_check: dict[str, float] = {}

    def should_checkpoint(self, job: GuestJob, now: float, predict_tr) -> bool:
        last = self._last_check.get(job.job_id, -float("inf"))
        if now - last < self.check_interval:
            return False
        self._last_check[job.job_id] = now
        remaining_wall = max(60.0, job.remaining / self.assumed_rate)
        try:
            tr = predict_tr(AbsoluteWindow(now, remaining_wall))
        except Exception:
            return True  # cannot predict: be safe
        return tr < self.tr_threshold


# failure_rate_from_tr and young_interval moved to repro.core.recovery so
# the serving-tier scheduler shares one cost model with these policies;
# re-exported here (see __all__) for compatibility.


@dataclass
class PredictiveIntervalCheckpointing(CheckpointPolicy):
    """Checkpoint at the Young-optimal interval implied by the predicted TR.

    This is the quantitative version of the paper's "turn on
    checkpointing adaptively based on the results of availability
    prediction": the machine's predicted TR over the remaining execution
    window gives an effective MTBF, Young's formula gives the interval,
    and the interval is re-derived every ``refresh_interval`` seconds so
    the policy tightens as the machine heads into its busy hours.
    """

    cost_cpu_seconds: float = 30.0
    refresh_interval: float = 600.0
    #: assumed guest progress rate when sizing the remaining window.
    assumed_rate: float = 0.7
    #: intervals are clamped into this range (seconds).
    min_interval: float = 120.0
    max_interval: float = 6.0 * 3600.0

    def __post_init__(self) -> None:
        if self.refresh_interval <= 0.0:
            raise ValueError(f"refresh_interval must be positive, got {self.refresh_interval}")
        if not 0.0 < self.min_interval <= self.max_interval:
            raise ValueError("need 0 < min_interval <= max_interval")
        self._last_checkpoint: dict[str, float] = {}
        self._interval: dict[str, float] = {}
        self._last_refresh: dict[str, float] = {}

    def current_interval(self, job_id: str) -> float | None:
        """The interval currently in force for a job (None before first refresh)."""
        return self._interval.get(job_id)

    def _refresh(self, job: GuestJob, now: float, predict_tr) -> None:
        remaining_wall = max(60.0, job.remaining / self.assumed_rate)
        try:
            tr = float(predict_tr(AbsoluteWindow(now, remaining_wall)))
        except Exception:
            tr = 0.5  # unknown: assume a mediocre machine
        rate = failure_rate_from_tr(min(max(tr, 1e-6), 1.0 - 1e-9), remaining_wall)
        mtbf = math.inf if rate == 0.0 else 1.0 / rate
        interval = young_interval(self.cost_cpu_seconds, mtbf)
        self._interval[job.job_id] = min(self.max_interval, max(self.min_interval, interval))
        self._last_refresh[job.job_id] = now

    def should_checkpoint(self, job: GuestJob, now: float, predict_tr) -> bool:
        last_refresh = self._last_refresh.get(job.job_id)
        if last_refresh is None or now - last_refresh >= self.refresh_interval:
            self._refresh(job, now, predict_tr)
        interval = self._interval[job.job_id]
        if math.isinf(interval):
            return False
        last = self._last_checkpoint.get(job.job_id)
        if last is None:
            last = job.attempts[-1].started_at if job.attempts else now
        if now - last >= interval:
            self._last_checkpoint[job.job_id] = now
            return True
        return False
