"""Testbed assembly: wire machines, monitors, gateways and schedulers.

:class:`FgcsTestbed` turns a :class:`~repro.traces.trace.TraceSet` into
a complete running iShare deployment: each machine gets a monitor (6 s
sampling), a gateway, and a state manager bootstrapped with that
machine's *history* portion of the trace; the *live* portion drives the
simulation.  A P2P overlay carries the resource adverts clients discover
before submitting.

The E2E experiment uses :func:`run_workload` to compare placement
policies on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import ClassifierConfig
from repro.core.estimator import EstimatorConfig
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.gateway import IShareGateway
from repro.sim.jobs import GuestJob, WorkloadStats
from repro.sim.machine import HostMachine
from repro.sim.monitor import ResourceMonitor
from repro.sim.p2p import P2PNetwork, ResourceAdvert
from repro.sim.scheduler import ClientJobScheduler, PlacementPolicy
from repro.sim.state_manager import StateManager
from repro.traces.trace import TraceSet

__all__ = ["FgcsTestbed", "poisson_workload", "run_multi_client", "run_workload"]


@dataclass
class _HostStack:
    machine: HostMachine
    monitor: ResourceMonitor
    gateway: IShareGateway
    manager: StateManager


class FgcsTestbed:
    """A complete simulated iShare deployment over a trace set."""

    def __init__(
        self,
        traces: TraceSet,
        *,
        history_fraction: float = 0.5,
        monitor_period: float = 6.0,
        classifier_config: ClassifierConfig | None = None,
        estimator_config: EstimatorConfig | None = None,
        p2p_seed: int = 0,
    ) -> None:
        if len(traces) == 0:
            raise ValueError("trace set is empty")
        self.p2p = P2PNetwork(seed=p2p_seed)
        splits = [trace.split_by_ratio(history_fraction) for trace in traces]
        engine_start = min(live.start_time for _hist, live in splits)
        self._start_time = engine_start
        self.engine = SimulationEngine(start_time=engine_start)
        cfg = estimator_config or EstimatorConfig(step_multiple=10)
        self.hosts: list[_HostStack] = []
        for history, live in splits:
            machine = HostMachine(live)
            monitor = ResourceMonitor(machine, self.engine, period=monitor_period)
            gateway = IShareGateway(
                machine,
                monitor,
                thresholds=(classifier_config or ClassifierConfig()).thresholds,
            )
            manager = StateManager(
                monitor,
                bootstrap_history=history,
                classifier_config=classifier_config,
                estimator_config=cfg,
            )
            self.hosts.append(
                _HostStack(machine=machine, monitor=monitor, gateway=gateway, manager=manager)
            )
            monitor.start()
            self.p2p.join(machine.machine_id)
            self.p2p.publish(machine.machine_id, ResourceAdvert(machine_id=machine.machine_id))

    # ------------------------------------------------------------------ #

    @property
    def machine_ids(self) -> list[str]:
        """Identifiers of the testbed machines."""
        return [s.machine.machine_id for s in self.hosts]

    @property
    def start_time(self) -> float:
        """Start of the live (simulated) period."""
        return self._start_time

    @property
    def end_time(self) -> float:
        """End of the shortest live trace (safe simulation horizon)."""
        return min(s.machine.trace.end_time for s in self.hosts)

    def discover_hosts(self, origin: str | None = None, ttl: int = 6) -> list[str]:
        """Discover advertised machines through the P2P overlay."""
        origin = origin or self.machine_ids[0]
        result = self.p2p.discover(origin, ttl=ttl)
        return [a.machine_id for a in result.adverts]

    def make_scheduler(
        self,
        policy: PlacementPolicy,
        *,
        checkpoint_policy: CheckpointPolicy | None = None,
    ) -> ClientJobScheduler:
        """Build a client scheduler over the discovered hosts."""
        discovered = set(self.discover_hosts())
        pairs = [
            (s.gateway, s.manager)
            for s in self.hosts
            if s.machine.machine_id in discovered
        ]
        return ClientJobScheduler(
            self.engine, pairs, policy, checkpoint_policy=checkpoint_policy
        )

    def monitoring_overhead(self) -> float:
        """Mean per-machine monitoring CPU overhead fraction so far."""
        elapsed = self.engine.now - self.start_time
        if elapsed <= 0.0:
            return 0.0
        return float(
            np.mean([s.monitor.overhead_fraction(elapsed) for s in self.hosts])
        )


def poisson_workload(
    n_jobs: int,
    *,
    start: float,
    span: float,
    cpu_seconds_range: tuple[float, float] = (1800.0, 14400.0),
    mem_mb: float = 64.0,
    seed: int = 0,
) -> list[tuple[float, GuestJob]]:
    """A workload of jobs with uniform arrivals and log-uniform sizes."""
    rng = np.random.default_rng(seed)
    lo, hi = cpu_seconds_range
    out = []
    arrivals = np.sort(rng.uniform(start, start + span, n_jobs))
    sizes = np.exp(rng.uniform(np.log(lo), np.log(hi), n_jobs))
    for i, (t, size) in enumerate(zip(arrivals, sizes)):
        out.append(
            (float(t), GuestJob(job_id=f"job-{i:03d}", cpu_seconds=float(size), mem_requirement_mb=mem_mb))
        )
    return out


def run_workload(
    testbed: FgcsTestbed,
    policy: PlacementPolicy,
    workload: list[tuple[float, GuestJob]],
    *,
    until: float | None = None,
    checkpoint_policy: CheckpointPolicy | None = None,
) -> WorkloadStats:
    """Run a workload to completion (or ``until``) under one policy."""
    scheduler = testbed.make_scheduler(policy, checkpoint_policy=checkpoint_policy)
    for t, job in workload:
        scheduler.submit_at(job, t)
    testbed.engine.run_until(until if until is not None else testbed.end_time - 1.0)
    return scheduler.stats()


def run_multi_client(
    testbed: FgcsTestbed,
    clients: dict[str, tuple[PlacementPolicy, list[tuple[float, GuestJob]]]],
    *,
    until: float | None = None,
) -> dict[str, WorkloadStats]:
    """Run several clients' workloads concurrently on one testbed.

    ``clients`` maps a client name to its placement policy and workload.
    All schedulers share the same gateways, so clients *contend* for
    machines: a busy gateway rejects further guests until its job ends —
    the natural multi-tenant regime of a public FGCS system.  Returns
    per-client statistics.
    """
    if not clients:
        raise ValueError("need at least one client")
    schedulers = {
        name: testbed.make_scheduler(policy) for name, (policy, _wl) in clients.items()
    }
    for name, (_policy, workload) in clients.items():
        for t, job in workload:
            schedulers[name].submit_at(job, t)
    testbed.engine.run_until(until if until is not None else testbed.end_time - 1.0)
    return {name: sched.stats() for name, sched in schedulers.items()}
