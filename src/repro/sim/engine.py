"""Minimal discrete-event simulation engine.

Drives the iShare system simulation (paper Section 5): monitors that
sample every 6 seconds, gateways that react to state transitions, and
clients that submit jobs are all callbacks scheduled on one shared
timeline.  Events at equal times fire in scheduling order (FIFO), which
keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.instruments import instrument

__all__ = ["EventHandle", "SimulationEngine"]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle for a scheduled event; allows cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        self._entry.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled."""
        return self._entry.cancelled


class SimulationEngine:
    """A heap-based event loop with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_Entry] = []
        self._seq = 0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now - 1e-9:
            raise ValueError(f"cannot schedule at {time} before now ({self._now})")
        entry = _Entry(time=max(time, self._now), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Execute events up to and including ``end_time``; clock ends there."""
        fired_before = self._fired
        while self._queue and self._queue[0].time <= end_time:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._fired += 1
            entry.callback()
        self._now = max(self._now, end_time)
        if self._fired > fired_before:
            instrument("sim_events_fired_total").inc(self._fired - fired_before)

    def run(self) -> None:
        """Execute all pending events (callbacks may schedule more)."""
        fired_before = self._fired
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._fired += 1
            entry.callback()
        if self._fired > fired_before:
            instrument("sim_events_fired_total").inc(self._fired - fired_before)
