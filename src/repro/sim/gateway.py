"""The iShare Gateway (paper Section 5.1, Fig. 2).

The gateway "communicates with remote clients and controls local guest
processes": on every monitor sample it applies the paper's guest-control
policy —

* host load below ``Th1``: guest runs at default priority (S1);
* load between ``Th1`` and ``Th2``: guest reniced to the lowest priority
  (S2);
* load above ``Th2``: guest suspended; if the excursion outlasts the
  transient tolerance (1 minute) the guest is terminated (S3), otherwise
  it resumes when the load drops;
* free memory below the guest working set: guest terminated (S4);
* machine revoked: the guest dies with it (S5).

Guest progress accrues at the machine's idle-complement rate while the
guest runs (discounted when reniced), pausing during suspensions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.core.states import State, Thresholds
from repro.obs.instruments import instrument
from repro.sim.jobs import GuestJob, JobState
from repro.sim.machine import HostMachine
from repro.sim.monitor import MonitorSample, ResourceMonitor

__all__ = ["GuestStatus", "IShareGateway"]


class GuestStatus(enum.Enum):
    """How the gateway is currently running its guest."""

    NONE = "none"
    DEFAULT_PRIORITY = "default"  # S1
    RENICED = "reniced"  # S2
    SUSPENDED = "suspended"  # transient spike


@dataclass
class _GuestContext:
    job: GuestJob
    on_complete: Callable[[GuestJob], None]
    on_failure: Callable[[GuestJob, State], None]
    last_accrual: float
    status: GuestStatus = GuestStatus.DEFAULT_PRIORITY
    spike_started: float | None = None


class IShareGateway:
    """Guest-process controller for one host machine."""

    def __init__(
        self,
        machine: HostMachine,
        monitor: ResourceMonitor,
        *,
        thresholds: Thresholds | None = None,
        transient_tolerance: float = 60.0,
    ) -> None:
        self.machine = machine
        self.monitor = monitor
        self.thresholds = thresholds or Thresholds()
        self.transient_tolerance = transient_tolerance
        self._guest: _GuestContext | None = None
        self.guests_started = 0
        self.guests_failed = 0
        self.guests_completed = 0
        kills = instrument("gateway_guest_kills_total")
        # Pre-create both cause series so expositions show explicit zeros.
        self._kills_uec = kills.labels(cause="uec")
        self._kills_urr = kills.labels(cause="urr")
        monitor.add_listener(self._on_sample)
        monitor.add_down_listener(self._on_machine_down)

    # ------------------------------------------------------------------ #

    @property
    def machine_id(self) -> str:
        """Identifier of the gateway's machine."""
        return self.machine.machine_id

    @property
    def busy(self) -> bool:
        """Whether a guest job currently occupies this machine."""
        return self._guest is not None

    @property
    def guest_status(self) -> GuestStatus:
        """Current guest control status."""
        return self._guest.status if self._guest else GuestStatus.NONE

    def accepts_jobs(self, now: float, mem_requirement_mb: float = 0.0) -> bool:
        """Whether a new guest could be launched right now.

        Requires an up machine, a fresh heartbeat, no current guest, a
        host load that does not already imply termination and — when the
        job's working set is known — enough free memory to hold it (the
        scheduler-side use of the paper's memory-usage estimate [11]).
        """
        if self.busy or self.monitor.heartbeat_stale(now):
            return False
        if not self.machine.covers(now) or not self.machine.up_at(now):
            return False
        if self.machine.free_mem_at(now) < mem_requirement_mb:
            return False
        return self.machine.load_at(now) <= self.thresholds.th2

    def launch_guest(
        self,
        job: GuestJob,
        now: float,
        on_complete: Callable[[GuestJob], None],
        on_failure: Callable[[GuestJob, State], None],
    ) -> None:
        """Start a guest job; callbacks fire on completion/failure."""
        if self.busy:
            raise RuntimeError(f"gateway {self.machine_id} already runs a guest")
        job.begin_attempt(self.machine_id, now)
        status = (
            GuestStatus.DEFAULT_PRIORITY
            if self.machine.load_at(now) < self.thresholds.th1
            else GuestStatus.RENICED
        )
        self._guest = _GuestContext(
            job=job,
            on_complete=on_complete,
            on_failure=on_failure,
            last_accrual=now,
            status=status,
        )
        self.guests_started += 1
        instrument("gateway_guests_started_total").inc()

    # ------------------------------------------------------------------ #

    def _accrue(self, ctx: _GuestContext, now: float) -> None:
        dt = now - ctx.last_accrual
        ctx.last_accrual = now
        if dt <= 0.0 or ctx.status is GuestStatus.SUSPENDED:
            return
        rate = self.machine.guest_rate_at(now, reniced=ctx.status is GuestStatus.RENICED)
        ctx.job.progress += rate * dt

    def _fail(self, ctx: _GuestContext, state: State, now: float) -> None:
        ctx.job.fail_attempt(state, now)
        self._guest = None
        self.guests_failed += 1
        (self._kills_uec if state.is_uec else self._kills_urr).inc()
        ctx.on_failure(ctx.job, state)

    def _on_machine_down(self, now: float) -> None:
        if self._guest is not None:
            self._fail(self._guest, State.S5, now)

    def _on_sample(self, sample: MonitorSample) -> None:
        ctx = self._guest
        if ctx is None:
            return
        now = sample.time
        self._accrue(ctx, now)

        if ctx.job.progress >= ctx.job.cpu_seconds:
            ctx.job.complete(now)
            self._guest = None
            self.guests_completed += 1
            instrument("gateway_guests_completed_total").inc()
            ctx.on_complete(ctx.job)
            return

        if sample.free_mem_mb < ctx.job.mem_requirement_mb:
            self._fail(ctx, State.S4, now)
            return

        th = self.thresholds
        if sample.cpu_load > th.th2:
            if ctx.spike_started is None:
                ctx.spike_started = now
                ctx.status = GuestStatus.SUSPENDED
                ctx.job.state = JobState.SUSPENDED
            elif now - ctx.spike_started >= self.transient_tolerance:
                self._fail(ctx, State.S3, now)
            return

        # Load back under Th2: clear any transient spike, resume.
        ctx.spike_started = None
        ctx.status = (
            GuestStatus.DEFAULT_PRIORITY if sample.cpu_load < th.th1 else GuestStatus.RENICED
        )
        ctx.job.state = JobState.RUNNING
