"""Guest jobs and their lifecycle statistics.

The paper's guest jobs are compute-bound batch programs whose primary
metric is *response time* (Section 1): either small test programs
(minutes) or large computations (hours).  A job needs a given number of
CPU-seconds and a memory working set; it accrues progress at whatever
rate its host machine offers, dies with the machine's failure states,
and may be restarted (from scratch or from a checkpoint) elsewhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.states import State

__all__ = ["JobState", "GuestJob", "JobAttempt", "JobGroup", "WorkloadStats"]


class JobState(enum.Enum):
    """Lifecycle states of a guest job."""

    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    FAILED = "failed"  #: current attempt failed; may be rescheduled


@dataclass
class JobAttempt:
    """One placement of a job on one machine."""

    machine_id: str
    started_at: float
    ended_at: float | None = None
    failure_state: State | None = None  #: None = completed or still running
    progress_at_end: float = 0.0


@dataclass
class GuestJob:
    """A compute-bound guest job.

    ``cpu_seconds`` is the work requirement; ``mem_requirement_mb`` the
    working set the host must hold (drives S4).  ``progress`` counts
    CPU-seconds completed in the current incarnation;
    ``checkpointed_progress`` is what survives a failure.
    """

    job_id: str
    cpu_seconds: float
    mem_requirement_mb: float = 64.0
    submitted_at: float = 0.0

    state: JobState = JobState.PENDING
    progress: float = 0.0
    checkpointed_progress: float = 0.0
    completed_at: float | None = None
    attempts: list[JobAttempt] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cpu_seconds <= 0.0:
            raise ValueError(f"cpu_seconds must be positive, got {self.cpu_seconds}")
        if self.mem_requirement_mb < 0.0:
            raise ValueError(f"mem_requirement_mb must be >= 0, got {self.mem_requirement_mb}")

    @property
    def remaining(self) -> float:
        """CPU-seconds still to compute."""
        return max(0.0, self.cpu_seconds - self.progress)

    @property
    def done(self) -> bool:
        """True once the job completed."""
        return self.state is JobState.COMPLETED

    @property
    def n_failures(self) -> int:
        """Number of failed attempts so far."""
        return sum(1 for a in self.attempts if a.failure_state is not None)

    @property
    def response_time(self) -> float | None:
        """Wall time from submission to completion (None if not done)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def wasted_cpu_seconds(self) -> float:
        """CPU-seconds computed in failed attempts and lost.

        Work saved by checkpoints is not wasted; we charge each failed
        attempt its progress beyond what the job retained afterwards.
        """
        wasted = 0.0
        retained = 0.0
        for a in self.attempts:
            if a.failure_state is not None:
                wasted += max(0.0, a.progress_at_end - retained)
                retained = max(retained, 0.0)
            retained = max(retained, a.progress_at_end)
        return wasted

    def begin_attempt(self, machine_id: str, now: float) -> JobAttempt:
        """Record the start of a new placement."""
        self.progress = self.checkpointed_progress
        self.state = JobState.RUNNING
        attempt = JobAttempt(machine_id=machine_id, started_at=now)
        self.attempts.append(attempt)
        return attempt

    def fail_attempt(self, failure_state: State, now: float) -> None:
        """Record the failure of the current attempt."""
        if not self.attempts:
            raise RuntimeError("no attempt in progress")
        attempt = self.attempts[-1]
        attempt.ended_at = now
        attempt.failure_state = failure_state
        attempt.progress_at_end = self.progress
        self.progress = self.checkpointed_progress
        self.state = JobState.FAILED

    def complete(self, now: float) -> None:
        """Record successful completion."""
        if not self.attempts:
            raise RuntimeError("no attempt in progress")
        attempt = self.attempts[-1]
        attempt.ended_at = now
        attempt.progress_at_end = self.progress
        self.state = JobState.COMPLETED
        self.completed_at = now


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregate outcome of a scheduled workload."""

    n_jobs: int
    n_completed: int
    n_failures: int
    mean_response_time: float
    total_wasted_cpu_seconds: float

    @classmethod
    def from_jobs(cls, jobs: list[GuestJob]) -> "WorkloadStats":
        completed = [j for j in jobs if j.done]
        rts = [j.response_time for j in completed if j.response_time is not None]
        return cls(
            n_jobs=len(jobs),
            n_completed=len(completed),
            n_failures=sum(j.n_failures for j in jobs),
            mean_response_time=float(sum(rts) / len(rts)) if rts else float("nan"),
            total_wasted_cpu_seconds=float(sum(j.wasted_cpu_seconds for j in jobs)),
        )


@dataclass
class JobGroup:
    """A batch of related guest jobs submitted together.

    The paper's motivating workload: applications "composed of multiple
    related jobs that are submitted as a group and must all complete
    before the results being used" (Section 1) — e.g. a Monte-Carlo
    sweep.  The group's response time is therefore governed by its
    *slowest* member, which is exactly why per-machine availability
    prediction matters: one badly placed member delays the whole result.
    """

    group_id: str
    jobs: list[GuestJob] = field(default_factory=list)
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a job group needs at least one member job")
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate member job ids: {ids}")

    @classmethod
    def uniform(
        cls,
        group_id: str,
        n_jobs: int,
        cpu_seconds: float,
        *,
        mem_requirement_mb: float = 64.0,
    ) -> "JobGroup":
        """A group of ``n_jobs`` identical members (a parameter sweep)."""
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        return cls(
            group_id=group_id,
            jobs=[
                GuestJob(
                    job_id=f"{group_id}/{i:02d}",
                    cpu_seconds=cpu_seconds,
                    mem_requirement_mb=mem_requirement_mb,
                )
                for i in range(n_jobs)
            ],
        )

    @property
    def size(self) -> int:
        """Number of member jobs."""
        return len(self.jobs)

    @property
    def done(self) -> bool:
        """True once every member completed."""
        return all(j.done for j in self.jobs)

    @property
    def completed_at(self) -> float | None:
        """Completion time of the slowest member (None until all done)."""
        if not self.done:
            return None
        return max(j.completed_at for j in self.jobs)

    @property
    def response_time(self) -> float | None:
        """Wall time from group submission to the last completion."""
        done_at = self.completed_at
        if done_at is None:
            return None
        return done_at - self.submitted_at

    @property
    def n_failures(self) -> int:
        """Total failures across member jobs."""
        return sum(j.n_failures for j in self.jobs)
