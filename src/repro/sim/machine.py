"""Trace-driven host machine.

The simulated machine replays a monitoring trace as the ground truth of
its host workload: at any instant the simulator can ask for the host CPU
load, free memory and up/down status.  Host behaviour is exogenous — the
FGCS contract is precisely that guest processes never noticeably perturb
it, and the contention substrate (:mod:`repro.contention`) is where that
contract itself is validated.

The *guest CPU rate* a machine offers is the idle complement of the host
load (a CPU-bound guest soaks whatever the host leaves, as the scheduler
simulator confirms), slightly discounted at the lowest priority for the
extra context switching.
"""

from __future__ import annotations

from repro.traces.trace import MachineTrace

__all__ = ["HostMachine"]

#: Guest throughput discount when running at the lowest priority, from
#: the priority-alternatives study (nice 19 wastes a few percent in
#: context switches even on an idle host).
RENICED_GUEST_DISCOUNT = 0.96


class HostMachine:
    """One host machine whose resources follow a trace."""

    def __init__(self, trace: MachineTrace) -> None:
        self.trace = trace

    @property
    def machine_id(self) -> str:
        """Identifier of the machine (the trace's machine id)."""
        return self.trace.machine_id

    def _index(self, t: float) -> int:
        return self.trace.index_of(t)

    def up_at(self, t: float) -> bool:
        """Whether the machine is running at time ``t``."""
        return bool(self.trace.up[self._index(t)])

    def load_at(self, t: float) -> float:
        """Host CPU load ``L_H`` at time ``t`` (0 when down)."""
        return float(self.trace.load[self._index(t)])

    def free_mem_at(self, t: float) -> float:
        """Free memory (MB) available for a guest at time ``t``."""
        return float(self.trace.free_mem_mb[self._index(t)])

    def covers(self, t: float) -> bool:
        """Whether the trace defines the machine's behaviour at ``t``."""
        return self.trace.start_time <= t < self.trace.end_time

    def guest_rate_at(self, t: float, reniced: bool) -> float:
        """Guest progress rate (CPU-seconds per wall second) at ``t``."""
        if not self.up_at(t):
            return 0.0
        idle = max(0.0, 1.0 - self.load_at(t))
        return idle * (RENICED_GUEST_DISCOUNT if reniced else 1.0)
