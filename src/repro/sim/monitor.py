"""The Resource Monitor daemon (paper Section 5.2).

Samples host CPU load and free memory every ``period`` seconds (6 s in
the paper's testbed) using light-weight OS utilities, records the
timestamp of the most recent measurement (the heartbeat), and notifies
the gateway of every sample so it can manage the guest process.

The monitor only runs while its machine is up: down periods produce *no*
samples, and the state manager later reconstructs them from heartbeat
gaps — the paper's administrator-privilege-free URR detection.  The
per-sample cost is modelled explicitly so the OVH experiment can verify
the "< 1% CPU" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.instruments import instrument
from repro.sim.engine import SimulationEngine
from repro.sim.machine import HostMachine

__all__ = ["MonitorSample", "ResourceMonitor"]

#: CPU-seconds one sample costs (running ``top``/``vmstat`` and parsing);
#: a fraction of a millisecond on the paper-era hardware.
SAMPLE_CPU_COST = 0.0004


@dataclass(frozen=True)
class MonitorSample:
    """One measurement delivered to the gateway."""

    time: float
    cpu_load: float
    free_mem_mb: float


class ResourceMonitor:
    """Periodic sampler bound to one machine."""

    def __init__(
        self,
        machine: HostMachine,
        engine: SimulationEngine,
        *,
        period: float = 6.0,
        heartbeat_timeout_periods: float = 3.0,
    ) -> None:
        if period <= 0.0:
            raise ValueError(f"period must be positive, got {period}")
        if heartbeat_timeout_periods <= 1.0:
            raise ValueError("heartbeat timeout must exceed one period")
        self.machine = machine
        self.engine = engine
        self.period = period
        self.heartbeat_timeout = heartbeat_timeout_periods * period
        self.last_heartbeat: float | None = None
        self.samples_taken = 0
        self.cpu_seconds_consumed = 0.0
        self._listeners: list[Callable[[MonitorSample], None]] = []
        self._down_listeners: list[Callable[[float], None]] = []
        self._was_up = True
        # Counters bound once: _tick is the simulation's hottest callback.
        self._samples_metric = instrument("monitor_samples_total")
        self._cpu_cost_metric = instrument("monitor_cpu_cost_seconds_total")
        # Sample log (regular grid with gaps during down periods).
        self.log_times: list[float] = []
        self.log_loads: list[float] = []
        self.log_mems: list[float] = []

    # ------------------------------------------------------------------ #

    def add_listener(self, callback: Callable[[MonitorSample], None]) -> None:
        """Register a per-sample callback (the gateway)."""
        self._listeners.append(callback)

    def add_down_listener(self, callback: Callable[[float], None]) -> None:
        """Register a callback fired when the machine is found down."""
        self._down_listeners.append(callback)

    def start(self) -> None:
        """Begin periodic sampling on the engine."""
        self.engine.schedule_in(0.0, self._tick)

    # ------------------------------------------------------------------ #

    def heartbeat_stale(self, now: float) -> bool:
        """The paper's URR detection: heartbeat older than the timeout."""
        if self.last_heartbeat is None:
            return True
        return (now - self.last_heartbeat) > self.heartbeat_timeout

    def _tick(self) -> None:
        now = self.engine.now
        if not self.machine.covers(now):
            return  # trace exhausted: stop sampling
        if self.machine.up_at(now):
            sample = MonitorSample(
                time=now,
                cpu_load=self.machine.load_at(now),
                free_mem_mb=self.machine.free_mem_at(now),
            )
            self.last_heartbeat = now
            self.samples_taken += 1
            self.cpu_seconds_consumed += SAMPLE_CPU_COST
            self._samples_metric.inc()
            self._cpu_cost_metric.inc(SAMPLE_CPU_COST)
            self.log_times.append(now)
            self.log_loads.append(sample.cpu_load)
            self.log_mems.append(sample.free_mem_mb)
            self._was_up = True
            for cb in self._listeners:
                cb(sample)
        else:
            # The monitor itself is dead while the machine is down; this
            # branch models the simulator noticing, so listeners (the
            # gateway's guest) learn about the revocation.
            if self._was_up:
                self._was_up = False
                for cb in self._down_listeners:
                    cb(now)
        if self.machine.covers(now + self.period):
            self.engine.schedule_in(self.period, self._tick)

    # ------------------------------------------------------------------ #

    def overhead_fraction(self, elapsed: float) -> float:
        """Monitoring CPU overhead as a fraction of elapsed time."""
        if elapsed <= 0.0:
            return 0.0
        return self.cpu_seconds_consumed / elapsed
