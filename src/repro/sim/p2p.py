"""Peer-to-peer resource publication and discovery (paper Section 5.1).

iShare publishes resources on a P2P network and clients discover them
before submitting jobs [24].  This module implements a small-world
unstructured overlay with TTL-limited flooding — the classic Gnutella-
style scheme iShare-era systems used — sufficient to exercise the
publish/discover path of the end-to-end simulation and to account for
its message cost.

Nodes join and leave dynamically (a leave models resource revocation at
the overlay level); resource advertisements live on their home node and
are found by flooding a query from any node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["ResourceAdvert", "P2PNetwork", "DiscoveryResult"]


@dataclass(frozen=True)
class ResourceAdvert:
    """An advertised compute resource."""

    machine_id: str
    cpu_mhz: float = 1700.0
    ram_mb: float = 512.0
    tags: tuple[str, ...] = ()


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of one discovery query."""

    adverts: tuple[ResourceAdvert, ...]
    messages: int  #: overlay messages the flood consumed
    nodes_reached: int


@dataclass
class _Node:
    node_id: str
    adverts: dict[str, ResourceAdvert] = field(default_factory=dict)


class P2PNetwork:
    """A small-world overlay with TTL-flooding discovery."""

    def __init__(self, *, k: int = 4, rewire_p: float = 0.3, seed: int = 0) -> None:
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = k
        self.rewire_p = rewire_p
        self._rng = np.random.default_rng(seed)
        self._graph = nx.Graph()
        self._nodes: dict[str, _Node] = {}

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> list[str]:
        """Identifiers of the overlay nodes."""
        return list(self._nodes)

    def join(self, node_id: str) -> None:
        """Add a node, wiring it to up to ``k`` random existing peers."""
        if node_id in self._nodes:
            raise KeyError(f"node {node_id!r} already in overlay")
        self._nodes[node_id] = _Node(node_id)
        self._graph.add_node(node_id)
        others = [n for n in self._nodes if n != node_id]
        if others:
            picks = self._rng.choice(
                len(others), size=min(self.k, len(others)), replace=False
            )
            for i in picks:
                self._graph.add_edge(node_id, others[int(i)])

    def leave(self, node_id: str) -> None:
        """Remove a node (owner revoked the machine); adverts vanish."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not in overlay")
        del self._nodes[node_id]
        self._graph.remove_node(node_id)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # ------------------------------------------------------------------ #

    def publish(self, node_id: str, advert: ResourceAdvert) -> None:
        """Publish a resource advert on its home node."""
        self._nodes[node_id].adverts[advert.machine_id] = advert

    def unpublish(self, node_id: str, machine_id: str) -> None:
        """Withdraw an advert (idempotent)."""
        self._nodes[node_id].adverts.pop(machine_id, None)

    def discover(
        self,
        origin: str,
        *,
        ttl: int = 4,
        predicate=None,
    ) -> DiscoveryResult:
        """TTL-limited flood from ``origin``; collect matching adverts.

        ``predicate`` filters adverts (default: accept all).  Each edge
        traversal counts as one overlay message, as in Gnutella-style
        accounting.
        """
        if origin not in self._nodes:
            raise KeyError(f"origin {origin!r} not in overlay")
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        predicate = predicate or (lambda a: True)
        visited = {origin}
        frontier = [origin]
        messages = 0
        found: dict[str, ResourceAdvert] = {}
        for advert in self._nodes[origin].adverts.values():
            if predicate(advert):
                found[advert.machine_id] = advert
        for _hop in range(ttl):
            nxt: list[str] = []
            for node in frontier:
                for neigh in self._graph.neighbors(node):
                    messages += 1
                    if neigh in visited:
                        continue
                    visited.add(neigh)
                    nxt.append(neigh)
                    for advert in self._nodes[neigh].adverts.values():
                        if predicate(advert):
                            found.setdefault(advert.machine_id, advert)
            frontier = nxt
            if not frontier:
                break
        return DiscoveryResult(
            adverts=tuple(found.values()),
            messages=messages,
            nodes_reached=len(visited),
        )

    def reachable_fraction(self, origin: str, ttl: int) -> float:
        """Fraction of overlay nodes a TTL flood reaches (coverage metric)."""
        if not self._nodes:
            return 0.0
        return self.discover(origin, ttl=ttl).nodes_reached / len(self._nodes)
