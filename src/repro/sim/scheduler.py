"""The client-side Job Scheduler (paper Section 5.1).

"Upon the request of a job submission on a client, the client's Job
Scheduler queries the gateways on the available machines for their
temporal reliability within the future time window of job execution,
and decides on which machine(s) the job would be executed."

Three placement policies are provided so the E2E experiment can compare
prediction-aware scheduling against availability-oblivious baselines:

* :class:`PredictivePolicy` — rank candidates by predicted TR over the
  job's estimated execution window (the paper's proposal);
* :class:`LeastLoadedPolicy` — pick the machine with the lowest current
  host load (a classic availability-oblivious heuristic);
* :class:`RandomPolicy` — uniform choice.

On failure the scheduler re-submits the job, excluding the machine that
just failed from the immediate retry.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.states import State
from repro.core.windows import AbsoluteWindow
from repro.sim.checkpoint import CheckpointPolicy, NoCheckpointing
from repro.sim.engine import SimulationEngine
from repro.sim.gateway import IShareGateway
from repro.sim.jobs import GuestJob, JobGroup, WorkloadStats
from repro.sim.state_manager import StateManager

__all__ = [
    "PlacementPolicy",
    "PredictivePolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "ClientJobScheduler",
]

#: assumed guest progress rate used to size prediction windows.
ASSUMED_GUEST_RATE = 0.7


@dataclass(frozen=True)
class _Host:
    gateway: IShareGateway
    manager: StateManager


class PlacementPolicy(abc.ABC):
    """Chooses a machine for a job among currently accepting hosts."""

    name: str = "base"

    @abc.abstractmethod
    def choose(
        self, job: GuestJob, hosts: list[_Host], now: float
    ) -> _Host | None:
        """Return the chosen host, or None to leave the job queued."""


class PredictivePolicy(PlacementPolicy):
    """Rank hosts by predicted temporal reliability (the paper's scheme)."""

    name = "predictive"

    def choose(self, job: GuestJob, hosts: list[_Host], now: float) -> _Host | None:
        if not hosts:
            return None
        window = AbsoluteWindow(now, max(60.0, job.remaining / ASSUMED_GUEST_RATE))
        best, best_tr = None, -1.0
        for host in hosts:
            try:
                tr = host.manager.predict_tr(window)
            except Exception:
                tr = 0.0
            if tr > best_tr:
                best, best_tr = host, tr
        return best


class LeastLoadedPolicy(PlacementPolicy):
    """Pick the host with the lowest instantaneous load (oblivious)."""

    name = "least-loaded"

    def choose(self, job: GuestJob, hosts: list[_Host], now: float) -> _Host | None:
        if not hosts:
            return None
        return min(hosts, key=lambda h: h.gateway.machine.load_at(now))


class RandomPolicy(PlacementPolicy):
    """Uniform random placement (oblivious)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def choose(self, job: GuestJob, hosts: list[_Host], now: float) -> _Host | None:
        if not hosts:
            return None
        return hosts[int(self._rng.integers(0, len(hosts)))]


class ClientJobScheduler:
    """Submits guest jobs to gateways and handles failures."""

    def __init__(
        self,
        engine: SimulationEngine,
        hosts: list[tuple[IShareGateway, StateManager]],
        policy: PlacementPolicy,
        *,
        checkpoint_policy: CheckpointPolicy | None = None,
        retry_delay: float = 30.0,
        queue_poll: float = 60.0,
    ) -> None:
        self.engine = engine
        self.hosts = [_Host(gateway=g, manager=m) for g, m in hosts]
        self.policy = policy
        self.checkpoint_policy = checkpoint_policy or NoCheckpointing()
        self.retry_delay = retry_delay
        self.queue_poll = queue_poll
        self.jobs: list[GuestJob] = []
        self.groups: list[JobGroup] = []
        self._running: dict[str, _Host] = {}
        self._last_failed: dict[str, str] = {}

    # ------------------------------------------------------------------ #

    def submit(self, job: GuestJob) -> None:
        """Accept a job now (sets its submission time) and try to place it."""
        job.submitted_at = self.engine.now
        self.jobs.append(job)
        self._try_place(job)

    def submit_at(self, job: GuestJob, time: float) -> None:
        """Schedule a future submission."""
        self.engine.schedule_at(time, lambda: self.submit(job))

    def submit_group(self, group: JobGroup) -> None:
        """Submit a job group now; members are placed independently.

        The group's response time is governed by its slowest member
        (paper Section 1); the placement policy sees each member in
        turn, so a TR-ranked policy naturally spreads the group over
        the most reliable machines first.
        """
        group.submitted_at = self.engine.now
        self.groups.append(group)
        for job in group.jobs:
            self.submit(job)

    def submit_group_at(self, group: JobGroup, time: float) -> None:
        """Schedule a future group submission."""
        self.engine.schedule_at(time, lambda: self.submit_group(group))

    # ------------------------------------------------------------------ #

    def _candidates(self, job: GuestJob, now: float) -> list[_Host]:
        exclude = self._last_failed.get(job.job_id)
        out = []
        mem = job.mem_requirement_mb
        for host in self.hosts:
            if host.gateway.machine_id == exclude:
                continue
            if host.gateway.accepts_jobs(now, mem):
                out.append(host)
        if not out and exclude is not None:
            # Fall back to the failed machine if it is the only option.
            out = [h for h in self.hosts if h.gateway.accepts_jobs(now, mem)]
        return out

    def _try_place(self, job: GuestJob) -> None:
        if job.done:
            return
        now = self.engine.now
        host = self.policy.choose(job, self._candidates(job, now), now)
        if host is None:
            self.engine.schedule_in(self.queue_poll, lambda: self._try_place(job))
            return
        self._running[job.job_id] = host
        host.gateway.launch_guest(job, now, self._on_complete, self._on_failure)
        self._schedule_checkpoint_tick(job)

    def _schedule_checkpoint_tick(self, job: GuestJob) -> None:
        if isinstance(self.checkpoint_policy, NoCheckpointing):
            return

        def tick() -> None:
            host = self._running.get(job.job_id)
            if host is None or job.done:
                return
            self.checkpoint_policy.apply(job, self.engine.now, host.manager.predict_tr)
            self.engine.schedule_in(60.0, tick)

        self.engine.schedule_in(60.0, tick)

    def _on_complete(self, job: GuestJob) -> None:
        self._running.pop(job.job_id, None)
        self._last_failed.pop(job.job_id, None)

    def _on_failure(self, job: GuestJob, state: State) -> None:
        host = self._running.pop(job.job_id, None)
        if host is not None:
            self._last_failed[job.job_id] = host.gateway.machine_id
        self.engine.schedule_in(self.retry_delay, lambda: self._try_place(job))

    # ------------------------------------------------------------------ #

    def stats(self) -> WorkloadStats:
        """Aggregate statistics over all submitted jobs."""
        return WorkloadStats.from_jobs(self.jobs)

    def group_response_times(self) -> dict[str, float | None]:
        """Per-group response times (None for incomplete groups)."""
        return {g.group_id: g.response_time for g in self.groups}
