"""The State Manager (paper Section 5, Fig. 2).

"The State Manager stores history logs and predicts resource
availability."  It is bootstrapped with the machine's accumulated
history trace, keeps appending the monitor's live samples, and serves
temporal-reliability queries by running the SMP predictor over the
combined history.

Down periods never produce monitor samples; when the manager folds the
live log into a trace it reconstructs them from the gaps — the same
heartbeat-based URR detection the monitor uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import ClassifierConfig
from repro.core.estimator import EstimatorConfig
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.states import State
from repro.core.windows import AbsoluteWindow
from repro.obs.instruments import instrument
from repro.sim.monitor import MonitorSample, ResourceMonitor
from repro.traces.trace import MachineTrace

__all__ = ["StateManager"]


class StateManager:
    """History log plus prediction service for one machine."""

    def __init__(
        self,
        monitor: ResourceMonitor,
        bootstrap_history: MachineTrace | None = None,
        *,
        classifier_config: ClassifierConfig | None = None,
        estimator_config: EstimatorConfig | None = None,
    ) -> None:
        self.monitor = monitor
        self.bootstrap = bootstrap_history
        self._predictor: TemporalReliabilityPredictor | None = None
        self._predictor_log_len = -1
        self._classifier_config = classifier_config or ClassifierConfig()
        self._estimator_config = estimator_config
        self.predictions_served = 0
        # Live availability-state bookkeeping: every monitor sample is
        # classified with the raw threshold rule (transient-spike
        # absorption needs lookahead, so spikes count as real S3 entries
        # here) and each state change feeds the per-(from,to) transition
        # counter — the registry's view of paper Fig. 3's edge traffic.
        self._transitions = instrument("state_transitions_total")
        self._live_state: State | None = None
        monitor.add_listener(self._on_sample)
        monitor.add_down_listener(self._on_down)

    # ------------------------------------------------------------------ #

    @property
    def current_state(self) -> State | None:
        """Latest live availability state (None before the first sample)."""
        return self._live_state

    def _classify_sample(self, sample: MonitorSample) -> State:
        cfg = self._classifier_config
        if sample.free_mem_mb < cfg.guest_mem_requirement_mb:
            return State.S4
        return cfg.thresholds.cpu_state(sample.cpu_load)

    def _record_state(self, state: State) -> None:
        prev = self._live_state
        if prev is not None and prev is not state:
            self._transitions.labels(
                from_state=prev.name, to_state=state.name
            ).inc()
        self._live_state = state

    def _on_sample(self, sample: MonitorSample) -> None:
        self._record_state(self._classify_sample(sample))

    def _on_down(self, _now: float) -> None:
        self._record_state(State.S5)

    # ------------------------------------------------------------------ #

    def live_trace(self, until: float) -> MachineTrace | None:
        """Fold the monitor's live log into a regular-grid trace.

        The grid starts where the bootstrap history ends (or at the first
        sample) and extends to ``until``; grid slots with no recorded
        sample are marked down (heartbeat gap -> URR).
        """
        if not self.monitor.log_times:
            return None
        period = self.monitor.period
        t0 = self.bootstrap.end_time if self.bootstrap else self.monitor.log_times[0]
        n = int((until - t0) / period)
        if n <= 0:
            return None
        load = np.zeros(n)
        mem = np.zeros(n)
        up = np.zeros(n, dtype=bool)
        times = np.asarray(self.monitor.log_times)
        idx = np.floor((times - t0) / period + 1e-9).astype(int)
        ok = (idx >= 0) & (idx < n)
        load[idx[ok]] = np.asarray(self.monitor.log_loads)[ok]
        mem[idx[ok]] = np.asarray(self.monitor.log_mems)[ok]
        up[idx[ok]] = True
        return MachineTrace(
            machine_id=self.monitor.machine.machine_id,
            start_time=t0,
            sample_period=period,
            load=np.clip(load, 0.0, 1.0),
            free_mem_mb=mem,
            up=up,
        )

    def history(self, until: float) -> MachineTrace:
        """The full history available at time ``until``.

        Concatenates the bootstrap trace with the live log when both
        exist and align; otherwise returns whichever is available.
        """
        live = self.live_trace(until)
        if self.bootstrap is None:
            if live is None:
                raise RuntimeError("state manager has no history yet")
            return live
        if live is None or live.n_samples == 0:
            return self.bootstrap
        try:
            return self.bootstrap.concat(live)
        except ValueError:
            # Misaligned live grid (e.g. a changed monitor period): the
            # bootstrap alone is still a valid history.
            return self.bootstrap

    # ------------------------------------------------------------------ #

    def predict_tr(self, window: AbsoluteWindow) -> float:
        """Temporal reliability of this machine over ``window``.

        The predictor is rebuilt lazily when new live samples arrived
        since the last query (history logs grow between queries).
        """
        log_len = len(self.monitor.log_times)
        if self._predictor is None or log_len != self._predictor_log_len:
            self._predictor = TemporalReliabilityPredictor(
                self.history(window.start),
                classifier_config=self._classifier_config,
                estimator_config=self._estimator_config,
            )
            self._predictor_log_len = log_len
        self.predictions_served += 1
        instrument("state_manager_predictions_total").inc()
        return self._predictor.predict(window)
